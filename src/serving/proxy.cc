#include "serving/proxy.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <utility>

#include "io/atomic_file.h"
#include "serving/read_path.h"
#include "serving/shard_layout.h"

namespace cce::serving {
namespace {

const char* OpName(int op) {
  switch (op) {
    case 0:
      return "predict";
    case 1:
      return "record";
    case 2:
      return "explain";
    case 3:
      return "counterfactuals";
  }
  return "unknown";
}

const char* BreakerStateLabel(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

}  // namespace

ExplainableProxy::ExplainableProxy(std::shared_ptr<const Schema> schema,
                                   ModelEndpoint* endpoint,
                                   const Options& options)
    : schema_(std::move(schema)),
      endpoint_(endpoint),
      options_(options),
      env_(options.durability.env != nullptr ? options.durability.env
                                             : io::Env::Default()),
      retry_policy_(options.retry),
      breaker_(options.breaker, options.clock),
      retry_rng_(options.resilience_seed),
      sleep_(options.sleep) {
  if (!sleep_) {
    sleep_ = [](std::chrono::milliseconds d) {
      std::this_thread::sleep_for(d);
    };
  }
  registry_ = options_.observability.registry;
  if (registry_ == nullptr) {
    obs::Registry::Options registry_options;
    registry_options.clock = options_.observability.clock;
    registry_ = std::make_shared<obs::Registry>(registry_options);
  }
  if (options_.observability.trace_capacity > 0) {
    traces_ = std::make_unique<obs::TraceRing>(
        options_.observability.trace_capacity, registry_->clock());
  }
  InitInstruments();
  if (options_.parallel_conformity && options_.conformity_threads != 1) {
    // A 1-thread pool is strictly worse than no pool (the caller blocks in
    // Wait() while one worker does serial work plus dispatch overhead), so
    // conformity_threads == 1 runs the bitset engine serially instead.
    conformity_pool_ =
        std::make_unique<ThreadPool>(options_.conformity_threads);
    conformity_pool_gauges_ = std::make_unique<obs::ThreadPoolGauges>(
        registry_.get(), conformity_pool_.get(), "conformity");
  }
  if (options_.overload.enabled) {
    overload_ =
        std::make_unique<OverloadController>(options_.overload,
                                             registry_.get());
    // The cache revalidates entries against the proxy's conformity bound,
    // so its alpha always mirrors the proxy's regardless of what the
    // caller left in explain_cache.alpha.
    ExplainCache::Options cache_options = options_.explain_cache;
    cache_options.alpha = options_.alpha;
    explain_cache_ =
        std::make_unique<ExplainCache>(cache_options, registry_.get());
  }
}

void ExplainableProxy::InitInstruments() {
  obs::Registry& reg = *registry_;
  for (int op = 0; op < kNumOps; ++op) {
    for (int outcome = 0; outcome < kNumOutcomes; ++outcome) {
      ins_.requests[op][outcome] = reg.GetCounter(
          "cce_requests_total",
          "Requests finished, by entry point and cause of outcome.",
          {{"op", OpName(op)},
           {"outcome", obs::TraceOutcomeName(
                           static_cast<obs::TraceOutcome>(outcome + 1))}});
    }
  }
  ins_.predicts = reg.GetCounter("cce_predicts_total",
                                 "Predict() calls accepted for serving.");
  ins_.predict_failures =
      reg.GetCounter("cce_predict_failures_total",
                     "Predict() calls that failed after retries.");
  ins_.retries = reg.GetCounter(
      "cce_retries_total", "Backend call retries performed by Predict().");
  ins_.deadline_misses = reg.GetCounter(
      "cce_deadline_misses_total",
      "Requests that exhausted their deadline (Predict expiry or degraded "
      "Explain).");
  ins_.explains =
      reg.GetCounter("cce_explains_total", "Explain() calls received.");
  ins_.degraded_explains = reg.GetCounter(
      "cce_degraded_explains_total",
      "Explains answered degraded: padded non-minimal key at deadline "
      "expiry, or computed against an incomplete (quarantine-degraded) "
      "context.");
  ins_.cache_served_explains =
      reg.GetCounter("cce_cache_served_explains_total",
                     "Explains answered from the explanation cache.");
  ins_.batch_executions = reg.GetCounter(
      "cce_batch_executions_total",
      "ExplainBatch() calls that ran a shared-build key search (one fused "
      "bitmap build amortized across every item in the batch).");
  ins_.batch_items = reg.GetCounter(
      "cce_batch_items_total",
      "Explain items answered through ExplainBatch() shared builds.");
  ins_.fallback_serves = reg.GetCounter(
      "cce_fallback_serves_total",
      "Explain/Counterfactuals served from context while the breaker was "
      "open (record-only mode).");
  ins_.validation_rejects = reg.GetCounter(
      "cce_validation_rejects_total",
      "Malformed requests rejected at the proxy boundary.");
  ins_.breaker_rejections = reg.GetCounter(
      "cce_breaker_rejections_total",
      "Predicts rejected fast because the circuit breaker was open.");
  for (int state = 0; state < 3; ++state) {
    ins_.breaker_transitions[state] = reg.GetCounter(
        "cce_breaker_transitions_total",
        "Circuit breaker state transitions, by destination state.",
        {{"to",
          BreakerStateLabel(static_cast<CircuitBreaker::State>(state))}});
  }
  ins_.breaker_state = reg.GetGauge(
      "cce_breaker_state",
      "Circuit breaker state: 0 = closed, 1 = open, 2 = half-open.");
  ins_.wal_records_logged =
      reg.GetCounter("cce_wal_records_logged_total",
                     "Pairs appended to the write-ahead logs (all shards).");
  ins_.wal_fsyncs = reg.GetCounter(
      "cce_wal_fsyncs_total", "WAL fsync() calls issued (all shards).");
  ins_.wal_compactions = reg.GetCounter(
      "cce_wal_compactions_total",
      "Log compactions (snapshot written, log truncated; all shards).");
  ins_.wal_records_recovered = reg.GetCounter(
      "cce_wal_records_recovered_total",
      "Pairs replayed into the context at startup (snapshot + log, all "
      "shards).");
  ins_.wal_records_dropped = reg.GetCounter(
      "cce_wal_records_dropped_total",
      "Recovery records dropped (corrupt tail or schema-incompatible).");
  ins_.compaction_failures = reg.GetCounter(
      "cce_compaction_failures_total",
      "Compactions that failed (snapshot write or log reset); the previous "
      "generation stays in service.");
  ins_.quarantine_drops = reg.GetCounter(
      "cce_quarantine_drops_total",
      "Records not durably applied because their shard was quarantined or "
      "read-only.");
  ins_.tmp_orphans_removed = reg.GetCounter(
      "cce_tmp_orphans_removed_total",
      "Orphaned *.tmp files swept from the durability dir at startup.");
  ins_.bitmap_rebuilds = reg.GetCounter(
      "cce_bitmap_rebuilds_total",
      "Full conformity-bitmap builds by the bitset engine (one per "
      "bitset-path Explain).");
  ins_.conformity_shards = reg.GetCounter(
      "cce_conformity_shards_total",
      "Work items dispatched to the conformity pool by the bitset engine "
      "(shard fanout).");
  ins_.context_window_size = reg.GetGauge(
      "cce_context_window_size",
      "Pairs currently in the rolling context (all shards).");
  ins_.recorded_pairs = reg.GetGauge(
      "cce_recorded_pairs",
      "Pairs ever recorded, including those recovered at startup.");
  ins_.context_degraded = reg.GetGauge(
      "cce_context_degraded",
      "1 while at least one context shard is quarantined (explanations "
      "carry degraded = true).");
  ins_.predict_latency_us = reg.GetHistogram(
      "cce_predict_latency_us",
      "End-to-end Predict() latency in microseconds.");
  ins_.explain_latency_us = reg.GetHistogram(
      "cce_explain_latency_us",
      "End-to-end Explain() latency in microseconds.");
  ins_.wal_append_us = reg.GetHistogram(
      "cce_wal_append_us", "WAL append (+ conditional fsync) latency in "
      "microseconds.");

  const size_t num_shards = std::max<size_t>(1, options_.shards);
  shard_ins_.resize(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    const obs::Labels labels = {{"shard", std::to_string(i)}};
    ContextShard::Instruments& cells = shard_ins_[i];
    cells.shard_wal_appends = reg.GetCounter(
        "cce_shard_wal_appends_total",
        "Pairs appended to one shard's write-ahead log.", labels);
    cells.shard_wal_fsyncs = reg.GetCounter(
        "cce_shard_wal_fsyncs_total",
        "fsync() calls issued by one shard's log.", labels);
    cells.shard_recovered_records = reg.GetCounter(
        "cce_shard_recovered_records_total",
        "Pairs replayed into one shard at startup.", labels);
    cells.shard_salvage_dropped = reg.GetCounter(
        "cce_shard_salvage_dropped_total",
        "Records one shard dropped at recovery (corrupt tail or invalid "
        "rows).",
        labels);
    cells.shard_repairs = reg.GetCounter(
        "cce_shard_repairs_total",
        "Times this shard was re-admitted from quarantine via "
        "RepairShard().",
        labels);
    cells.shard_quarantined = reg.GetGauge(
        "cce_shard_quarantined",
        "1 while this shard is quarantined (unrecoverable files).", labels);
    cells.shard_read_only = reg.GetGauge(
        "cce_shard_read_only",
        "1 while this shard is read-only (poisoned WAL awaiting rewrite).",
        labels);
    cells.shard_salvage_truncated_bytes = reg.GetGauge(
        "cce_shard_salvage_truncated_bytes",
        "Bytes the last recovery's salvage truncated off this shard's WAL "
        "(0 = the log came back clean).",
        labels);
    {
      obs::Labels cause_labels = labels;
      cause_labels.push_back({"cause", "snapshot"});
      cells.shard_quarantines_snapshot = reg.GetCounter(
          "cce_shard_quarantines_total",
          "Quarantine events for this shard, by the file class that caused "
          "them.",
          cause_labels);
      cause_labels.back().second = "wal";
      cells.shard_quarantines_wal = reg.GetCounter(
          "cce_shard_quarantines_total",
          "Quarantine events for this shard, by the file class that caused "
          "them.",
          cause_labels);
    }
    cells.agg_records_logged = ins_.wal_records_logged;
    cells.agg_fsyncs = ins_.wal_fsyncs;
    cells.agg_compactions = ins_.wal_compactions;
    cells.agg_records_recovered = ins_.wal_records_recovered;
    cells.agg_records_dropped = ins_.wal_records_dropped;
    cells.compaction_failures = ins_.compaction_failures;
    cells.wal_append_us = ins_.wal_append_us;
    cells.registry = registry_.get();
  }
}

void ExplainableProxy::FinishTrace(obs::RequestTrace& trace, Op op,
                                   obs::TraceOutcome outcome,
                                   const Status* failure) const {
  trace.set_outcome(outcome);
  if (failure != nullptr && trace.active()) {
    trace.set_detail(failure->message());
  }
  ins_.requests[static_cast<int>(op)][static_cast<int>(outcome) - 1]
      ->Increment();
}

void ExplainableProxy::SyncBreakerLocked(CircuitBreaker::State before) const {
  const CircuitBreaker::State after = breaker_.state();
  if (after != before) {
    ins_.breaker_transitions[static_cast<int>(after)]->Increment();
  }
  ins_.breaker_state->Set(static_cast<int64_t>(after));
}

Result<std::unique_ptr<ExplainableProxy>> ExplainableProxy::Create(
    std::shared_ptr<const Schema> schema, const Model* model,
    const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  auto proxy = std::unique_ptr<ExplainableProxy>(
      new ExplainableProxy(std::move(schema), nullptr, options));
  if (model != nullptr) {
    proxy->owned_endpoint_ = std::make_unique<LocalModelEndpoint>(model);
    proxy->endpoint_ = proxy->owned_endpoint_.get();
  }
  CCE_RETURN_IF_ERROR(proxy->InitShards());
  return proxy;
}

Result<std::unique_ptr<ExplainableProxy>> ExplainableProxy::CreateWithEndpoint(
    std::shared_ptr<const Schema> schema, ModelEndpoint* endpoint,
    const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  auto proxy = std::unique_ptr<ExplainableProxy>(
      new ExplainableProxy(std::move(schema), endpoint, options));
  CCE_RETURN_IF_ERROR(proxy->InitShards());
  return proxy;
}

Status ExplainableProxy::InitShards() {
  const Options::Durability& durability = options_.durability;
  const size_t num_shards = std::max<size_t>(1, options_.shards);
  const bool durable = !durability.dir.empty();
  if (durable) {
    CCE_RETURN_IF_ERROR(env_->CreateDir(durability.dir));
    SweepOrphanTmpFiles();
  }
  for (size_t i = 0; i < num_shards; ++i) {
    ContextShard::Options shard_options;
    shard_options.index = i;
    if (durable) {
      shard_options.wal_path =
          durability.dir + "/" + ShardFileName(i, "wal");
      shard_options.snapshot_path =
          durability.dir + "/" + ShardFileName(i, "snapshot");
    }
    shard_options.sync_every = durability.sync_every;
    shard_options.compact_threshold_bytes =
        durability.compact_threshold_bytes;
    shard_options.env = env_;
    shard_options.monitor_drift = options_.monitor_drift;
    shard_options.drift = options_.drift;
    shards_.push_back(std::make_unique<ContextShard>(
        schema_, shard_options, shard_ins_[i]));
  }
  // Shard-major recovery order: deterministic, and each shard is its own
  // fault domain — only a schema clash (another deployment's directory)
  // can fail Create; I/O damage quarantines the one shard it hit.
  for (auto& shard : shards_) {
    CCE_RETURN_IF_ERROR(shard->Recover(&global_seq_));
  }
  size_t rows = 0;
  for (const auto& shard : shards_) rows += shard->window_size();
  total_rows_.store(rows, std::memory_order_release);
  EvictToCapacity();
  if (durable) AdoptOrphanShardFiles();
  SyncContextGauges();
  return Status::Ok();
}

void ExplainableProxy::SweepOrphanTmpFiles() {
  std::vector<std::string> names;
  if (!env_->ListDir(options_.durability.dir, &names).ok()) return;
  for (const std::string& name : names) {
    if (!io::IsAtomicTempName(name)) continue;
    if (env_->RemoveFile(options_.durability.dir + "/" + name).ok()) {
      ins_.tmp_orphans_removed->Increment();
    }
  }
}

void ExplainableProxy::AdoptOrphanShardFiles() {
  std::vector<std::string> names;
  if (!env_->ListDir(options_.durability.dir, &names).ok()) return;
  std::vector<size_t> orphans;
  for (const std::string& name : names) {
    size_t shard = 0;
    if (ParseShardWalName(name, &shard) && shard >= shards_.size()) {
      orphans.push_back(shard);
    }
  }
  std::sort(orphans.begin(), orphans.end());
  // Recover every orphan first, then re-log all their rows in one pass
  // sorted by the original arrival sequence: rows that interleaved across
  // two abandoned shards keep that interleaving in the adopted context.
  struct OrphanRow {
    ContextShard::Row row;
    size_t orphan;  // position in `orphans`
  };
  std::vector<OrphanRow> pending;
  std::vector<bool> salvaged(orphans.size(), false);
  for (size_t i = 0; i < orphans.size(); ++i) {
    const size_t index = orphans[i];
    // A throwaway shard reuses the whole recovery path (salvage, covers
    // skip, validation); its rows are then re-routed by hash and re-logged
    // into the live shards.
    ContextShard::Options orphan_options;
    orphan_options.index = index;
    orphan_options.wal_path =
        options_.durability.dir + "/" + ShardFileName(index, "wal");
    orphan_options.snapshot_path =
        options_.durability.dir + "/" + ShardFileName(index, "snapshot");
    orphan_options.sync_every = 0;  // the live shards re-log durably
    orphan_options.compact_threshold_bytes = 0;
    orphan_options.env = env_;
    ContextShard orphan(schema_, orphan_options, ContextShard::Instruments{});
    if (!orphan.Recover(&global_seq_).ok() ||
        orphan.state() != ContextShard::State::kActive) {
      // Unsalvageable or foreign: leave the files for forensics.
      continue;
    }
    salvaged[i] = true;
    std::vector<ContextShard::Row> rows;
    orphan.SnapshotInto(&rows);
    for (ContextShard::Row& row : rows) {
      pending.push_back(OrphanRow{std::move(row), i});
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const OrphanRow& a, const OrphanRow& b) {
              return a.row.seq < b.row.seq;
            });
  std::vector<bool> adopted(orphans.size(), true);
  for (const OrphanRow& entry : pending) {
    if (!RecordToShard(entry.row.x, entry.row.y).ok()) {
      adopted[entry.orphan] = false;
    }
  }
  for (size_t i = 0; i < orphans.size(); ++i) {
    if (!salvaged[i] || !adopted[i]) continue;
    (void)env_->RemoveFile(options_.durability.dir + "/" +
                           ShardFileName(orphans[i], "wal"));
    (void)env_->RemoveFile(options_.durability.dir + "/" +
                           ShardFileName(orphans[i], "snapshot"));
  }
}

Result<Label> ExplainableProxy::CallEndpoint(const Instance& x,
                                             const Deadline& deadline,
                                             int* attempts) {
  retry_policy_.Reset();
  *attempts = 0;
  while (true) {
    if (deadline.expired()) {
      ins_.deadline_misses->Increment();
      return Status::DeadlineExceeded(
          "predict deadline expired after " + std::to_string(*attempts) +
          " attempt(s)");
    }
    Result<Label> served = endpoint_->Predict(x);
    ++*attempts;
    if (served.ok()) return served;
    if (!served.status().IsRetryable() ||
        !retry_policy_.ShouldRetry(*attempts)) {
      return served.status();
    }
    ins_.retries->Increment();
    std::chrono::milliseconds backoff =
        retry_policy_.NextBackoff(&retry_rng_);
    if (!deadline.infinite()) {
      // Never sleep past the deadline; the expiry check at the top of the
      // loop then converts the exhausted budget into kDeadlineExceeded.
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline.remaining());
      backoff = std::min(backoff, remaining);
    }
    if (backoff.count() > 0) sleep_(backoff);
  }
}

Status ExplainableProxy::ValidateRequest(const Instance& x, Label y,
                                         bool check_label) const {
  Status valid = schema_->ValidateInstance(x);
  if (valid.ok() && check_label) valid = schema_->ValidateLabel(y);
  if (!valid.ok()) ins_.validation_rejects->Increment();
  return valid;
}

Status ExplainableProxy::RecordToShard(const Instance& x, Label y) {
  ContextShard& shard =
      *shards_[ContextShard::ShardFor(x, shards_.size())];
  Status recorded = shard.Record(x, y, &global_seq_);
  if (!recorded.ok()) {
    if (recorded.code() == StatusCode::kUnavailable) {
      ins_.quarantine_drops->Increment();
    }
    return recorded;
  }
  total_rows_.fetch_add(1, std::memory_order_acq_rel);
  // The delta must land after the row is durably in its window and before
  // eviction deltas for the rows it displaces: the cache replays deltas in
  // ring order to re-prove cached keys against the slid window.
  if (explain_cache_ != nullptr) explain_cache_->RecordAdd(x, y);
  EvictToCapacity();
  SyncContextGauges();
  return Status::Ok();
}

void ExplainableProxy::EvictToCapacity() {
  const size_t capacity = options_.context_capacity;
  if (capacity == 0) return;
  std::lock_guard<std::mutex> lock(evict_mu_);
  while (total_rows_.load(std::memory_order_acquire) > capacity) {
    // Globally oldest first: the shard holding the minimum sequence
    // number loses its front row, which reproduces the single-window
    // FIFO exactly.
    ContextShard* oldest = nullptr;
    uint64_t best = UINT64_MAX;
    for (const auto& shard : shards_) {
      const uint64_t front = shard->front_seq();
      if (front < best) {
        best = front;
        oldest = shard.get();
      }
    }
    ContextShard::Row evicted;
    if (oldest == nullptr ||
        !oldest->PopFront(explain_cache_ != nullptr ? &evicted : nullptr)) {
      break;
    }
    total_rows_.fetch_sub(1, std::memory_order_acq_rel);
    if (explain_cache_ != nullptr) {
      explain_cache_->RecordRemove(evicted.x, evicted.y);
    }
  }
}

std::vector<ContextShard::Row> ExplainableProxy::MergedRows() const {
  std::vector<ContextShard::Row> rows;
  for (const auto& shard : shards_) shard->SnapshotInto(&rows);
  std::sort(rows.begin(), rows.end(),
            [](const ContextShard::Row& a, const ContextShard::Row& b) {
              return a.seq < b.seq;
            });
  return rows;
}

Context ExplainableProxy::MergedContext() const {
  return MaterializeContext(schema_, MergedRows());
}

ReadPath ExplainableProxy::ExplainReadPath() const {
  ReadPath path;
  path.alpha = options_.alpha;
  path.parallel_conformity = options_.parallel_conformity;
  path.pool = conformity_pool_.get();
  path.bitmap_rebuilds = ins_.bitmap_rebuilds;
  path.conformity_shards = ins_.conformity_shards;
  return path;
}

uint64_t ExplainableProxy::PublishedSequence() const {
  // Freeze every shard at once (ascending index; the only multi-shard
  // lock acquisition in the proxy, so no ordering cycle is possible).
  // Sequence numbers are claimed and WAL-appended under the owning
  // shard's lock, so while all locks are held there is no in-flight
  // claim: every acknowledged record has seq < global_seq_ and is in its
  // shard's file. That makes the value a sound replication watermark.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.push_back(shard->AcquireLock());
  return global_seq_.load(std::memory_order_acquire);
}

bool ExplainableProxy::AnyShardQuarantined() const {
  for (const auto& shard : shards_) {
    if (shard->state() == ContextShard::State::kQuarantined) return true;
  }
  return false;
}

void ExplainableProxy::SyncContextGauges() const {
  ins_.context_window_size->Set(
      static_cast<int64_t>(total_rows_.load(std::memory_order_acquire)));
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->total_recorded();
  ins_.recorded_pairs->Set(static_cast<int64_t>(total));
  ins_.context_degraded->Set(AnyShardQuarantined() ? 1 : 0);
}

Result<Label> ExplainableProxy::Predict(const Instance& x,
                                        const Deadline& deadline) {
  obs::RequestTrace trace(traces_.get(), "predict");
  obs::ScopedLatency latency(registry_.get(), ins_.predict_latency_us);
  std::lock_guard<std::mutex> lock(mu_);
  ins_.predicts->Increment();
  if (endpoint_ == nullptr) {
    Status status = Status::FailedPrecondition(
        "proxy was created without a model; use Record()");
    FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kError, &status);
    return status;
  }
  {
    auto span = trace.Phase("validate");
    Status valid = ValidateRequest(x, 0, /*check_label=*/false);
    if (!valid.ok()) {
      FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kError, &valid);
      return valid;
    }
  }
  if (overload_ != nullptr) {
    auto span = trace.Phase("admit");
    Status admitted = overload_->AdmitCheap(RequestClass::kPredict);
    if (!admitted.ok()) {
      FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kShed, &admitted);
      return admitted;
    }
  }
  {
    // AllowRequest mutates on the open -> half-open cooldown edge; fold
    // any transition into the gauge + transition counters.
    const CircuitBreaker::State before = breaker_.state();
    const bool allowed = breaker_.AllowRequest();
    SyncBreakerLocked(before);
    if (!allowed) {
      ins_.breaker_rejections->Increment();
      Status status = Status::Unavailable(
          "circuit breaker open; proxy is serving record-only (Explain "
          "still available)");
      FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kBroke, &status);
      return status;
    }
  }
  int attempts = 0;
  Result<Label> served = [&] {
    auto span = trace.Phase("model_call");
    return CallEndpoint(x, deadline, &attempts);
  }();
  if (!served.ok()) {
    // A deadline miss reflects the client's budget, not backend health, so
    // it does not count towards tripping the breaker.
    if (served.status().code() != StatusCode::kDeadlineExceeded) {
      const CircuitBreaker::State before = breaker_.state();
      breaker_.RecordFailure();
      SyncBreakerLocked(before);
    }
    ins_.predict_failures->Increment();
    FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kError,
                &served.status());
    return served.status();
  }
  {
    const CircuitBreaker::State before = breaker_.state();
    breaker_.RecordSuccess();
    SyncBreakerLocked(before);
  }
  {
    auto span = trace.Phase("record");
    Status recorded = RecordToShard(x, *served);
    if (!recorded.ok()) {
      if (recorded.code() == StatusCode::kUnavailable) {
        // The prediction is valid; only its durable recording failed
        // (quarantined or read-only shard). Serve it and say so.
        FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kDegraded,
                    &recorded);
        return *served;
      }
      FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kError, &recorded);
      return recorded;
    }
  }
  FinishTrace(trace, Op::kPredict,
              attempts > 1 ? obs::TraceOutcome::kRetried
                           : obs::TraceOutcome::kServedFull);
  return *served;
}

Status ExplainableProxy::Record(const Instance& x, Label y) {
  obs::RequestTrace trace(traces_.get(), "record");
  {
    auto span = trace.Phase("validate");
    Status valid = ValidateRequest(x, y, /*check_label=*/true);
    if (!valid.ok()) {
      FinishTrace(trace, Op::kRecord, obs::TraceOutcome::kError, &valid);
      return valid;
    }
  }
  if (overload_ != nullptr) {
    auto span = trace.Phase("admit");
    Status admitted = overload_->AdmitCheap(RequestClass::kRecord);
    if (!admitted.ok()) {
      FinishTrace(trace, Op::kRecord, obs::TraceOutcome::kShed, &admitted);
      return admitted;
    }
  }
  auto span = trace.Phase("record");
  Status recorded = RecordToShard(x, y);
  span.End();
  if (!recorded.ok()) {
    FinishTrace(trace, Op::kRecord, obs::TraceOutcome::kError, &recorded);
    return recorded;
  }
  FinishTrace(trace, Op::kRecord, obs::TraceOutcome::kServedFull);
  return Status::Ok();
}

Context ExplainableProxy::ContextSnapshot() const { return MergedContext(); }

Result<KeyResult> ExplainableProxy::Explain(const Instance& x, Label y,
                                            const Deadline& deadline) const {
  obs::RequestTrace trace(traces_.get(), "explain");
  obs::ScopedLatency latency(registry_.get(), ins_.explain_latency_us);
  ins_.explains->Increment();
  {
    auto span = trace.Phase("validate");
    Status valid = ValidateRequest(x, y, /*check_label=*/true);
    if (!valid.ok()) {
      FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kError, &valid);
      return valid;
    }
  }
  // Admission runs outside mu_: a request queued for an explain slot must
  // never block Predict/Record traffic.
  std::optional<OverloadController::Permit> permit;
  if (overload_ != nullptr) {
    auto span = trace.Phase("admit");
    auto admitted =
        overload_->AdmitExpensive(RequestClass::kExplain, deadline);
    span.End();
    if (!admitted.ok()) {
      // Shed — the cached rung of the ladder: a cached key that Get()
      // just re-proved conformant against the current window is a real
      // answer, not a stale approximation.
      std::lock_guard<std::mutex> lock(mu_);
      if (explain_cache_ != nullptr) {
        if (auto cached = explain_cache_->Get(x, y)) {
          ins_.cache_served_explains->Increment();
          FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kServedCached);
          return *cached;
        }
      }
      FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kShed,
                  &admitted.status());
      return admitted.status();
    }
    permit.emplace(std::move(admitted).value());
  }
  Context context(schema_);
  uint64_t cache_stamp = 0;
  bool degraded_context = false;
  {
    auto span = trace.Phase("snapshot");
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Explaining consults only the recorded context (paper Section 6),
      // so it keeps working when the breaker has taken the model out of
      // the path — that serve is the "record-only fallback" rung.
      if (breaker_.state() == CircuitBreaker::State::kOpen) {
        ins_.fallback_serves->Increment();
      }
      // Admitted but under pressure (queued, saturated limiter, CoDel):
      // prefer the cached key over burning a saturated machine on a
      // search.
      if (permit.has_value() && permit->under_pressure() &&
          explain_cache_ != nullptr) {
        if (auto cached = explain_cache_->Get(x, y)) {
          ins_.cache_served_explains->Increment();
          FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kServedCached);
          return *cached;
        }
      }
    }
    // Stamp the delta ring *before* merging: any Record that lands
    // between this read and the merge advances the ring past the stamp,
    // and Put() refuses entries whose window membership is ambiguous —
    // the cache's exactness gate.
    if (explain_cache_ != nullptr) cache_stamp = explain_cache_->delta_seq();
    // Merge the shard windows by global sequence number: exact arrival
    // order, so the key search sees the same context a 1-shard proxy
    // would and returns bit-identical keys.
    context = MergedContext();
    degraded_context = AnyShardQuarantined();
    if (context.size() == 0) {
      Status status =
          Status::FailedPrecondition("no predictions recorded yet");
      FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kError, &status);
      return status;
    }
  }
  // The key search runs on the copy, outside every lock: a slow Explain
  // never stalls Predict/Record traffic. The configuration is assembled
  // by the shared read path so a read replica searching the same rows
  // computes the bit-identical key.
  Result<KeyResult> key = [&] {
    auto span = trace.Phase("search");
    return SearchKey(context, x, y, deadline, ExplainReadPath());
  }();
  if (!key.ok()) {
    FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kError,
                &key.status());
    return key;
  }
  const bool deadline_degraded = key->degraded;
  if (degraded_context) {
    // A quarantined shard means rows are missing from the context; the
    // key is honest about its provenance.
    key->degraded = true;
  }
  if (key->degraded) {
    ins_.degraded_explains->Increment();
    if (deadline_degraded) ins_.deadline_misses->Increment();
    FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kDegraded);
  } else {
    if (explain_cache_ != nullptr) {
      // Only full (minimised) keys are worth caching: a padded degraded
      // key served from cache would degrade answers even when idle.
      std::lock_guard<std::mutex> lock(mu_);
      explain_cache_->Put(x, y, cache_stamp, context.size(), *key);
    }
    FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kServedFull);
  }
  return key;
}

std::vector<Result<KeyResult>> ExplainableProxy::ExplainBatch(
    const std::vector<BatchQuery>& items) const {
  std::vector<Result<KeyResult>> results(
      items.size(), Result<KeyResult>(Status::Internal("unanswered")));
  if (items.empty()) return results;
  obs::RequestTrace trace(traces_.get(), "explain_batch");
  obs::ScopedLatency latency(registry_.get(), ins_.explain_latency_us);
  ins_.explains->Add(items.size());
  // Per-item request accounting: the batch is a transport optimization,
  // not a new entry point, so each item lands in the same
  // cce_requests_total{op="explain"} matrix a serial Explain would.
  auto count_item = [&](obs::TraceOutcome outcome) {
    ins_.requests[static_cast<int>(Op::kExplain)]
                 [static_cast<int>(outcome) - 1]
        ->Increment();
  };
  // Validate every item individually — one malformed instance must not
  // poison its batchmates.
  std::vector<size_t> live;
  live.reserve(items.size());
  {
    auto span = trace.Phase("validate");
    for (size_t i = 0; i < items.size(); ++i) {
      Status valid =
          ValidateRequest(items[i].x, items[i].y, /*check_label=*/true);
      if (valid.ok()) {
        live.push_back(i);
      } else {
        count_item(obs::TraceOutcome::kError);
        results[i] = std::move(valid);
      }
    }
  }
  if (live.empty()) {
    trace.set_outcome(obs::TraceOutcome::kError);
    return results;
  }
  // Serve item `i` from the cache if a generation-fresh entry exists;
  // caller holds mu_. Returns false when the item still needs a search.
  auto serve_cached_locked = [&](size_t i) {
    if (explain_cache_ == nullptr) return false;
    auto cached = explain_cache_->Get(items[i].x, items[i].y);
    if (!cached.has_value()) return false;
    ins_.cache_served_explains->Increment();
    count_item(obs::TraceOutcome::kServedCached);
    results[i] = *std::move(cached);
    return true;
  };
  // One admission charge for the whole batch: the expensive unit of work
  // is the shared bitmap build, and the per-item greedy is cheap next to
  // it. The earliest finite deadline bounds the queue wait so no item
  // waits past its own budget just to be admitted.
  std::optional<OverloadController::Permit> permit;
  if (overload_ != nullptr) {
    Deadline admit_deadline = items[live.front()].deadline;
    for (size_t i : live) {
      if (items[i].deadline.expiry() < admit_deadline.expiry()) {
        admit_deadline = items[i].deadline;
      }
    }
    auto span = trace.Phase("admit");
    auto admitted =
        overload_->AdmitExpensive(RequestClass::kExplain, admit_deadline);
    span.End();
    if (!admitted.ok()) {
      // Shed: each item falls back to the cached rung individually; the
      // ones without a fresh entry are shed with the controller's
      // retry_after hint.
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i : live) {
        if (serve_cached_locked(i)) continue;
        count_item(obs::TraceOutcome::kShed);
        results[i] = admitted.status();
      }
      trace.set_outcome(obs::TraceOutcome::kShed);
      return results;
    }
    permit.emplace(std::move(admitted).value());
  }
  Context context(schema_);
  uint64_t cache_stamp = 0;
  bool degraded_context = false;
  std::vector<size_t> pending;
  pending.reserve(live.size());
  {
    auto span = trace.Phase("snapshot");
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (breaker_.state() == CircuitBreaker::State::kOpen) {
        ins_.fallback_serves->Increment();
      }
      // Under pressure, items with a fresh cached key skip the search;
      // only the remainder costs bitmap work.
      const bool under_pressure =
          permit.has_value() && permit->under_pressure();
      for (size_t i : live) {
        if (under_pressure && serve_cached_locked(i)) continue;
        pending.push_back(i);
      }
    }
    if (pending.empty()) {
      trace.set_outcome(obs::TraceOutcome::kServedCached);
      return results;
    }
    if (explain_cache_ != nullptr) cache_stamp = explain_cache_->delta_seq();
    context = MergedContext();
    degraded_context = AnyShardQuarantined();
    if (context.size() == 0) {
      Status status =
          Status::FailedPrecondition("no predictions recorded yet");
      for (size_t i : pending) {
        count_item(obs::TraceOutcome::kError);
        results[i] = status;
      }
      trace.set_outcome(obs::TraceOutcome::kError);
      return results;
    }
  }
  std::vector<BatchQuery> batch;
  batch.reserve(pending.size());
  for (size_t i : pending) batch.push_back(items[i]);
  Result<std::vector<KeyResult>> keys = [&] {
    auto span = trace.Phase("search");
    return SearchKeyBatch(context, batch, ExplainReadPath());
  }();
  if (!keys.ok()) {
    for (size_t i : pending) {
      count_item(obs::TraceOutcome::kError);
      results[i] = keys.status();
    }
    trace.set_outcome(obs::TraceOutcome::kError);
    return results;
  }
  ins_.batch_executions->Increment();
  ins_.batch_items->Add(pending.size());
  bool any_degraded = false;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t j = 0; j < pending.size(); ++j) {
    const size_t i = pending[j];
    KeyResult key = std::move((*keys)[j]);
    const bool deadline_degraded = key.degraded;
    if (degraded_context) key.degraded = true;
    if (key.degraded) {
      any_degraded = true;
      ins_.degraded_explains->Increment();
      if (deadline_degraded) ins_.deadline_misses->Increment();
      count_item(obs::TraceOutcome::kDegraded);
    } else {
      if (explain_cache_ != nullptr) {
        explain_cache_->Put(items[i].x, items[i].y, cache_stamp,
                            context.size(), key);
      }
      count_item(obs::TraceOutcome::kServedFull);
    }
    results[i] = std::move(key);
  }
  trace.set_outcome(any_degraded ? obs::TraceOutcome::kDegraded
                                 : obs::TraceOutcome::kServedFull);
  return results;
}

Result<std::vector<RelativeCounterfactual>>
ExplainableProxy::Counterfactuals(const Instance& x, Label y) const {
  obs::RequestTrace trace(traces_.get(), "counterfactuals");
  {
    auto span = trace.Phase("validate");
    Status valid = ValidateRequest(x, y, /*check_label=*/true);
    if (!valid.ok()) {
      FinishTrace(trace, Op::kCfs, obs::TraceOutcome::kError, &valid);
      return valid;
    }
  }
  std::optional<OverloadController::Permit> permit;
  if (overload_ != nullptr) {
    auto span = trace.Phase("admit");
    auto admitted = overload_->AdmitExpensive(
        RequestClass::kCounterfactuals, Deadline::Infinite());
    span.End();
    if (!admitted.ok()) {
      FinishTrace(trace, Op::kCfs, obs::TraceOutcome::kShed,
                  &admitted.status());
      return admitted.status();
    }
    permit.emplace(std::move(admitted).value());
  }
  Context context(schema_);
  {
    auto span = trace.Phase("snapshot");
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (breaker_.state() == CircuitBreaker::State::kOpen) {
        ins_.fallback_serves->Increment();
      }
    }
    context = MergedContext();
    if (context.size() == 0) {
      Status status =
          Status::FailedPrecondition("no predictions recorded yet");
      FinishTrace(trace, Op::kCfs, obs::TraceOutcome::kError, &status);
      return status;
    }
  }
  auto result = [&] {
    auto span = trace.Phase("search");
    return SearchCounterfactuals(context, x, y);
  }();
  if (result.ok()) {
    FinishTrace(trace, Op::kCfs, obs::TraceOutcome::kServedFull);
  } else {
    FinishTrace(trace, Op::kCfs, obs::TraceOutcome::kError,
                &result.status());
  }
  return result;
}

Status ExplainableProxy::RepairShard(size_t shard) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("no such shard: " +
                                   std::to_string(shard));
  }
  CCE_RETURN_IF_ERROR(shards_[shard]->Repair());
  if (explain_cache_ != nullptr) {
    // Repair swaps the shard's window wholesale without emitting window
    // deltas, so cached keys can no longer be re-proven — drop them all
    // rather than serve an answer the delta replay cannot vouch for.
    std::lock_guard<std::mutex> lock(mu_);
    explain_cache_->Clear();
  }
  SyncContextGauges();
  return Status::Ok();
}

bool ExplainableProxy::DriftAlarmed() const {
  for (const auto& shard : shards_) {
    if (shard->DriftAlarmed()) return true;
  }
  return false;
}

size_t ExplainableProxy::recorded() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->total_recorded();
  return static_cast<size_t>(total);
}

HealthSnapshot ExplainableProxy::Health() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Every counter below is a read of the one registry cell that tracks the
  // event (docs/metrics.md); HealthSnapshot is an assembled view, not a
  // second set of books.
  HealthSnapshot snapshot;
  snapshot.predicts = ins_.predicts->Value();
  snapshot.predict_failures = ins_.predict_failures->Value();
  snapshot.retries = ins_.retries->Value();
  snapshot.deadline_misses = ins_.deadline_misses->Value();
  snapshot.explains = ins_.explains->Value();
  snapshot.degraded_explains = ins_.degraded_explains->Value();
  snapshot.cache_served_explains = ins_.cache_served_explains->Value();
  snapshot.fallback_serves = ins_.fallback_serves->Value();
  snapshot.validation_rejects = ins_.validation_rejects->Value();
  snapshot.breaker_state = breaker_.state();
  snapshot.breaker_rejections = ins_.breaker_rejections->Value();
  snapshot.breaker_trips =
      ins_.breaker_transitions[static_cast<int>(CircuitBreaker::State::kOpen)]
          ->Value();
  snapshot.wal_records_logged = ins_.wal_records_logged->Value();
  snapshot.wal_fsyncs = ins_.wal_fsyncs->Value();
  snapshot.wal_compactions = ins_.wal_compactions->Value();
  snapshot.wal_records_recovered = ins_.wal_records_recovered->Value();
  snapshot.wal_records_dropped = ins_.wal_records_dropped->Value();
  snapshot.compaction_failures = ins_.compaction_failures->Value();
  snapshot.quarantine_drops = ins_.quarantine_drops->Value();
  snapshot.tmp_orphans_removed = ins_.tmp_orphans_removed->Value();
  snapshot.degraded_context = AnyShardQuarantined();
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ContextShard& shard = *shards_[i];
    HealthSnapshot::ShardHealth health;
    health.index = i;
    health.state = shard.state();
    health.window_rows = shard.window_size();
    health.total_recorded = shard.total_recorded();
    health.wal_poisoned = shard.wal_poisoned();
    health.quarantine_reason = shard.quarantine_reason();
    health.last_salvage_truncated_bytes =
        shard.last_salvage_truncated_bytes();
    health.last_quarantine_reason = shard.last_quarantine_reason();
    health.last_quarantine_cause = shard.last_quarantine_cause();
    if (health.state == ContextShard::State::kQuarantined) {
      ++snapshot.shards_quarantined;
    }
    if (health.state == ContextShard::State::kReadOnly) {
      ++snapshot.shards_read_only;
    }
    snapshot.shard_repairs += shard_ins_[i].shard_repairs->Value();
    snapshot.shards.push_back(std::move(health));
  }
  if (overload_ != nullptr) {
    // Lock order is always mu_ -> controller mutex (admission itself
    // never holds mu_), so this nested snapshot cannot invert.
    OverloadController::Stats admission = overload_->stats();
    snapshot.admitted_predicts = admission.admitted_predicts;
    snapshot.admitted_records = admission.admitted_records;
    snapshot.admitted_explains = admission.admitted_explains;
    snapshot.admitted_counterfactuals = admission.admitted_counterfactuals;
    snapshot.shed_rate_limited = admission.shed_rate_limited;
    snapshot.shed_queue_full = admission.shed_queue_full;
    snapshot.shed_deadline_unmeetable = admission.shed_deadline_unmeetable;
    snapshot.shed_queue_deadline = admission.shed_queue_deadline;
    snapshot.shed_codel = admission.shed_codel;
    snapshot.explain_queue_waits = admission.queue_waits;
    snapshot.concurrency_limit = admission.concurrency_limit;
    snapshot.concurrency_increases = admission.concurrency_increases;
    snapshot.concurrency_decreases = admission.concurrency_decreases;
    snapshot.explain_latency_ewma_us = admission.explain_latency_ewma_us;
  }
  if (explain_cache_ != nullptr) {
    const ExplainCache::Stats cache = explain_cache_->stats();
    snapshot.cache_hits = cache.hits;
    snapshot.cache_misses = cache.misses;
    snapshot.cache_stale_drops = cache.stale_drops;
    snapshot.cache_revalidations = cache.revalidations;
    snapshot.cache_revalidation_failures = cache.revalidation_failures;
  }
  snapshot.batch_executions = ins_.batch_executions->Value();
  snapshot.batch_items = ins_.batch_items->Value();
  return snapshot;
}

}  // namespace cce::serving
