#include "serving/proxy.h"

#include "core/srk.h"

namespace cce::serving {

ExplainableProxy::ExplainableProxy(std::shared_ptr<const Schema> schema,
                                   const Model* model,
                                   const Options& options)
    : schema_(std::move(schema)), model_(model), options_(options) {
  if (options_.monitor_drift) {
    drift_ = std::make_unique<DriftMonitor>(schema_, options_.drift);
  }
}

Result<std::unique_ptr<ExplainableProxy>> ExplainableProxy::Create(
    std::shared_ptr<const Schema> schema, const Model* model,
    const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  return std::unique_ptr<ExplainableProxy>(
      new ExplainableProxy(std::move(schema), model, options));
}

Result<Label> ExplainableProxy::Predict(const Instance& x) {
  if (model_ == nullptr) {
    return Status::FailedPrecondition(
        "proxy was created without a model; use Record()");
  }
  if (x.size() != schema_->num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  Label y = model_->Predict(x);
  CCE_RETURN_IF_ERROR(Record(x, y));
  return y;
}

Status ExplainableProxy::Record(const Instance& x, Label y) {
  if (x.size() != schema_->num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  window_.emplace_back(x, y);
  if (options_.context_capacity > 0) {
    while (window_.size() > options_.context_capacity) {
      window_.pop_front();
    }
  }
  ++recorded_;
  if (drift_ != nullptr) drift_->Observe(x, y);
  return Status::Ok();
}

Context ExplainableProxy::ContextSnapshot() const {
  Context context(schema_);
  for (const auto& [x, y] : window_) context.Add(x, y);
  return context;
}

Result<KeyResult> ExplainableProxy::Explain(const Instance& x,
                                            Label y) const {
  if (window_.empty()) {
    return Status::FailedPrecondition("no predictions recorded yet");
  }
  Context context = ContextSnapshot();
  Srk::Options options;
  options.alpha = options_.alpha;
  return Srk::ExplainInstance(context, x, y, options);
}

Result<std::vector<RelativeCounterfactual>>
ExplainableProxy::Counterfactuals(const Instance& x, Label y) const {
  if (window_.empty()) {
    return Status::FailedPrecondition("no predictions recorded yet");
  }
  Context context = ContextSnapshot();
  return CounterfactualFinder::FindForInstance(context, x, y, {});
}

bool ExplainableProxy::DriftAlarmed() const {
  return drift_ != nullptr && drift_->Alarmed();
}

}  // namespace cce::serving
