#include "serving/proxy.h"

#include <algorithm>
#include <fstream>
#include <thread>
#include <utility>

#include "core/srk.h"
#include "io/atomic_file.h"
#include "io/serialize.h"

namespace cce::serving {
namespace {

bool FileExists(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  return probe.good();
}

/// A recovered snapshot must describe the same feature space as the live
/// schema: feature/label names and domain sizes all line up. Anything else
/// means the directory belongs to a different deployment.
Status CheckSchemaCompatible(const Schema& live, const Schema& stored) {
  if (live.num_features() != stored.num_features()) {
    return Status::InvalidArgument(
        "recovered snapshot has " + std::to_string(stored.num_features()) +
        " features, schema expects " + std::to_string(live.num_features()));
  }
  for (FeatureId f = 0; f < live.num_features(); ++f) {
    if (live.FeatureName(f) != stored.FeatureName(f)) {
      return Status::InvalidArgument("recovered snapshot feature " +
                                     std::to_string(f) + " is '" +
                                     stored.FeatureName(f) + "', expected '" +
                                     live.FeatureName(f) + "'");
    }
    if (live.DomainSize(f) < stored.DomainSize(f)) {
      return Status::InvalidArgument(
          "recovered snapshot domain of '" + live.FeatureName(f) +
          "' is larger than the live schema's");
    }
  }
  if (live.num_labels() < stored.num_labels()) {
    return Status::InvalidArgument(
        "recovered snapshot has more labels than the live schema");
  }
  return Status::Ok();
}

const char* OpName(int op) {
  switch (op) {
    case 0:
      return "predict";
    case 1:
      return "record";
    case 2:
      return "explain";
    case 3:
      return "counterfactuals";
  }
  return "unknown";
}

const char* BreakerStateLabel(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

}  // namespace

ExplainableProxy::ExplainableProxy(std::shared_ptr<const Schema> schema,
                                   ModelEndpoint* endpoint,
                                   const Options& options)
    : schema_(std::move(schema)),
      endpoint_(endpoint),
      options_(options),
      retry_policy_(options.retry),
      breaker_(options.breaker, options.clock),
      retry_rng_(options.resilience_seed),
      sleep_(options.sleep) {
  if (options_.monitor_drift) {
    drift_ = std::make_unique<DriftMonitor>(schema_, options_.drift);
  }
  if (!sleep_) {
    sleep_ = [](std::chrono::milliseconds d) {
      std::this_thread::sleep_for(d);
    };
  }
  registry_ = options_.observability.registry;
  if (registry_ == nullptr) {
    obs::Registry::Options registry_options;
    registry_options.clock = options_.observability.clock;
    registry_ = std::make_shared<obs::Registry>(registry_options);
  }
  if (options_.observability.trace_capacity > 0) {
    traces_ = std::make_unique<obs::TraceRing>(
        options_.observability.trace_capacity, registry_->clock());
  }
  InitInstruments();
  if (options_.parallel_conformity && options_.conformity_threads != 1) {
    // A 1-thread pool is strictly worse than no pool (the caller blocks in
    // Wait() while one worker does serial work plus dispatch overhead), so
    // conformity_threads == 1 runs the bitset engine serially instead.
    conformity_pool_ =
        std::make_unique<ThreadPool>(options_.conformity_threads);
    conformity_pool_gauges_ = std::make_unique<obs::ThreadPoolGauges>(
        registry_.get(), conformity_pool_.get(), "conformity");
  }
  if (options_.overload.enabled) {
    overload_ =
        std::make_unique<OverloadController>(options_.overload,
                                             registry_.get());
    explain_cache_ = std::make_unique<ExplainCache>(options_.explain_cache,
                                                    registry_.get());
  }
}

void ExplainableProxy::InitInstruments() {
  obs::Registry& reg = *registry_;
  for (int op = 0; op < kNumOps; ++op) {
    for (int outcome = 0; outcome < kNumOutcomes; ++outcome) {
      ins_.requests[op][outcome] = reg.GetCounter(
          "cce_requests_total",
          "Requests finished, by entry point and cause of outcome.",
          {{"op", OpName(op)},
           {"outcome", obs::TraceOutcomeName(
                           static_cast<obs::TraceOutcome>(outcome + 1))}});
    }
  }
  ins_.predicts = reg.GetCounter("cce_predicts_total",
                                 "Predict() calls accepted for serving.");
  ins_.predict_failures =
      reg.GetCounter("cce_predict_failures_total",
                     "Predict() calls that failed after retries.");
  ins_.retries = reg.GetCounter(
      "cce_retries_total", "Backend call retries performed by Predict().");
  ins_.deadline_misses = reg.GetCounter(
      "cce_deadline_misses_total",
      "Requests that exhausted their deadline (Predict expiry or degraded "
      "Explain).");
  ins_.explains =
      reg.GetCounter("cce_explains_total", "Explain() calls received.");
  ins_.degraded_explains = reg.GetCounter(
      "cce_degraded_explains_total",
      "Explains answered with a padded, non-minimal key at deadline expiry.");
  ins_.cache_served_explains =
      reg.GetCounter("cce_cache_served_explains_total",
                     "Explains answered from the explanation cache.");
  ins_.fallback_serves = reg.GetCounter(
      "cce_fallback_serves_total",
      "Explain/Counterfactuals served from context while the breaker was "
      "open (record-only mode).");
  ins_.validation_rejects = reg.GetCounter(
      "cce_validation_rejects_total",
      "Malformed requests rejected at the proxy boundary.");
  ins_.breaker_rejections = reg.GetCounter(
      "cce_breaker_rejections_total",
      "Predicts rejected fast because the circuit breaker was open.");
  for (int state = 0; state < 3; ++state) {
    ins_.breaker_transitions[state] = reg.GetCounter(
        "cce_breaker_transitions_total",
        "Circuit breaker state transitions, by destination state.",
        {{"to",
          BreakerStateLabel(static_cast<CircuitBreaker::State>(state))}});
  }
  ins_.breaker_state = reg.GetGauge(
      "cce_breaker_state",
      "Circuit breaker state: 0 = closed, 1 = open, 2 = half-open.");
  ins_.wal_records_logged =
      reg.GetCounter("cce_wal_records_logged_total",
                     "Pairs appended to the write-ahead log.");
  ins_.wal_fsyncs =
      reg.GetCounter("cce_wal_fsyncs_total", "WAL fsync() calls issued.");
  ins_.wal_compactions = reg.GetCounter(
      "cce_wal_compactions_total",
      "Log compactions (snapshot written, log truncated).");
  ins_.wal_records_recovered = reg.GetCounter(
      "cce_wal_records_recovered_total",
      "Pairs replayed into the context at startup (snapshot + log).");
  ins_.wal_records_dropped = reg.GetCounter(
      "cce_wal_records_dropped_total",
      "Recovery records dropped (corrupt tail or schema-incompatible).");
  ins_.bitmap_rebuilds = reg.GetCounter(
      "cce_bitmap_rebuilds_total",
      "Full conformity-bitmap builds by the bitset engine (one per "
      "bitset-path Explain).");
  ins_.conformity_shards = reg.GetCounter(
      "cce_conformity_shards_total",
      "Work items dispatched to the conformity pool by the bitset engine "
      "(shard fanout).");
  ins_.context_window_size = reg.GetGauge(
      "cce_context_window_size", "Pairs currently in the rolling context.");
  ins_.recorded_pairs = reg.GetGauge(
      "cce_recorded_pairs",
      "Pairs ever recorded, including those recovered at startup.");
  ins_.predict_latency_us = reg.GetHistogram(
      "cce_predict_latency_us",
      "End-to-end Predict() latency in microseconds.");
  ins_.explain_latency_us = reg.GetHistogram(
      "cce_explain_latency_us",
      "End-to-end Explain() latency in microseconds.");
  ins_.wal_append_us = reg.GetHistogram(
      "cce_wal_append_us", "WAL append (+ conditional fsync) latency in "
      "microseconds.");
}

void ExplainableProxy::FinishTrace(obs::RequestTrace& trace, Op op,
                                   obs::TraceOutcome outcome,
                                   const Status* failure) const {
  trace.set_outcome(outcome);
  if (failure != nullptr && trace.active()) {
    trace.set_detail(failure->message());
  }
  ins_.requests[static_cast<int>(op)][static_cast<int>(outcome) - 1]
      ->Increment();
}

void ExplainableProxy::SyncBreakerLocked(CircuitBreaker::State before) const {
  const CircuitBreaker::State after = breaker_.state();
  if (after != before) {
    ins_.breaker_transitions[static_cast<int>(after)]->Increment();
  }
  ins_.breaker_state->Set(static_cast<int64_t>(after));
}

void ExplainableProxy::SyncWalFsyncsLocked() {
  if (wal_ == nullptr) return;
  const uint64_t fsyncs = wal_->fsyncs();
  if (fsyncs > wal_fsyncs_exported_) {
    ins_.wal_fsyncs->Add(fsyncs - wal_fsyncs_exported_);
    wal_fsyncs_exported_ = fsyncs;
  }
}

Result<std::unique_ptr<ExplainableProxy>> ExplainableProxy::Create(
    std::shared_ptr<const Schema> schema, const Model* model,
    const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  auto proxy = std::unique_ptr<ExplainableProxy>(
      new ExplainableProxy(std::move(schema), nullptr, options));
  if (model != nullptr) {
    proxy->owned_endpoint_ = std::make_unique<LocalModelEndpoint>(model);
    proxy->endpoint_ = proxy->owned_endpoint_.get();
  }
  CCE_RETURN_IF_ERROR(proxy->InitDurability());
  return proxy;
}

Result<std::unique_ptr<ExplainableProxy>> ExplainableProxy::CreateWithEndpoint(
    std::shared_ptr<const Schema> schema, ModelEndpoint* endpoint,
    const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  auto proxy = std::unique_ptr<ExplainableProxy>(
      new ExplainableProxy(std::move(schema), endpoint, options));
  CCE_RETURN_IF_ERROR(proxy->InitDurability());
  return proxy;
}

Status ExplainableProxy::InitDurability() {
  const Options::Durability& durability = options_.durability;
  if (durability.dir.empty()) return Status::Ok();
  CCE_RETURN_IF_ERROR(io::EnsureDirectory(durability.dir));
  snapshot_path_ = durability.dir + "/context.snapshot";
  const std::string wal_path = durability.dir + "/context.wal";

  // Recovery replays into the window without re-logging: snapshot rows are
  // summarised by the log's base_recorded, log rows are already on disk.
  // Rows that no longer fit the live schema are skipped and counted as
  // dropped rather than failing recovery.
  size_t snapshot_rows = 0;
  if (FileExists(snapshot_path_)) {
    CCE_ASSIGN_OR_RETURN(Dataset snapshot,
                         io::LoadDatasetFromFile(snapshot_path_));
    CCE_RETURN_IF_ERROR(CheckSchemaCompatible(*schema_, snapshot.schema()));
    for (size_t row = 0; row < snapshot.size(); ++row) {
      if (RecordLocked(snapshot.instance(row), snapshot.label(row),
                       /*log=*/false)
              .ok()) {
        ++snapshot_rows;
      } else {
        ins_.wal_records_dropped->Increment();
      }
    }
  }

  io::ContextWal::RecoveryStats stats;
  uint64_t wal_rows = 0;
  auto replay = [this, &wal_rows](const Instance& x, Label y) {
    if (RecordLocked(x, y, /*log=*/false).ok()) {
      ++wal_rows;
    } else {
      ins_.wal_records_dropped->Increment();
    }
    return Status::Ok();
  };
  io::ContextWal::Options wal_options;
  wal_options.sync_every = durability.sync_every;
  CCE_ASSIGN_OR_RETURN(wal_,
                       io::ContextWal::Open(wal_path, wal_options, replay,
                                            &stats));

  // Total ever recorded: the log's base covers everything compacted away
  // (including rows evicted from the snapshot by the window capacity).
  recorded_ = static_cast<size_t>(
      std::max<uint64_t>(stats.base_recorded, snapshot_rows) +
      stats.records_recovered);
  ins_.recorded_pairs->Set(static_cast<int64_t>(recorded_));
  ins_.wal_records_recovered->Add(snapshot_rows + wal_rows);
  ins_.wal_records_dropped->Add(stats.records_dropped);

  // Start the new process on a clean generation: fold the replayed log
  // (and any salvage-truncated garbage) into a fresh snapshot.
  if (stats.records_recovered > 0 || stats.bytes_discarded > 0) {
    CCE_RETURN_IF_ERROR(CompactLocked());
  }
  SyncWalFsyncsLocked();
  return Status::Ok();
}

Result<Label> ExplainableProxy::CallEndpoint(const Instance& x,
                                             const Deadline& deadline,
                                             int* attempts) {
  retry_policy_.Reset();
  *attempts = 0;
  while (true) {
    if (deadline.expired()) {
      ins_.deadline_misses->Increment();
      return Status::DeadlineExceeded(
          "predict deadline expired after " + std::to_string(*attempts) +
          " attempt(s)");
    }
    Result<Label> served = endpoint_->Predict(x);
    ++*attempts;
    if (served.ok()) return served;
    if (!served.status().IsRetryable() ||
        !retry_policy_.ShouldRetry(*attempts)) {
      return served.status();
    }
    ins_.retries->Increment();
    std::chrono::milliseconds backoff =
        retry_policy_.NextBackoff(&retry_rng_);
    if (!deadline.infinite()) {
      // Never sleep past the deadline; the expiry check at the top of the
      // loop then converts the exhausted budget into kDeadlineExceeded.
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline.remaining());
      backoff = std::min(backoff, remaining);
    }
    if (backoff.count() > 0) sleep_(backoff);
  }
}

Status ExplainableProxy::ValidateRequestLocked(const Instance& x, Label y,
                                               bool check_label) const {
  Status valid = schema_->ValidateInstance(x);
  if (valid.ok() && check_label) valid = schema_->ValidateLabel(y);
  if (!valid.ok()) ins_.validation_rejects->Increment();
  return valid;
}

Result<Label> ExplainableProxy::Predict(const Instance& x,
                                        const Deadline& deadline) {
  obs::RequestTrace trace(traces_.get(), "predict");
  obs::ScopedLatency latency(registry_.get(), ins_.predict_latency_us);
  std::lock_guard<std::mutex> lock(mu_);
  ins_.predicts->Increment();
  if (endpoint_ == nullptr) {
    Status status = Status::FailedPrecondition(
        "proxy was created without a model; use Record()");
    FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kError, &status);
    return status;
  }
  {
    auto span = trace.Phase("validate");
    Status valid = ValidateRequestLocked(x, 0, /*check_label=*/false);
    if (!valid.ok()) {
      FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kError, &valid);
      return valid;
    }
  }
  if (overload_ != nullptr) {
    auto span = trace.Phase("admit");
    Status admitted = overload_->AdmitCheap(RequestClass::kPredict);
    if (!admitted.ok()) {
      FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kShed, &admitted);
      return admitted;
    }
  }
  {
    // AllowRequest mutates on the open -> half-open cooldown edge; fold
    // any transition into the gauge + transition counters.
    const CircuitBreaker::State before = breaker_.state();
    const bool allowed = breaker_.AllowRequest();
    SyncBreakerLocked(before);
    if (!allowed) {
      ins_.breaker_rejections->Increment();
      Status status = Status::Unavailable(
          "circuit breaker open; proxy is serving record-only (Explain "
          "still available)");
      FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kBroke, &status);
      return status;
    }
  }
  int attempts = 0;
  Result<Label> served = [&] {
    auto span = trace.Phase("model_call");
    return CallEndpoint(x, deadline, &attempts);
  }();
  if (!served.ok()) {
    // A deadline miss reflects the client's budget, not backend health, so
    // it does not count towards tripping the breaker.
    if (served.status().code() != StatusCode::kDeadlineExceeded) {
      const CircuitBreaker::State before = breaker_.state();
      breaker_.RecordFailure();
      SyncBreakerLocked(before);
    }
    ins_.predict_failures->Increment();
    FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kError,
                &served.status());
    return served.status();
  }
  {
    const CircuitBreaker::State before = breaker_.state();
    breaker_.RecordSuccess();
    SyncBreakerLocked(before);
  }
  {
    auto span = trace.Phase("record");
    Status recorded = RecordLocked(x, *served, /*log=*/true);
    if (!recorded.ok()) {
      FinishTrace(trace, Op::kPredict, obs::TraceOutcome::kError, &recorded);
      return recorded;
    }
  }
  FinishTrace(trace, Op::kPredict,
              attempts > 1 ? obs::TraceOutcome::kRetried
                           : obs::TraceOutcome::kServedFull);
  return *served;
}

Status ExplainableProxy::Record(const Instance& x, Label y) {
  obs::RequestTrace trace(traces_.get(), "record");
  std::lock_guard<std::mutex> lock(mu_);
  {
    auto span = trace.Phase("validate");
    Status valid = ValidateRequestLocked(x, y, /*check_label=*/true);
    if (!valid.ok()) {
      FinishTrace(trace, Op::kRecord, obs::TraceOutcome::kError, &valid);
      return valid;
    }
  }
  if (overload_ != nullptr) {
    auto span = trace.Phase("admit");
    Status admitted = overload_->AdmitCheap(RequestClass::kRecord);
    if (!admitted.ok()) {
      FinishTrace(trace, Op::kRecord, obs::TraceOutcome::kShed, &admitted);
      return admitted;
    }
  }
  auto span = trace.Phase("record");
  Status recorded = RecordLocked(x, y, /*log=*/true);
  span.End();
  if (!recorded.ok()) {
    FinishTrace(trace, Op::kRecord, obs::TraceOutcome::kError, &recorded);
    return recorded;
  }
  FinishTrace(trace, Op::kRecord, obs::TraceOutcome::kServedFull);
  return Status::Ok();
}

Status ExplainableProxy::RecordLocked(const Instance& x, Label y, bool log) {
  // Full validation (not just arity) also runs on the replay path, so a
  // poisoned row in a tampered WAL or snapshot is dropped rather than
  // admitted into the context.
  CCE_RETURN_IF_ERROR(schema_->ValidateInstance(x));
  CCE_RETURN_IF_ERROR(schema_->ValidateLabel(y));
  if (log && wal_ != nullptr) {
    // Write-ahead: the pair is durable (per the sync policy) before it
    // becomes visible in the window.
    {
      obs::ScopedLatency append_latency(registry_.get(), ins_.wal_append_us);
      CCE_RETURN_IF_ERROR(wal_->Append(x, y));
    }
    ins_.wal_records_logged->Increment();
    SyncWalFsyncsLocked();
  }
  window_.emplace_back(x, y);
  if (options_.context_capacity > 0) {
    while (window_.size() > options_.context_capacity) {
      window_.pop_front();
    }
  }
  ++recorded_;
  ins_.context_window_size->Set(static_cast<int64_t>(window_.size()));
  ins_.recorded_pairs->Set(static_cast<int64_t>(recorded_));
  if (drift_ != nullptr) drift_->Observe(x, y);
  if (log && wal_ != nullptr &&
      options_.durability.compact_threshold_bytes > 0 &&
      wal_->size_bytes() >= options_.durability.compact_threshold_bytes) {
    CCE_RETURN_IF_ERROR(CompactLocked());
  }
  return Status::Ok();
}

Status ExplainableProxy::CompactLocked() {
  CCE_RETURN_IF_ERROR(io::SaveDatasetToFile(SnapshotLocked(),
                                            snapshot_path_));
  CCE_RETURN_IF_ERROR(wal_->Reset(recorded_));
  ins_.wal_compactions->Increment();
  SyncWalFsyncsLocked();
  return Status::Ok();
}

Context ExplainableProxy::SnapshotLocked() const {
  Context context(schema_);
  for (const auto& [x, y] : window_) context.Add(x, y);
  return context;
}

Context ExplainableProxy::ContextSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

Result<KeyResult> ExplainableProxy::Explain(const Instance& x, Label y,
                                            const Deadline& deadline) const {
  obs::RequestTrace trace(traces_.get(), "explain");
  obs::ScopedLatency latency(registry_.get(), ins_.explain_latency_us);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ins_.explains->Increment();
    auto span = trace.Phase("validate");
    Status valid = ValidateRequestLocked(x, y, /*check_label=*/true);
    if (!valid.ok()) {
      FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kError, &valid);
      return valid;
    }
  }
  // Admission runs outside mu_: a request queued for an explain slot must
  // never block Predict/Record traffic.
  std::optional<OverloadController::Permit> permit;
  if (overload_ != nullptr) {
    auto span = trace.Phase("admit");
    auto admitted =
        overload_->AdmitExpensive(RequestClass::kExplain, deadline);
    span.End();
    if (!admitted.ok()) {
      // Shed — the cached rung of the ladder: an identical discretized
      // instance explained recently enough is still a real answer.
      std::lock_guard<std::mutex> lock(mu_);
      if (explain_cache_ != nullptr) {
        if (auto cached = explain_cache_->Get(x, y, recorded_)) {
          ins_.cache_served_explains->Increment();
          FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kServedCached);
          return *cached;
        }
      }
      FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kShed,
                  &admitted.status());
      return admitted.status();
    }
    permit.emplace(std::move(admitted).value());
  }
  Context context(schema_);
  uint64_t generation = 0;
  {
    auto span = trace.Phase("snapshot");
    std::lock_guard<std::mutex> lock(mu_);
    if (window_.empty()) {
      Status status =
          Status::FailedPrecondition("no predictions recorded yet");
      FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kError, &status);
      return status;
    }
    // Explaining consults only the recorded context (paper Section 6), so
    // it keeps working when the breaker has taken the model out of the
    // path — that serve is the "record-only fallback" rung of the ladder.
    if (breaker_.state() == CircuitBreaker::State::kOpen) {
      ins_.fallback_serves->Increment();
    }
    // Admitted but under pressure (queued, saturated limiter, CoDel):
    // prefer the cached key over burning a saturated machine on a search.
    if (permit.has_value() && permit->under_pressure() &&
        explain_cache_ != nullptr) {
      if (auto cached = explain_cache_->Get(x, y, recorded_)) {
        ins_.cache_served_explains->Increment();
        FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kServedCached);
        return *cached;
      }
    }
    context = SnapshotLocked();
    generation = recorded_;
  }
  // The key search runs on the copy, outside the lock: a slow Explain
  // never stalls Predict/Record traffic.
  Srk::Options options;
  options.alpha = options_.alpha;
  options.deadline = deadline;
  Srk::EngineStats engine_stats;
  if (options_.parallel_conformity) {
    options.parallel_conformity = true;
    options.pool = conformity_pool_.get();
    options.stats = &engine_stats;
  }
  Result<KeyResult> key = [&] {
    auto span = trace.Phase("search");
    return Srk::ExplainInstance(context, x, y, options);
  }();
  if (options_.parallel_conformity) {
    const uint64_t builds =
        engine_stats.bitmap_builds.load(std::memory_order_relaxed);
    if (builds > 0) ins_.bitmap_rebuilds->Add(builds);
    const uint64_t shards =
        engine_stats.shard_tasks.load(std::memory_order_relaxed);
    if (shards > 0) ins_.conformity_shards->Add(shards);
  }
  if (!key.ok()) {
    FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kError,
                &key.status());
    return key;
  }
  if (key->degraded) {
    ins_.degraded_explains->Increment();
    ins_.deadline_misses->Increment();
    FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kDegraded);
  } else {
    if (explain_cache_ != nullptr) {
      // Only full (minimised) keys are worth caching: a padded degraded
      // key served from cache would degrade answers even when idle.
      std::lock_guard<std::mutex> lock(mu_);
      explain_cache_->Put(x, y, generation, *key);
    }
    FinishTrace(trace, Op::kExplain, obs::TraceOutcome::kServedFull);
  }
  return key;
}

Result<std::vector<RelativeCounterfactual>>
ExplainableProxy::Counterfactuals(const Instance& x, Label y) const {
  obs::RequestTrace trace(traces_.get(), "counterfactuals");
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto span = trace.Phase("validate");
    Status valid = ValidateRequestLocked(x, y, /*check_label=*/true);
    if (!valid.ok()) {
      FinishTrace(trace, Op::kCfs, obs::TraceOutcome::kError, &valid);
      return valid;
    }
  }
  std::optional<OverloadController::Permit> permit;
  if (overload_ != nullptr) {
    auto span = trace.Phase("admit");
    auto admitted = overload_->AdmitExpensive(
        RequestClass::kCounterfactuals, Deadline::Infinite());
    span.End();
    if (!admitted.ok()) {
      FinishTrace(trace, Op::kCfs, obs::TraceOutcome::kShed,
                  &admitted.status());
      return admitted.status();
    }
    permit.emplace(std::move(admitted).value());
  }
  Context context(schema_);
  {
    auto span = trace.Phase("snapshot");
    std::lock_guard<std::mutex> lock(mu_);
    if (window_.empty()) {
      Status status =
          Status::FailedPrecondition("no predictions recorded yet");
      FinishTrace(trace, Op::kCfs, obs::TraceOutcome::kError, &status);
      return status;
    }
    if (breaker_.state() == CircuitBreaker::State::kOpen) {
      ins_.fallback_serves->Increment();
    }
    context = SnapshotLocked();
  }
  auto result = [&] {
    auto span = trace.Phase("search");
    return CounterfactualFinder::FindForInstance(context, x, y, {});
  }();
  if (result.ok()) {
    FinishTrace(trace, Op::kCfs, obs::TraceOutcome::kServedFull);
  } else {
    FinishTrace(trace, Op::kCfs, obs::TraceOutcome::kError,
                &result.status());
  }
  return result;
}

bool ExplainableProxy::DriftAlarmed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_ != nullptr && drift_->Alarmed();
}

size_t ExplainableProxy::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

HealthSnapshot ExplainableProxy::Health() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Every counter below is a read of the one registry cell that tracks the
  // event (docs/metrics.md); HealthSnapshot is an assembled view, not a
  // second set of books.
  HealthSnapshot snapshot;
  snapshot.predicts = ins_.predicts->Value();
  snapshot.predict_failures = ins_.predict_failures->Value();
  snapshot.retries = ins_.retries->Value();
  snapshot.deadline_misses = ins_.deadline_misses->Value();
  snapshot.explains = ins_.explains->Value();
  snapshot.degraded_explains = ins_.degraded_explains->Value();
  snapshot.cache_served_explains = ins_.cache_served_explains->Value();
  snapshot.fallback_serves = ins_.fallback_serves->Value();
  snapshot.validation_rejects = ins_.validation_rejects->Value();
  snapshot.breaker_state = breaker_.state();
  snapshot.breaker_rejections = ins_.breaker_rejections->Value();
  snapshot.breaker_trips =
      ins_.breaker_transitions[static_cast<int>(CircuitBreaker::State::kOpen)]
          ->Value();
  snapshot.wal_records_logged = ins_.wal_records_logged->Value();
  snapshot.wal_fsyncs = ins_.wal_fsyncs->Value();
  snapshot.wal_compactions = ins_.wal_compactions->Value();
  snapshot.wal_records_recovered = ins_.wal_records_recovered->Value();
  snapshot.wal_records_dropped = ins_.wal_records_dropped->Value();
  if (overload_ != nullptr) {
    // Lock order is always mu_ -> controller mutex (admission itself
    // never holds mu_), so this nested snapshot cannot invert.
    OverloadController::Stats admission = overload_->stats();
    snapshot.admitted_predicts = admission.admitted_predicts;
    snapshot.admitted_records = admission.admitted_records;
    snapshot.admitted_explains = admission.admitted_explains;
    snapshot.admitted_counterfactuals = admission.admitted_counterfactuals;
    snapshot.shed_rate_limited = admission.shed_rate_limited;
    snapshot.shed_queue_full = admission.shed_queue_full;
    snapshot.shed_deadline_unmeetable = admission.shed_deadline_unmeetable;
    snapshot.shed_queue_deadline = admission.shed_queue_deadline;
    snapshot.shed_codel = admission.shed_codel;
    snapshot.explain_queue_waits = admission.queue_waits;
    snapshot.concurrency_limit = admission.concurrency_limit;
    snapshot.concurrency_increases = admission.concurrency_increases;
    snapshot.concurrency_decreases = admission.concurrency_decreases;
    snapshot.explain_latency_ewma_us = admission.explain_latency_ewma_us;
  }
  if (explain_cache_ != nullptr) {
    const ExplainCache::Stats cache = explain_cache_->stats();
    snapshot.cache_hits = cache.hits;
    snapshot.cache_misses = cache.misses;
    snapshot.cache_stale_drops = cache.stale_drops;
  }
  return snapshot;
}

}  // namespace cce::serving
