#include "serving/proxy.h"

#include <algorithm>
#include <thread>

#include "core/srk.h"

namespace cce::serving {

ExplainableProxy::ExplainableProxy(std::shared_ptr<const Schema> schema,
                                   ModelEndpoint* endpoint,
                                   const Options& options)
    : schema_(std::move(schema)),
      endpoint_(endpoint),
      options_(options),
      retry_policy_(options.retry),
      breaker_(options.breaker, options.clock),
      retry_rng_(options.resilience_seed),
      sleep_(options.sleep) {
  if (options_.monitor_drift) {
    drift_ = std::make_unique<DriftMonitor>(schema_, options_.drift);
  }
  if (!sleep_) {
    sleep_ = [](std::chrono::milliseconds d) {
      std::this_thread::sleep_for(d);
    };
  }
}

Result<std::unique_ptr<ExplainableProxy>> ExplainableProxy::Create(
    std::shared_ptr<const Schema> schema, const Model* model,
    const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  auto proxy = std::unique_ptr<ExplainableProxy>(
      new ExplainableProxy(std::move(schema), nullptr, options));
  if (model != nullptr) {
    proxy->owned_endpoint_ = std::make_unique<LocalModelEndpoint>(model);
    proxy->endpoint_ = proxy->owned_endpoint_.get();
  }
  return proxy;
}

Result<std::unique_ptr<ExplainableProxy>> ExplainableProxy::CreateWithEndpoint(
    std::shared_ptr<const Schema> schema, ModelEndpoint* endpoint,
    const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  return std::unique_ptr<ExplainableProxy>(
      new ExplainableProxy(std::move(schema), endpoint, options));
}

Result<Label> ExplainableProxy::CallEndpoint(const Instance& x,
                                             const Deadline& deadline) {
  retry_policy_.Reset();
  int attempts = 0;
  while (true) {
    if (deadline.expired()) {
      ++health_.deadline_misses;
      return Status::DeadlineExceeded(
          "predict deadline expired after " + std::to_string(attempts) +
          " attempt(s)");
    }
    Result<Label> served = endpoint_->Predict(x);
    ++attempts;
    if (served.ok()) return served;
    if (!served.status().IsRetryable() ||
        !retry_policy_.ShouldRetry(attempts)) {
      return served.status();
    }
    ++health_.retries;
    std::chrono::milliseconds backoff =
        retry_policy_.NextBackoff(&retry_rng_);
    if (!deadline.infinite()) {
      // Never sleep past the deadline; the expiry check at the top of the
      // loop then converts the exhausted budget into kDeadlineExceeded.
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline.remaining());
      backoff = std::min(backoff, remaining);
    }
    if (backoff.count() > 0) sleep_(backoff);
  }
}

Result<Label> ExplainableProxy::Predict(const Instance& x,
                                        const Deadline& deadline) {
  ++health_.predicts;
  if (endpoint_ == nullptr) {
    return Status::FailedPrecondition(
        "proxy was created without a model; use Record()");
  }
  if (x.size() != schema_->num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  if (!breaker_.AllowRequest()) {
    return Status::Unavailable(
        "circuit breaker open; proxy is serving record-only (Explain still "
        "available)");
  }
  Result<Label> served = CallEndpoint(x, deadline);
  if (!served.ok()) {
    // A deadline miss reflects the client's budget, not backend health, so
    // it does not count towards tripping the breaker.
    if (served.status().code() != StatusCode::kDeadlineExceeded) {
      breaker_.RecordFailure();
    }
    ++health_.predict_failures;
    return served.status();
  }
  breaker_.RecordSuccess();
  CCE_RETURN_IF_ERROR(Record(x, *served));
  return *served;
}

Status ExplainableProxy::Record(const Instance& x, Label y) {
  if (x.size() != schema_->num_features()) {
    return Status::InvalidArgument("instance arity does not match schema");
  }
  window_.emplace_back(x, y);
  if (options_.context_capacity > 0) {
    while (window_.size() > options_.context_capacity) {
      window_.pop_front();
    }
  }
  ++recorded_;
  if (drift_ != nullptr) drift_->Observe(x, y);
  return Status::Ok();
}

Context ExplainableProxy::ContextSnapshot() const {
  Context context(schema_);
  for (const auto& [x, y] : window_) context.Add(x, y);
  return context;
}

Result<KeyResult> ExplainableProxy::Explain(const Instance& x, Label y,
                                            const Deadline& deadline) const {
  if (window_.empty()) {
    return Status::FailedPrecondition("no predictions recorded yet");
  }
  // Explaining consults only the recorded context (paper Section 6), so it
  // keeps working when the breaker has taken the model out of the path —
  // that serve is the "record-only fallback" rung of the ladder.
  if (breaker_.state() == CircuitBreaker::State::kOpen) {
    ++health_.fallback_serves;
  }
  Context context = ContextSnapshot();
  Srk::Options options;
  options.alpha = options_.alpha;
  options.deadline = deadline;
  Result<KeyResult> key = Srk::ExplainInstance(context, x, y, options);
  if (key.ok() && key->degraded) {
    ++health_.degraded_explains;
    ++health_.deadline_misses;
  }
  return key;
}

Result<std::vector<RelativeCounterfactual>>
ExplainableProxy::Counterfactuals(const Instance& x, Label y) const {
  if (window_.empty()) {
    return Status::FailedPrecondition("no predictions recorded yet");
  }
  if (breaker_.state() == CircuitBreaker::State::kOpen) {
    ++health_.fallback_serves;
  }
  Context context = ContextSnapshot();
  return CounterfactualFinder::FindForInstance(context, x, y, {});
}

bool ExplainableProxy::DriftAlarmed() const {
  return drift_ != nullptr && drift_->Alarmed();
}

HealthSnapshot ExplainableProxy::Health() const {
  HealthSnapshot snapshot = health_;
  snapshot.breaker_state = breaker_.state();
  snapshot.breaker_rejections = breaker_.rejected_count();
  snapshot.breaker_trips = breaker_.trip_count();
  return snapshot;
}

}  // namespace cce::serving
