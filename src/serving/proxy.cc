#include "serving/proxy.h"

#include <algorithm>
#include <fstream>
#include <thread>
#include <utility>

#include "core/srk.h"
#include "io/atomic_file.h"
#include "io/serialize.h"

namespace cce::serving {
namespace {

bool FileExists(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  return probe.good();
}

/// A recovered snapshot must describe the same feature space as the live
/// schema: feature/label names and domain sizes all line up. Anything else
/// means the directory belongs to a different deployment.
Status CheckSchemaCompatible(const Schema& live, const Schema& stored) {
  if (live.num_features() != stored.num_features()) {
    return Status::InvalidArgument(
        "recovered snapshot has " + std::to_string(stored.num_features()) +
        " features, schema expects " + std::to_string(live.num_features()));
  }
  for (FeatureId f = 0; f < live.num_features(); ++f) {
    if (live.FeatureName(f) != stored.FeatureName(f)) {
      return Status::InvalidArgument("recovered snapshot feature " +
                                     std::to_string(f) + " is '" +
                                     stored.FeatureName(f) + "', expected '" +
                                     live.FeatureName(f) + "'");
    }
    if (live.DomainSize(f) < stored.DomainSize(f)) {
      return Status::InvalidArgument(
          "recovered snapshot domain of '" + live.FeatureName(f) +
          "' is larger than the live schema's");
    }
  }
  if (live.num_labels() < stored.num_labels()) {
    return Status::InvalidArgument(
        "recovered snapshot has more labels than the live schema");
  }
  return Status::Ok();
}

}  // namespace

ExplainableProxy::ExplainableProxy(std::shared_ptr<const Schema> schema,
                                   ModelEndpoint* endpoint,
                                   const Options& options)
    : schema_(std::move(schema)),
      endpoint_(endpoint),
      options_(options),
      retry_policy_(options.retry),
      breaker_(options.breaker, options.clock),
      retry_rng_(options.resilience_seed),
      sleep_(options.sleep) {
  if (options_.monitor_drift) {
    drift_ = std::make_unique<DriftMonitor>(schema_, options_.drift);
  }
  if (!sleep_) {
    sleep_ = [](std::chrono::milliseconds d) {
      std::this_thread::sleep_for(d);
    };
  }
  if (options_.overload.enabled) {
    overload_ = std::make_unique<OverloadController>(options_.overload);
    explain_cache_ = std::make_unique<ExplainCache>(options_.explain_cache);
  }
}

Result<std::unique_ptr<ExplainableProxy>> ExplainableProxy::Create(
    std::shared_ptr<const Schema> schema, const Model* model,
    const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  auto proxy = std::unique_ptr<ExplainableProxy>(
      new ExplainableProxy(std::move(schema), nullptr, options));
  if (model != nullptr) {
    proxy->owned_endpoint_ = std::make_unique<LocalModelEndpoint>(model);
    proxy->endpoint_ = proxy->owned_endpoint_.get();
  }
  CCE_RETURN_IF_ERROR(proxy->InitDurability());
  return proxy;
}

Result<std::unique_ptr<ExplainableProxy>> ExplainableProxy::CreateWithEndpoint(
    std::shared_ptr<const Schema> schema, ModelEndpoint* endpoint,
    const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  auto proxy = std::unique_ptr<ExplainableProxy>(
      new ExplainableProxy(std::move(schema), endpoint, options));
  CCE_RETURN_IF_ERROR(proxy->InitDurability());
  return proxy;
}

Status ExplainableProxy::InitDurability() {
  const Options::Durability& durability = options_.durability;
  if (durability.dir.empty()) return Status::Ok();
  CCE_RETURN_IF_ERROR(io::EnsureDirectory(durability.dir));
  snapshot_path_ = durability.dir + "/context.snapshot";
  const std::string wal_path = durability.dir + "/context.wal";

  // Recovery replays into the window without re-logging: snapshot rows are
  // summarised by the log's base_recorded, log rows are already on disk.
  // Rows that no longer fit the live schema are skipped and counted as
  // dropped rather than failing recovery.
  size_t snapshot_rows = 0;
  if (FileExists(snapshot_path_)) {
    CCE_ASSIGN_OR_RETURN(Dataset snapshot,
                         io::LoadDatasetFromFile(snapshot_path_));
    CCE_RETURN_IF_ERROR(CheckSchemaCompatible(*schema_, snapshot.schema()));
    for (size_t row = 0; row < snapshot.size(); ++row) {
      if (RecordLocked(snapshot.instance(row), snapshot.label(row),
                       /*log=*/false)
              .ok()) {
        ++snapshot_rows;
      } else {
        ++health_.wal_records_dropped;
      }
    }
  }

  io::ContextWal::RecoveryStats stats;
  uint64_t wal_rows = 0;
  auto replay = [this, &wal_rows](const Instance& x, Label y) {
    if (RecordLocked(x, y, /*log=*/false).ok()) {
      ++wal_rows;
    } else {
      ++health_.wal_records_dropped;
    }
    return Status::Ok();
  };
  io::ContextWal::Options wal_options;
  wal_options.sync_every = durability.sync_every;
  CCE_ASSIGN_OR_RETURN(wal_,
                       io::ContextWal::Open(wal_path, wal_options, replay,
                                            &stats));

  // Total ever recorded: the log's base covers everything compacted away
  // (including rows evicted from the snapshot by the window capacity).
  recorded_ = static_cast<size_t>(
      std::max<uint64_t>(stats.base_recorded, snapshot_rows) +
      stats.records_recovered);
  health_.wal_records_recovered = snapshot_rows + wal_rows;
  health_.wal_records_dropped += stats.records_dropped;

  // Start the new process on a clean generation: fold the replayed log
  // (and any salvage-truncated garbage) into a fresh snapshot.
  if (stats.records_recovered > 0 || stats.bytes_discarded > 0) {
    CCE_RETURN_IF_ERROR(CompactLocked());
  }
  return Status::Ok();
}

Result<Label> ExplainableProxy::CallEndpoint(const Instance& x,
                                             const Deadline& deadline) {
  retry_policy_.Reset();
  int attempts = 0;
  while (true) {
    if (deadline.expired()) {
      ++health_.deadline_misses;
      return Status::DeadlineExceeded(
          "predict deadline expired after " + std::to_string(attempts) +
          " attempt(s)");
    }
    Result<Label> served = endpoint_->Predict(x);
    ++attempts;
    if (served.ok()) return served;
    if (!served.status().IsRetryable() ||
        !retry_policy_.ShouldRetry(attempts)) {
      return served.status();
    }
    ++health_.retries;
    std::chrono::milliseconds backoff =
        retry_policy_.NextBackoff(&retry_rng_);
    if (!deadline.infinite()) {
      // Never sleep past the deadline; the expiry check at the top of the
      // loop then converts the exhausted budget into kDeadlineExceeded.
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline.remaining());
      backoff = std::min(backoff, remaining);
    }
    if (backoff.count() > 0) sleep_(backoff);
  }
}

Status ExplainableProxy::ValidateRequestLocked(const Instance& x, Label y,
                                               bool check_label) const {
  Status valid = schema_->ValidateInstance(x);
  if (valid.ok() && check_label) valid = schema_->ValidateLabel(y);
  if (!valid.ok()) ++health_.validation_rejects;
  return valid;
}

Result<Label> ExplainableProxy::Predict(const Instance& x,
                                        const Deadline& deadline) {
  std::lock_guard<std::mutex> lock(mu_);
  ++health_.predicts;
  if (endpoint_ == nullptr) {
    return Status::FailedPrecondition(
        "proxy was created without a model; use Record()");
  }
  CCE_RETURN_IF_ERROR(ValidateRequestLocked(x, 0, /*check_label=*/false));
  if (overload_ != nullptr) {
    CCE_RETURN_IF_ERROR(overload_->AdmitCheap(RequestClass::kPredict));
  }
  if (!breaker_.AllowRequest()) {
    return Status::Unavailable(
        "circuit breaker open; proxy is serving record-only (Explain still "
        "available)");
  }
  Result<Label> served = CallEndpoint(x, deadline);
  if (!served.ok()) {
    // A deadline miss reflects the client's budget, not backend health, so
    // it does not count towards tripping the breaker.
    if (served.status().code() != StatusCode::kDeadlineExceeded) {
      breaker_.RecordFailure();
    }
    ++health_.predict_failures;
    return served.status();
  }
  breaker_.RecordSuccess();
  CCE_RETURN_IF_ERROR(RecordLocked(x, *served, /*log=*/true));
  return *served;
}

Status ExplainableProxy::Record(const Instance& x, Label y) {
  std::lock_guard<std::mutex> lock(mu_);
  CCE_RETURN_IF_ERROR(ValidateRequestLocked(x, y, /*check_label=*/true));
  if (overload_ != nullptr) {
    CCE_RETURN_IF_ERROR(overload_->AdmitCheap(RequestClass::kRecord));
  }
  return RecordLocked(x, y, /*log=*/true);
}

Status ExplainableProxy::RecordLocked(const Instance& x, Label y, bool log) {
  // Full validation (not just arity) also runs on the replay path, so a
  // poisoned row in a tampered WAL or snapshot is dropped rather than
  // admitted into the context.
  CCE_RETURN_IF_ERROR(schema_->ValidateInstance(x));
  CCE_RETURN_IF_ERROR(schema_->ValidateLabel(y));
  if (log && wal_ != nullptr) {
    // Write-ahead: the pair is durable (per the sync policy) before it
    // becomes visible in the window.
    CCE_RETURN_IF_ERROR(wal_->Append(x, y));
    ++health_.wal_records_logged;
  }
  window_.emplace_back(x, y);
  if (options_.context_capacity > 0) {
    while (window_.size() > options_.context_capacity) {
      window_.pop_front();
    }
  }
  ++recorded_;
  if (drift_ != nullptr) drift_->Observe(x, y);
  if (log && wal_ != nullptr &&
      options_.durability.compact_threshold_bytes > 0 &&
      wal_->size_bytes() >= options_.durability.compact_threshold_bytes) {
    CCE_RETURN_IF_ERROR(CompactLocked());
  }
  return Status::Ok();
}

Status ExplainableProxy::CompactLocked() {
  CCE_RETURN_IF_ERROR(io::SaveDatasetToFile(SnapshotLocked(),
                                            snapshot_path_));
  CCE_RETURN_IF_ERROR(wal_->Reset(recorded_));
  ++health_.wal_compactions;
  return Status::Ok();
}

Context ExplainableProxy::SnapshotLocked() const {
  Context context(schema_);
  for (const auto& [x, y] : window_) context.Add(x, y);
  return context;
}

Context ExplainableProxy::ContextSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

Result<KeyResult> ExplainableProxy::Explain(const Instance& x, Label y,
                                            const Deadline& deadline) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++health_.explains;
    CCE_RETURN_IF_ERROR(ValidateRequestLocked(x, y, /*check_label=*/true));
  }
  // Admission runs outside mu_: a request queued for an explain slot must
  // never block Predict/Record traffic.
  std::optional<OverloadController::Permit> permit;
  if (overload_ != nullptr) {
    auto admitted =
        overload_->AdmitExpensive(RequestClass::kExplain, deadline);
    if (!admitted.ok()) {
      // Shed — the cached rung of the ladder: an identical discretized
      // instance explained recently enough is still a real answer.
      std::lock_guard<std::mutex> lock(mu_);
      if (explain_cache_ != nullptr) {
        if (auto cached = explain_cache_->Get(x, y, recorded_)) {
          ++health_.cache_served_explains;
          return *cached;
        }
      }
      return admitted.status();
    }
    permit.emplace(std::move(admitted).value());
  }
  Context context(schema_);
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (window_.empty()) {
      return Status::FailedPrecondition("no predictions recorded yet");
    }
    // Explaining consults only the recorded context (paper Section 6), so
    // it keeps working when the breaker has taken the model out of the
    // path — that serve is the "record-only fallback" rung of the ladder.
    if (breaker_.state() == CircuitBreaker::State::kOpen) {
      ++health_.fallback_serves;
    }
    // Admitted but under pressure (queued, saturated limiter, CoDel):
    // prefer the cached key over burning a saturated machine on a search.
    if (permit.has_value() && permit->under_pressure() &&
        explain_cache_ != nullptr) {
      if (auto cached = explain_cache_->Get(x, y, recorded_)) {
        ++health_.cache_served_explains;
        return *cached;
      }
    }
    context = SnapshotLocked();
    generation = recorded_;
  }
  // The key search runs on the copy, outside the lock: a slow Explain
  // never stalls Predict/Record traffic.
  Srk::Options options;
  options.alpha = options_.alpha;
  options.deadline = deadline;
  Result<KeyResult> key = Srk::ExplainInstance(context, x, y, options);
  if (key.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (key->degraded) {
      ++health_.degraded_explains;
      ++health_.deadline_misses;
    } else if (explain_cache_ != nullptr) {
      // Only full (minimised) keys are worth caching: a padded degraded
      // key served from cache would degrade answers even when idle.
      explain_cache_->Put(x, y, generation, *key);
    }
  }
  return key;
}

Result<std::vector<RelativeCounterfactual>>
ExplainableProxy::Counterfactuals(const Instance& x, Label y) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CCE_RETURN_IF_ERROR(ValidateRequestLocked(x, y, /*check_label=*/true));
  }
  std::optional<OverloadController::Permit> permit;
  if (overload_ != nullptr) {
    auto admitted = overload_->AdmitExpensive(
        RequestClass::kCounterfactuals, Deadline::Infinite());
    if (!admitted.ok()) return admitted.status();
    permit.emplace(std::move(admitted).value());
  }
  Context context(schema_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (window_.empty()) {
      return Status::FailedPrecondition("no predictions recorded yet");
    }
    if (breaker_.state() == CircuitBreaker::State::kOpen) {
      ++health_.fallback_serves;
    }
    context = SnapshotLocked();
  }
  return CounterfactualFinder::FindForInstance(context, x, y, {});
}

bool ExplainableProxy::DriftAlarmed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_ != nullptr && drift_->Alarmed();
}

size_t ExplainableProxy::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

HealthSnapshot ExplainableProxy::Health() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthSnapshot snapshot = health_;
  snapshot.breaker_state = breaker_.state();
  snapshot.breaker_rejections = breaker_.rejected_count();
  snapshot.breaker_trips = breaker_.trip_count();
  if (wal_ != nullptr) snapshot.wal_fsyncs = wal_->fsyncs();
  if (overload_ != nullptr) {
    // Lock order is always mu_ -> controller mutex (admission itself
    // never holds mu_), so this nested snapshot cannot invert.
    OverloadController::Stats admission = overload_->stats();
    snapshot.admitted_predicts = admission.admitted_predicts;
    snapshot.admitted_records = admission.admitted_records;
    snapshot.admitted_explains = admission.admitted_explains;
    snapshot.admitted_counterfactuals = admission.admitted_counterfactuals;
    snapshot.shed_rate_limited = admission.shed_rate_limited;
    snapshot.shed_queue_full = admission.shed_queue_full;
    snapshot.shed_deadline_unmeetable = admission.shed_deadline_unmeetable;
    snapshot.shed_queue_deadline = admission.shed_queue_deadline;
    snapshot.shed_codel = admission.shed_codel;
    snapshot.explain_queue_waits = admission.queue_waits;
    snapshot.concurrency_limit = admission.concurrency_limit;
    snapshot.concurrency_increases = admission.concurrency_increases;
    snapshot.concurrency_decreases = admission.concurrency_decreases;
    snapshot.explain_latency_ewma_us = admission.explain_latency_ewma_us;
  }
  if (explain_cache_ != nullptr) {
    const ExplainCache::Stats& cache = explain_cache_->stats();
    snapshot.cache_hits = cache.hits;
    snapshot.cache_misses = cache.misses;
    snapshot.cache_stale_drops = cache.stale_drops;
  }
  return snapshot;
}

}  // namespace cce::serving
