#ifndef CCE_SERVING_PROXY_H_
#define CCE_SERVING_PROXY_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cce.h"
#include "core/counterfactual.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "core/model.h"
#include "io/env.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/context_shard.h"
#include "serving/overload.h"
#include "serving/read_path.h"
#include "serving/resilience.h"

namespace cce::serving {

/// The CCE deployment story in one object (paper Section 6): a proxy that
/// sits between a client and a (possibly remote) model. Every Predict()
/// passes through to the model and is recorded into a rolling client-side
/// context; explanations, counterfactuals and drift monitoring then come
/// from the recorded context alone — the model is never consulted for
/// explaining.
///
/// The proxy also works without any model (`Create` with nullptr +
/// `Record`): a client of a remote API can feed the served predictions it
/// observed and retain every explanation capability.
///
/// Fault tolerance (the production half of the story): model calls go
/// through a retry policy (capped exponential backoff, decorrelated jitter)
/// and a circuit breaker. The degradation ladder is
///
///   full service  ->  retries absorb transient faults
///                 ->  breaker opens on persistent failure; Predict fails
///                     fast with kUnavailable while Explain/Counterfactuals
///                     keep answering from the recorded context (CCE needs
///                     no model call to explain), i.e. record-only mode
///                 ->  breaker half-opens after a cooldown and probes the
///                     backend back to health.
///
/// Per-call Deadlines bound Predict (including its retries) and Explain
/// (the SRK search returns a padded, `degraded` key at budget exhaustion).
/// Health() exposes the machinery for observability.
///
/// Overload protection (DESIGN.md §8): with Options::overload.enabled,
/// every entry point passes a per-class admission layer — token-bucket
/// rate limits, a bounded deadline-aware queue with CoDel-style shedding,
/// and an AIMD concurrency limit on in-flight key searches — so the proxy
/// survives its own clients, not just a failing backend. Explain's
/// degradation ladder becomes
///
///   full key  ->  cached key for an identical recently-explained
///                 instance when admitted under pressure or shed; the
///                 cache is generation-fresh — each hit is revalidated
///                 against the window deltas since it was stored, and
///                 only keys whose conformity provably survived the
///                 slide are served (see ExplainCache)
///             ->  padded degraded key at deadline expiry
///             ->  shed with kResourceExhausted + a retry_after hint.
///
/// Malformed instances (wrong arity, out-of-domain value codes, unknown
/// labels) are rejected with kInvalidArgument at every boundary before
/// they can reach the context, the WAL, or a key search.
///
/// Durability and fault isolation (DESIGN.md §7, §10): the context is
/// partitioned into Options::shards ContextShards by instance hash, each
/// with its own WAL, snapshot/compaction cycle, drift monitor and write
/// lock — Records on different shards do not contend, and damage to one
/// shard's files is that shard's problem alone. Every recorded pair is
/// appended to its shard's checksummed write-ahead log before it enters
/// the in-memory window, and Create() replays every shard (salvaging the
/// valid prefix of a corrupt log). Recovery is fail-soft: a shard whose
/// files cannot be salvaged is *quarantined* — Create still succeeds, the
/// remaining shards keep serving, Explain results carry `degraded = true`,
/// and RepairShard() re-admits the shard on a fresh generation. A shard
/// whose fsync fails goes read-only (its WAL is poisoned; no append may
/// claim durability on top of possibly-dropped pages) until compaction
/// rewrites the log. Rows carry a proxy-global sequence number and Explain
/// merges shard windows by it, so keys are bit-identical to a 1-shard
/// proxy.
///
/// Thread safety: all public methods may be called concurrently. Predict
/// is serialised by an internal mutex (the breaker counts consecutive
/// *operations*, which only means anything serialised); Record takes only
/// its target shard's lock; Explain and Counterfactuals copy the context
/// under the shard locks and run the key search outside them, so slow
/// explanations never block recording.
class ExplainableProxy {
 public:
  struct Options {
    /// Rolling context capacity across all shards; 0 = unbounded (batch
    /// users). Eviction is globally oldest-first by sequence number, so
    /// the retained window matches the 1-shard proxy's exactly.
    size_t context_capacity = 0;
    /// Conformity bound for explanations.
    double alpha = 1.0;
    /// Context shards (fault domains / write-lock stripes). 1 keeps the
    /// classic single-WAL layout on disk; N > 1 adds per-shard WAL +
    /// snapshot files ("context.<i>.wal"). A directory written with a
    /// different shard count is adopted: rows from orphan shard files are
    /// re-routed by hash and re-logged, then the orphans are deleted.
    size_t shards = 1;
    /// Selects the blocked-bitset conformity engine for Explain's key
    /// search (docs/algorithms.md): violator counting becomes word-AND +
    /// popcount sharded across a proxy-owned pool. Keys are bit-identical
    /// to the serial engine; only latency changes. Adds the
    /// cce_bitmap_rebuilds_total / cce_conformity_shards_total counters'
    /// traffic and thread-pool gauges labelled pool="conformity".
    bool parallel_conformity = false;
    /// Worker threads for the conformity pool; 0 = hardware concurrency,
    /// 1 = run the bitset engine serially with no pool at all (a 1-thread
    /// pool only adds dispatch overhead). Read only when
    /// parallel_conformity is set.
    size_t conformity_threads = 0;
    /// Enable the succinctness-based drift monitor (one per shard; with
    /// shards = 1 this is exactly the classic monitor).
    bool monitor_drift = true;
    DriftMonitor::Options drift;

    /// Retry schedule for model calls; max_attempts <= 1 disables retries.
    RetryPolicy::Options retry;
    /// Circuit breaker guarding the model endpoint.
    CircuitBreaker::Options breaker;
    /// Seed for the retry jitter (deterministic backoff schedules).
    uint64_t resilience_seed = 42;
    /// How Predict waits out a backoff delay. Defaults to a real
    /// sleep_for; tests inject a recorder to stay fast and deterministic.
    std::function<void(std::chrono::milliseconds)> sleep;
    /// Clock for the breaker's cooldown timer (tests inject manual time).
    CircuitBreaker::ClockFn clock;

    /// Crash-durable context. When `dir` is set, Create() recovers the
    /// context recorded by any previous proxy on the same directory.
    struct Durability {
      /// Directory holding the per-shard snapshots + write-ahead logs;
      /// empty disables durability. Created if missing (parents must
      /// exist). Orphaned "*.tmp.*" files from writers that died between
      /// create and rename are swept on startup.
      std::string dir;
      /// fsync after every N recorded pairs (per shard); 1 = every record
      /// is durable before Record/Predict returns, 0 = never sync
      /// automatically (the OS decides — fastest, weakest).
      size_t sync_every = 1;
      /// Snapshot a shard's window and truncate its log once the log
      /// exceeds this many bytes; 0 = never compact.
      uint64_t compact_threshold_bytes = 4 * 1024 * 1024;
      /// I/O surface for every durability file operation; null means
      /// io::Env::Default(). Tests inject an io::FaultInjectingEnv to
      /// exercise torn writes, EIO, ENOSPC and failed fsyncs.
      io::Env* env = nullptr;
    };
    Durability durability;

    /// Admission control / load shedding for every entry point; disabled
    /// by default (overload.enabled) so private or batch proxies keep the
    /// unchecked fast path.
    OverloadController::Options overload;
    /// Explanation cache backing the "cached key" rung of the degradation
    /// ladder; only consulted when overload protection is enabled.
    ExplainCache::Options explain_cache;

    /// Metrics + tracing (DESIGN.md §9). Always on: the registry write
    /// path is a relaxed sharded increment, cheap enough to leave enabled.
    struct Observability {
      /// Registry receiving every proxy/overload/cache metric. Null means
      /// the proxy owns a private registry (the common case); share one
      /// registry across proxies to aggregate, or pass
      /// obs::GlobalRegistry() via a non-owning shared_ptr.
      std::shared_ptr<obs::Registry> registry;
      /// Per-request trace ring capacity (last-N requests, phase timings,
      /// cause of outcome); 0 disables tracing.
      size_t trace_capacity = 128;
      /// Clock for trace timestamps and the private registry; defaults to
      /// steady_clock (tests inject manual time).
      obs::Registry::ClockFn clock;
    };
    Observability observability;
  };

  /// `model` may be null (record-only mode via Record()); it is not owned
  /// and must outlive the proxy when provided. The model is wrapped in a
  /// LocalModelEndpoint internally. With durability enabled, replays every
  /// shard's snapshot + log under `durability.dir` (salvaging the valid
  /// prefix of a corrupt log; quarantining unsalvageable shards) before
  /// returning; the recovered counts are visible in Health(). The only
  /// recovery error that fails Create is a schema clash — the directory
  /// belongs to a different deployment.
  static Result<std::unique_ptr<ExplainableProxy>> Create(
      std::shared_ptr<const Schema> schema, const Model* model,
      const Options& options);

  /// As Create, but serving an arbitrary (possibly remote, possibly
  /// failing) endpoint. `endpoint` is not owned and must outlive the proxy.
  static Result<std::unique_ptr<ExplainableProxy>> CreateWithEndpoint(
      std::shared_ptr<const Schema> schema, ModelEndpoint* endpoint,
      const Options& options);

  /// Serves one prediction through the wrapped endpoint and records it.
  /// Transient endpoint failures are retried with backoff within the
  /// deadline; persistent failure trips the breaker, after which calls
  /// fail fast with kUnavailable until the backend recovers (record-only
  /// degradation: Explain keeps working). When the target context shard is
  /// quarantined or read-only the prediction is still served — the drop is
  /// counted in cce_quarantine_drops_total and the trace is kDegraded.
  /// FailedPrecondition when constructed without a model.
  Result<Label> Predict(const Instance& x, const Deadline& deadline = {});

  /// Records an externally served (instance, prediction) pair. The label
  /// must exist in the schema's label dictionary — an arbitrary integer
  /// would poison both the context and the write-ahead log. kUnavailable
  /// when the pair's shard is quarantined or read-only (the caller asked
  /// for durability the shard cannot give).
  Status Record(const Instance& x, Label y);

  /// Relative key for a recorded (instance, prediction) against the
  /// current context. Never touches the model, so it works at every rung
  /// of the degradation ladder. A finite deadline bounds the key search;
  /// on expiry the result is valid but `degraded` (non-minimal key). The
  /// key is also flagged `degraded` when any shard is quarantined: the
  /// answer is honest about being computed from an incomplete context.
  Result<KeyResult> Explain(const Instance& x, Label y,
                            const Deadline& deadline = {}) const;

  /// Explains a batch of recorded (instance, prediction) pairs against ONE
  /// context snapshot, sharing the bitmap build across all items (the
  /// amortization: one row-major pass over the window instead of one per
  /// request). Results are positional — result i answers items[i] — and
  /// every key is bit-identical to what a serial Explain of that item
  /// against the same snapshot would return, at any pool width and any
  /// batch split. Admission is charged once for the whole batch (a shared
  /// build is one expensive-work unit); per-item deadlines still apply
  /// individually inside the key search, so one slow item degrades only
  /// itself. On shed, items are answered from the explain cache where a
  /// generation-fresh entry exists and shed individually otherwise.
  std::vector<Result<KeyResult>> ExplainBatch(
      const std::vector<BatchQuery>& items) const;

  /// Closest counterfactual witnesses from the current context.
  Result<std::vector<RelativeCounterfactual>> Counterfactuals(
      const Instance& x, Label y) const;

  /// Re-admits quarantined shard `shard` with an empty window and a fresh
  /// on-disk generation. kFailedPrecondition when the shard is healthy;
  /// kInvalidArgument for an out-of-range index.
  Status RepairShard(size_t shard);

  /// True when any shard's drift monitor has raised an alarm.
  bool DriftAlarmed() const;

  /// Snapshot of the current context, merged across shards in global
  /// arrival order (e.g. for io::SaveDataset).
  Context ContextSnapshot() const;

  /// Point-in-time resilience + durability counters, breaker state and
  /// per-shard health, assembled from the metrics registry
  /// (docs/metrics.md): every counter lives in exactly one registry cell;
  /// this is a read, not a second bookkeeping path.
  HealthSnapshot Health() const;

  /// Total pairs ever recorded across shards, including those recovered
  /// at Create.
  size_t recorded() const;

  /// The replication watermark P: every acknowledged record has sequence
  /// < P and is durably in its shard's file. Takes all shard locks for an
  /// instant (sequence claims happen under the owning shard's lock, so
  /// holding every lock rules out in-flight claims); cheap at sane shard
  /// counts, but a barrier — call it per ship cycle, not per request.
  uint64_t PublishedSequence() const;

  /// Number of context shards (Options::shards, clamped to >= 1).
  size_t num_shards() const { return shards_.size(); }

  /// The registry all proxy metrics land in (the injected one, or the
  /// proxy's private registry). Feed to obs::RenderPrometheusText /
  /// obs::RenderJson for exposition.
  obs::Registry& registry() const { return *registry_; }

  /// Recent-request trace ring; null when observability.trace_capacity = 0.
  const obs::TraceRing* traces() const { return traces_.get(); }

 private:
  /// Entry-point index for the requests_total{op,outcome} matrix; values
  /// deliberately mirror RequestClass.
  enum class Op { kPredict = 0, kRecord = 1, kExplain = 2, kCfs = 3 };
  static constexpr int kNumOps = 4;
  static constexpr int kNumOutcomes = 7;  // TraceOutcome minus kUnset

  ExplainableProxy(std::shared_ptr<const Schema> schema,
                   ModelEndpoint* endpoint, const Options& options);

  /// Creates every proxy-level metric cell in registry_ (called once from
  /// the constructor, before any request can race with it).
  void InitInstruments();

  /// Stamps the trace outcome (+ failure detail) and bumps
  /// cce_requests_total{op,outcome}.
  void FinishTrace(obs::RequestTrace& trace, Op op, obs::TraceOutcome outcome,
                   const Status* failure = nullptr) const;

  /// Folds a breaker state change (if any) into the transition counters and
  /// the state gauge; caller holds mu_ and captured `before` just before
  /// the mutating breaker call.
  void SyncBreakerLocked(CircuitBreaker::State before) const;

  /// One endpoint call guarded by retries; shared by Predict. Reports the
  /// number of attempts made through `attempts` (always >= 1).
  Result<Label> CallEndpoint(const Instance& x, const Deadline& deadline,
                             int* attempts);

  /// Builds the shards, sweeps orphaned temp files, recovers every shard
  /// (fail-soft), and adopts rows from shard files left by a different
  /// shard-count configuration. Only a schema clash returns an error.
  Status InitShards();

  /// Unlinks "*.tmp.*" leftovers in the durability dir (AtomicWriteFile
  /// casualties); counts them in cce_tmp_orphans_removed_total.
  void SweepOrphanTmpFiles();

  /// Re-routes rows from "context.<i>.wal/.snapshot" files with i >= the
  /// live shard count into the live shards (re-logged), then removes the
  /// orphan files. Unsalvageable orphan files are left in place.
  void AdoptOrphanShardFiles();

  /// Boundary validation of a client-supplied (instance, label); counts
  /// rejects in cce_validation_rejects_total. Lock-free.
  /// `check_label` = false for Predict, whose label comes from the model.
  Status ValidateRequest(const Instance& x, Label y, bool check_label) const;

  /// Routes (x, y) to its shard, appends it there (WAL first), then
  /// enforces the global capacity. `x` must already be validated.
  Status RecordToShard(const Instance& x, Label y);

  /// Evicts globally-oldest rows (min front_seq across shards) until the
  /// total window fits context_capacity.
  void EvictToCapacity();

  /// All shard rows merged into global arrival order.
  std::vector<ContextShard::Row> MergedRows() const;

  /// MergedRows as a Dataset (the Explain/Counterfactuals context copy).
  Context MergedContext() const;

  /// The proxy's key-search configuration as a shared ReadPath (replicas
  /// build the same structure, which is the bit-identical-keys contract).
  ReadPath ExplainReadPath() const;

  /// True when any shard is quarantined (Explain's degraded-context flag).
  bool AnyShardQuarantined() const;

  /// Refreshes the window-size/recorded gauges and the degraded gauge.
  void SyncContextGauges() const;

  std::shared_ptr<const Schema> schema_;
  std::unique_ptr<LocalModelEndpoint> owned_endpoint_;  // Create(Model*) path
  ModelEndpoint* endpoint_;  // may be null (record-only construction)
  Options options_;
  io::Env* env_;  // durability.env or Env::Default(); never null

  /// Serialises Predict (breaker semantics) and guards the resilience
  /// machinery + explain cache. Lock order: mu_ -> evict_mu_ -> shard
  /// locks; never the reverse.
  mutable std::mutex mu_;

  /// The sharded context. Never resized after Create; the vector itself
  /// is immutable, each shard is internally synchronised.
  std::vector<std::unique_ptr<ContextShard>> shards_;
  /// Global arrival order; incremented under the recording shard's lock.
  std::atomic<uint64_t> global_seq_{0};
  /// Rows currently across all shard windows (maintained by the proxy;
  /// shards do not know about the global capacity).
  std::atomic<size_t> total_rows_{0};
  /// Serialises global eviction so concurrent Records cannot over-evict.
  std::mutex evict_mu_;

  RetryPolicy retry_policy_;
  CircuitBreaker breaker_;
  Rng retry_rng_;
  std::function<void(std::chrono::milliseconds)> sleep_;

  /// Admission layer; null when overload protection is disabled. Has its
  /// own mutex — expensive-class admission must wait for a slot without
  /// holding mu_, so Predict/Record stay unblocked.
  std::unique_ptr<OverloadController> overload_;
  /// Cached-key ladder rung; null when overload disabled. Entry storage is
  /// guarded by mu_; the cache's window-delta ring is internally
  /// synchronised so RecordToShard/EvictToCapacity can append deltas
  /// without taking mu_ (Record never holds mu_).
  std::unique_ptr<ExplainCache> explain_cache_;

  /// Injected or privately owned; every metric cell below points into it.
  std::shared_ptr<obs::Registry> registry_;
  /// Recent-request ring; null when tracing is disabled.
  std::unique_ptr<obs::TraceRing> traces_;

  /// Bitset-engine worker pool; null unless Options::parallel_conformity
  /// (or when conformity_threads == 1: serial bitset, no pool). Shared by
  /// concurrent Explain calls (each call's tasks only touch that call's
  /// buffers). Declared after registry_ and before its gauges so on
  /// destruction the gauges unbind first, while the registry and the pool
  /// they reference are both still alive.
  std::unique_ptr<ThreadPool> conformity_pool_;
  std::unique_ptr<obs::ThreadPoolGauges> conformity_pool_gauges_;

  /// Raw metric cells (owned by registry_; cached here so the hot path is
  /// one pointer chase + one sharded atomic op). Created in
  /// InitInstruments; the mutable ones are written from const entry points
  /// (Explain/Counterfactuals are logically const but count serves).
  struct Instruments {
    obs::Counter* requests[kNumOps][kNumOutcomes] = {};
    obs::Counter* predicts = nullptr;
    obs::Counter* predict_failures = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* deadline_misses = nullptr;
    obs::Counter* explains = nullptr;
    obs::Counter* degraded_explains = nullptr;
    obs::Counter* cache_served_explains = nullptr;
    obs::Counter* batch_executions = nullptr;
    obs::Counter* batch_items = nullptr;
    obs::Counter* fallback_serves = nullptr;
    obs::Counter* validation_rejects = nullptr;
    obs::Counter* breaker_rejections = nullptr;
    obs::Counter* breaker_transitions[3] = {};  // indexed by breaker State
    obs::Gauge* breaker_state = nullptr;
    obs::Counter* wal_records_logged = nullptr;
    obs::Counter* wal_fsyncs = nullptr;
    obs::Counter* wal_compactions = nullptr;
    obs::Counter* wal_records_recovered = nullptr;
    obs::Counter* wal_records_dropped = nullptr;
    obs::Counter* compaction_failures = nullptr;
    obs::Counter* quarantine_drops = nullptr;
    obs::Counter* tmp_orphans_removed = nullptr;
    obs::Counter* bitmap_rebuilds = nullptr;
    obs::Counter* conformity_shards = nullptr;
    obs::Gauge* context_window_size = nullptr;
    obs::Gauge* recorded_pairs = nullptr;
    obs::Gauge* context_degraded = nullptr;
    obs::Histogram* predict_latency_us = nullptr;
    obs::Histogram* explain_latency_us = nullptr;
    obs::Histogram* wal_append_us = nullptr;
  };
  mutable Instruments ins_;
  /// Per-shard cells ({shard="<i>"} labels), one set per configured shard;
  /// handed to the matching ContextShard at construction.
  std::vector<ContextShard::Instruments> shard_ins_;
};

}  // namespace cce::serving

#endif  // CCE_SERVING_PROXY_H_
