#ifndef CCE_SERVING_PROXY_H_
#define CCE_SERVING_PROXY_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cce.h"
#include "core/counterfactual.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "core/model.h"

namespace cce::serving {

/// The CCE deployment story in one object (paper Section 6): a proxy that
/// sits between a client and a (possibly remote) model. Every Predict()
/// passes through to the model and is recorded into a rolling client-side
/// context; explanations, counterfactuals and drift monitoring then come
/// from the recorded context alone — the model is never consulted for
/// explaining.
///
/// The proxy also works without any model (`Create` with nullptr +
/// `Record`): a client of a remote API can feed the served predictions it
/// observed and retain every explanation capability.
class ExplainableProxy {
 public:
  struct Options {
    /// Rolling context capacity; 0 = unbounded (batch users).
    size_t context_capacity = 0;
    /// Conformity bound for explanations.
    double alpha = 1.0;
    /// Enable the succinctness-based drift monitor.
    bool monitor_drift = true;
    DriftMonitor::Options drift;
  };

  /// `model` may be null (record-only mode via Record()); it is not owned
  /// and must outlive the proxy when provided.
  static Result<std::unique_ptr<ExplainableProxy>> Create(
      std::shared_ptr<const Schema> schema, const Model* model,
      const Options& options);

  /// Serves one prediction through the wrapped model and records it.
  /// FailedPrecondition when constructed without a model.
  Result<Label> Predict(const Instance& x);

  /// Records an externally served (instance, prediction) pair.
  Status Record(const Instance& x, Label y);

  /// Relative key for a recorded (instance, prediction) against the
  /// current context.
  Result<KeyResult> Explain(const Instance& x, Label y) const;

  /// Closest counterfactual witnesses from the current context.
  Result<std::vector<RelativeCounterfactual>> Counterfactuals(
      const Instance& x, Label y) const;

  /// True when the drift monitor has raised an alarm.
  bool DriftAlarmed() const;

  /// Snapshot of the current context (e.g. for io::SaveDataset).
  Context ContextSnapshot() const;

  size_t recorded() const { return recorded_; }

 private:
  ExplainableProxy(std::shared_ptr<const Schema> schema, const Model* model,
                   const Options& options);

  std::shared_ptr<const Schema> schema_;
  const Model* model_;  // may be null
  Options options_;
  std::deque<std::pair<Instance, Label>> window_;
  std::unique_ptr<DriftMonitor> drift_;
  size_t recorded_ = 0;
};

}  // namespace cce::serving

#endif  // CCE_SERVING_PROXY_H_
