#ifndef CCE_SERVING_PROXY_H_
#define CCE_SERVING_PROXY_H_

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "common/status.h"
#include "core/cce.h"
#include "core/counterfactual.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "core/model.h"
#include "serving/resilience.h"

namespace cce::serving {

/// The CCE deployment story in one object (paper Section 6): a proxy that
/// sits between a client and a (possibly remote) model. Every Predict()
/// passes through to the model and is recorded into a rolling client-side
/// context; explanations, counterfactuals and drift monitoring then come
/// from the recorded context alone — the model is never consulted for
/// explaining.
///
/// The proxy also works without any model (`Create` with nullptr +
/// `Record`): a client of a remote API can feed the served predictions it
/// observed and retain every explanation capability.
///
/// Fault tolerance (the production half of the story): model calls go
/// through a retry policy (capped exponential backoff, decorrelated jitter)
/// and a circuit breaker. The degradation ladder is
///
///   full service  ->  retries absorb transient faults
///                 ->  breaker opens on persistent failure; Predict fails
///                     fast with kUnavailable while Explain/Counterfactuals
///                     keep answering from the recorded context (CCE needs
///                     no model call to explain), i.e. record-only mode
///                 ->  breaker half-opens after a cooldown and probes the
///                     backend back to health.
///
/// Per-call Deadlines bound Predict (including its retries) and Explain
/// (the SRK search returns a padded, `degraded` key at budget exhaustion).
/// Health() exposes the machinery for observability.
class ExplainableProxy {
 public:
  struct Options {
    /// Rolling context capacity; 0 = unbounded (batch users).
    size_t context_capacity = 0;
    /// Conformity bound for explanations.
    double alpha = 1.0;
    /// Enable the succinctness-based drift monitor.
    bool monitor_drift = true;
    DriftMonitor::Options drift;

    /// Retry schedule for model calls; max_attempts <= 1 disables retries.
    RetryPolicy::Options retry;
    /// Circuit breaker guarding the model endpoint.
    CircuitBreaker::Options breaker;
    /// Seed for the retry jitter (deterministic backoff schedules).
    uint64_t resilience_seed = 42;
    /// How Predict waits out a backoff delay. Defaults to a real
    /// sleep_for; tests inject a recorder to stay fast and deterministic.
    std::function<void(std::chrono::milliseconds)> sleep;
    /// Clock for the breaker's cooldown timer (tests inject manual time).
    CircuitBreaker::ClockFn clock;
  };

  /// `model` may be null (record-only mode via Record()); it is not owned
  /// and must outlive the proxy when provided. The model is wrapped in a
  /// LocalModelEndpoint internally.
  static Result<std::unique_ptr<ExplainableProxy>> Create(
      std::shared_ptr<const Schema> schema, const Model* model,
      const Options& options);

  /// As Create, but serving an arbitrary (possibly remote, possibly
  /// failing) endpoint. `endpoint` is not owned and must outlive the proxy.
  static Result<std::unique_ptr<ExplainableProxy>> CreateWithEndpoint(
      std::shared_ptr<const Schema> schema, ModelEndpoint* endpoint,
      const Options& options);

  /// Serves one prediction through the wrapped endpoint and records it.
  /// Transient endpoint failures are retried with backoff within the
  /// deadline; persistent failure trips the breaker, after which calls
  /// fail fast with kUnavailable until the backend recovers (record-only
  /// degradation: Explain keeps working). FailedPrecondition when
  /// constructed without a model.
  Result<Label> Predict(const Instance& x, const Deadline& deadline = {});

  /// Records an externally served (instance, prediction) pair.
  Status Record(const Instance& x, Label y);

  /// Relative key for a recorded (instance, prediction) against the
  /// current context. Never touches the model, so it works at every rung
  /// of the degradation ladder. A finite deadline bounds the key search;
  /// on expiry the result is valid but `degraded` (non-minimal key).
  Result<KeyResult> Explain(const Instance& x, Label y,
                            const Deadline& deadline = {}) const;

  /// Closest counterfactual witnesses from the current context.
  Result<std::vector<RelativeCounterfactual>> Counterfactuals(
      const Instance& x, Label y) const;

  /// True when the drift monitor has raised an alarm.
  bool DriftAlarmed() const;

  /// Snapshot of the current context (e.g. for io::SaveDataset).
  Context ContextSnapshot() const;

  /// Point-in-time resilience counters and breaker state.
  HealthSnapshot Health() const;

  size_t recorded() const { return recorded_; }

 private:
  ExplainableProxy(std::shared_ptr<const Schema> schema,
                   ModelEndpoint* endpoint, const Options& options);

  /// One endpoint call guarded by retries; shared by Predict.
  Result<Label> CallEndpoint(const Instance& x, const Deadline& deadline);

  std::shared_ptr<const Schema> schema_;
  std::unique_ptr<LocalModelEndpoint> owned_endpoint_;  // Create(Model*) path
  ModelEndpoint* endpoint_;  // may be null (record-only construction)
  Options options_;
  std::deque<std::pair<Instance, Label>> window_;
  std::unique_ptr<DriftMonitor> drift_;
  size_t recorded_ = 0;

  RetryPolicy retry_policy_;
  CircuitBreaker breaker_;
  Rng retry_rng_;
  std::function<void(std::chrono::milliseconds)> sleep_;

  // Mutable: Explain() is logically const but counts degraded serves.
  mutable HealthSnapshot health_;
};

}  // namespace cce::serving

#endif  // CCE_SERVING_PROXY_H_
