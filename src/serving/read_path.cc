#include "serving/read_path.h"

#include <atomic>
#include <utility>

#include "core/srk.h"

namespace cce::serving {

Context MaterializeContext(std::shared_ptr<const Schema> schema,
                           const std::vector<ContextShard::Row>& rows) {
  Context context(std::move(schema));
  for (const ContextShard::Row& row : rows) context.Add(row.x, row.y);
  return context;
}

Result<KeyResult> SearchKey(const Context& context, const Instance& x,
                            Label y, const Deadline& deadline,
                            const ReadPath& path) {
  Srk::Options options;
  options.alpha = path.alpha;
  options.deadline = deadline;
  Srk::EngineStats engine_stats;
  if (path.parallel_conformity) {
    options.parallel_conformity = true;
    options.pool = path.pool;
    options.stats = &engine_stats;
  }
  Result<KeyResult> key = Srk::ExplainInstance(context, x, y, options);
  if (path.parallel_conformity) {
    const uint64_t builds =
        engine_stats.bitmap_builds.load(std::memory_order_relaxed);
    if (builds > 0 && path.bitmap_rebuilds != nullptr) {
      path.bitmap_rebuilds->Add(builds);
    }
    const uint64_t shards =
        engine_stats.shard_tasks.load(std::memory_order_relaxed);
    if (shards > 0 && path.conformity_shards != nullptr) {
      path.conformity_shards->Add(shards);
    }
  }
  return key;
}

Result<std::vector<KeyResult>> SearchKeyBatch(
    const Context& context, const std::vector<BatchQuery>& items,
    const ReadPath& path) {
  Srk::Options options;
  options.alpha = path.alpha;
  Srk::EngineStats engine_stats;
  if (path.parallel_conformity) {
    options.parallel_conformity = true;
    options.pool = path.pool;
    options.stats = &engine_stats;
  }
  std::vector<Srk::BatchItem> batch;
  batch.reserve(items.size());
  for (const BatchQuery& item : items) {
    batch.push_back(Srk::BatchItem{item.x, item.y, item.deadline});
  }
  Result<std::vector<KeyResult>> keys =
      Srk::ExplainBatch(context, batch, options);
  if (path.parallel_conformity) {
    const uint64_t builds =
        engine_stats.bitmap_builds.load(std::memory_order_relaxed);
    if (builds > 0 && path.bitmap_rebuilds != nullptr) {
      path.bitmap_rebuilds->Add(builds);
    }
    const uint64_t shards =
        engine_stats.shard_tasks.load(std::memory_order_relaxed);
    if (shards > 0 && path.conformity_shards != nullptr) {
      path.conformity_shards->Add(shards);
    }
  }
  return keys;
}

Result<std::vector<RelativeCounterfactual>> SearchCounterfactuals(
    const Context& context, const Instance& x, Label y) {
  return CounterfactualFinder::FindForInstance(context, x, y, {});
}

}  // namespace cce::serving
