#ifndef CCE_SERVING_READ_PATH_H_
#define CCE_SERVING_READ_PATH_H_

#include <memory>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cce.h"
#include "core/counterfactual.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "obs/metrics.h"
#include "serving/context_shard.h"

namespace cce::serving {

/// The one explanation read path, shared by the leader proxy and its read
/// replicas. Both sides materialize a sequence-ordered row view into a
/// Context and run the identical SRK search configuration through these
/// helpers — which is what makes a caught-up replica's keys bit-identical
/// to the leader's, not merely equivalent.
struct ReadPath {
  /// Conformity bound for the key search.
  double alpha = 1.0;
  /// Use the blocked-bitset conformity engine (keys unchanged; see
  /// docs/algorithms.md).
  bool parallel_conformity = false;
  /// Worker pool for the bitset engine; null runs it serially.
  ThreadPool* pool = nullptr;
  /// Optional engine-stat sinks (cce_bitmap_rebuilds_total /
  /// cce_conformity_shards_total cells); null skips the export.
  obs::Counter* bitmap_rebuilds = nullptr;
  obs::Counter* conformity_shards = nullptr;
};

/// Builds the search context from rows already merged into global
/// sequence order (the caller sorts; this only materializes).
Context MaterializeContext(std::shared_ptr<const Schema> schema,
                           const std::vector<ContextShard::Row>& rows);

/// Relative key for (x, y) against `context` under `path`'s engine
/// configuration; exports engine stats into the path's counter sinks.
Result<KeyResult> SearchKey(const Context& context, const Instance& x,
                            Label y, const Deadline& deadline,
                            const ReadPath& path);

/// One item of a batched key search: (x, y) plus that item's own deadline.
struct BatchQuery {
  Instance x;
  Label y = 0;
  Deadline deadline;
};

/// Batched SearchKey: every item is scored against one shared bitmap build
/// over `context` (Srk::ExplainBatch), with keys bit-identical to running
/// SearchKey per item. Results are positional: result i answers item i.
Result<std::vector<KeyResult>> SearchKeyBatch(
    const Context& context, const std::vector<BatchQuery>& items,
    const ReadPath& path);

/// Closest counterfactual witnesses for (x, y) against `context`.
Result<std::vector<RelativeCounterfactual>> SearchCounterfactuals(
    const Context& context, const Instance& x, Label y);

}  // namespace cce::serving

#endif  // CCE_SERVING_READ_PATH_H_
