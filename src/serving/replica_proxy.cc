#include "serving/replica_proxy.h"

#include <algorithm>
#include <utility>

#include "common/crc32c.h"
#include "io/shard_snapshot.h"
#include "io/wal_segment.h"
#include "serving/shard_layout.h"

namespace cce::serving {

ReplicaProxy::ReplicaProxy(std::shared_ptr<const Schema> schema,
                           const Options& options)
    : schema_(std::move(schema)),
      options_(options),
      env_(options.env != nullptr ? options.env : io::Env::Default()),
      manifest_backoff_(options.manifest_retry),
      backoff_rng_(options.backoff_seed) {
  registry_ = options_.registry;
  if (registry_ == nullptr) {
    registry_ = std::make_shared<obs::Registry>(obs::Registry::Options{});
  }
  InitInstruments();
  if (options_.parallel_conformity && options_.conformity_threads != 1) {
    conformity_pool_ =
        std::make_unique<ThreadPool>(options_.conformity_threads);
  }
}

ReplicaProxy::~ReplicaProxy() { Stop(); }

Result<std::unique_ptr<ReplicaProxy>> ReplicaProxy::Create(
    std::shared_ptr<const Schema> schema, const Options& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (options.ship_dir.empty()) {
    return Status::InvalidArgument("ship_dir must not be empty");
  }
  auto replica = std::unique_ptr<ReplicaProxy>(
      new ReplicaProxy(std::move(schema), options));
  // First catch-up is fail-soft like everything after it: a leader that
  // has not shipped yet just yields an empty view.
  (void)replica->CatchUp();
  return replica;
}

void ReplicaProxy::InitInstruments() {
  obs::Registry& reg = *registry_;
  lag_hist_ = reg.GetHistogram(
      "cce_replica_lag_seq",
      "Replication staleness bound at each view publish: newest manifest "
      "watermark minus the replica's served view watermark, in sequence "
      "numbers (the current value is Health().lag_seq).");
  catchup_micros_ = reg.GetHistogram(
      "cce_replica_catchup_micros",
      "Catch-up apply latency in microseconds: one full pass over the "
      "ship directory (manifest + shard files + apply).");
  backoff_gauge_ = reg.GetGauge(
      "cce_replica_manifest_backoff_ms",
      "Extra delay the background tail loop currently adds between polls "
      "because manifest loads keep failing; 0 while loads succeed.");
  published_gauge_ = reg.GetGauge(
      "cce_replica_published_seq",
      "The replica's served view watermark (every served row is below "
      "it; every leader row below it is served).");
  catchups_ = reg.GetCounter("cce_replica_catchups_total",
                             "Catch-up passes over the ship directory.");
  records_applied_ = reg.GetCounter(
      "cce_replica_records_applied_total",
      "Rows applied into replica tails (bootstraps re-count their rows).");
  divergences_ = reg.GetCounter(
      "cce_replica_divergence_total",
      "Digest mismatches between applied state and the ship manifest "
      "(each triggers an automatic shard resync).");
  resyncs_ = reg.GetCounter(
      "cce_replica_resyncs_total",
      "Shard resyncs: replica-side state dropped and rebuilt from the "
      "shipped files (automatic on divergence, or via ForceResync()).");
  manifest_failures_ = reg.GetCounter(
      "cce_replica_manifest_failures_total",
      "Ship manifest loads that failed (unreadable or corrupt); the "
      "replica keeps serving its previous view.");
  fence_skips_ = reg.GetCounter(
      "cce_replica_fence_skips_total",
      "Shards skipped during a catch-up because the shipped files and "
      "the manifest disagreed on the generation (a ship cycle was in "
      "flight); resolved by the next catch-up.");
  scrubs_ = reg.GetCounter("cce_replica_scrubs_total",
                           "Divergence scrub passes over applied state.");
  explains_ = reg.GetCounter("cce_replica_explains_total",
                             "Explain() calls served by the replica.");
  bitmap_rebuilds_ = reg.GetCounter(
      "cce_bitmap_rebuilds_total",
      "Full conformity-bitmap builds by the bitset engine (one per "
      "bitset-path Explain).");
  conformity_shards_ = reg.GetCounter(
      "cce_conformity_shards_total",
      "Work items dispatched to the conformity pool by the bitset engine "
      "(shard fanout).");
  explain_latency_us_ = reg.GetHistogram(
      "cce_replica_explain_latency_us",
      "End-to-end replica Explain() latency in microseconds.");
}

obs::Gauge* ReplicaProxy::TailGauge(size_t shard) const {
  if (shard >= tail_gauges_.size()) tail_gauges_.resize(shard + 1, nullptr);
  if (tail_gauges_[shard] == nullptr) {
    tail_gauges_[shard] = registry_->GetGauge(
        "cce_replica_tail_quarantined",
        "1 while this shard's replication tail is quarantined (torn or "
        "divergent shipped files); the shard serves its last-good rows.",
        {{"shard", std::to_string(shard)}});
  }
  return tail_gauges_[shard];
}

uint32_t ReplicaProxy::DigestRows(
    const std::vector<ContextShard::Row>& rows, uint64_t published) {
  uint32_t digest = 0;
  for (const ContextShard::Row& row : rows) {
    if (row.seq >= published) break;  // rows are seq-ascending
    const std::string payload =
        io::EncodeWalRecordPayload(row.x, row.y, row.seq);
    digest = crc32c::Extend(digest, payload.data(), payload.size());
  }
  return digest;
}

void ReplicaProxy::ApplyShard(const io::ShipManifest::Shard& entry,
                              const std::string& snapshot_content,
                              bool snapshot_read_ok,
                              const std::string& wal_content,
                              bool wal_read_ok, ShardTail* tail) {
  auto quarantine = [&](const char* cause) {
    // The tail keeps its last-good rows and watermark: stale, never
    // inconsistent. Only the quarantine flag changes.
    tail->quarantined = true;
    tail->cause = cause;
  };
  // A manifest older than what this tail already applied (a catch-up
  // racing the shipper's rename) must never roll the tail back.
  if (entry.published < tail->applied_through) return;
  if ((entry.has_snapshot && !snapshot_read_ok) ||
      (entry.wal_bytes > 0 && !wal_read_ok)) {
    quarantine("read");
    return;
  }

  io::WalSegmentView view;
  if (entry.wal_bytes > 0) {
    view = io::ScanWalSegment(wal_content);
    if (!view.header_ok) {
      quarantine("wal");
      return;
    }
    if (view.base_recorded != entry.wal_base) {
      // Generation skew between files and manifest: a ship cycle is in
      // flight. Not damage — hold state and let the next pass resolve.
      if (fence_skips_ != nullptr) fence_skips_->Increment();
      return;
    }
    if (view.valid_end < entry.wal_bytes) {
      // The manifest promises more valid bytes than the segment holds:
      // a torn ship (or post-ship corruption).
      quarantine("wal");
      return;
    }
  }

  io::LoadedShardSnapshot snapshot;
  if (entry.has_snapshot) {
    auto parsed = io::ParseShardSnapshot(
        snapshot_content, ShippedShardFileName(entry.index, "snapshot"));
    if (!parsed.ok()) {
      quarantine("snapshot");
      return;
    }
    snapshot = std::move(parsed).value();
    if (!snapshot.covers_valid || snapshot.covers != entry.wal_base) {
      if (fence_skips_ != nullptr) fence_skips_->Increment();
      return;
    }
    if (!io::CheckShardSchemaCompatible(*schema_, snapshot.rows.schema())
             .ok()) {
      quarantine("snapshot");
      return;
    }
  }

  auto rebuild = [&]() {
    tail->rows.clear();
    if (entry.has_snapshot) {
      for (size_t r = 0; r < snapshot.rows.size(); ++r) {
        tail->rows.push_back(ContextShard::Row{
            snapshot.seqs[r], snapshot.rows.instance(r),
            snapshot.rows.label(r)});
      }
    }
    for (const io::WalFrame& frame : view.frames) {
      tail->rows.push_back(ContextShard::Row{frame.seq, frame.x, frame.y});
    }
    tail->base = entry.wal_base;
    tail->bootstrapped = true;
  };

  uint64_t applied_before = tail->rows.size();
  bool rebuilt = false;
  if (!tail->bootstrapped || tail->base != entry.wal_base) {
    // New replica, or the leader compacted into a new generation: the
    // shipped pair replaces this tail's state wholesale. Rows are never
    // lost by this — the new snapshot covers everything the old
    // generation held (and more).
    rebuild();
    rebuilt = true;
    applied_before = 0;
  } else {
    // Same generation: the shipped segment is an append-only extension
    // of what we already applied. Take the new frames.
    const uint64_t last_seq =
        tail->rows.empty() ? 0 : tail->rows.back().seq;
    const bool any = !tail->rows.empty();
    for (const io::WalFrame& frame : view.frames) {
      if (any && frame.seq <= last_seq) continue;
      tail->rows.push_back(ContextShard::Row{frame.seq, frame.x, frame.y});
    }
  }

  // Divergence check: the digest over applied rows below the shard's
  // watermark must reproduce the shipper's. One automatic resync from
  // the shipped files; if the shipped files themselves are divergent,
  // quarantine.
  if (DigestRows(tail->rows, entry.published) != entry.digest) {
    if (divergences_ != nullptr) divergences_->Increment();
    if (!rebuilt) {
      if (resyncs_ != nullptr) resyncs_->Increment();
      rebuild();
    }
    if (DigestRows(tail->rows, entry.published) != entry.digest) {
      quarantine("divergence");
      return;
    }
  }

  if (records_applied_ != nullptr &&
      tail->rows.size() > applied_before) {
    records_applied_->Add(tail->rows.size() - applied_before);
  }
  tail->applied_through = entry.published;
  tail->quarantined = false;
  tail->cause.clear();
}

void ReplicaProxy::PublishViewLocked() {
  uint64_t view = 0;
  bool first = true;
  for (size_t i = 0; i < tails_.size(); ++i) {
    const ShardTail& tail = tails_[i];
    if (first || tail.applied_through < view) view = tail.applied_through;
    first = false;
    TailGauge(i)->Set(tail.quarantined ? 1 : 0);
  }
  view_published_ = tails_.empty() ? 0 : view;
  published_gauge_->Set(static_cast<int64_t>(view_published_));
  const uint64_t lag = latest_published_ > view_published_
                           ? latest_published_ - view_published_
                           : 0;
  lag_hist_->Observe(static_cast<int64_t>(lag));
}

Status ReplicaProxy::LoadShipState(io::ShipManifest* manifest,
                                   std::vector<ShardFiles>* files,
                                   bool* quiet) {
  auto loaded = io::LoadShipManifest(
      env_, options_.ship_dir + "/" + kShipManifestName);
  if (!loaded.ok()) {
    *quiet =
        loaded.status().code() == StatusCode::kNotFound && !had_manifest_;
    return loaded.status();
  }
  *manifest = std::move(loaded).value();
  had_manifest_ = true;

  // All file I/O happens before mu_ so a slow disk never blocks Explain.
  files->assign(manifest->shards.size(), ShardFiles{});
  for (size_t i = 0; i < manifest->shards.size(); ++i) {
    const io::ShipManifest::Shard& entry = manifest->shards[i];
    ShardFiles& shard_files = (*files)[i];
    if (entry.has_snapshot) {
      shard_files.snapshot_ok =
          env_->ReadFileToString(
                  options_.ship_dir + "/" +
                      ShippedShardFileName(entry.index, "snapshot"),
                  &shard_files.snapshot)
              .ok();
    }
    if (entry.wal_bytes > 0) {
      shard_files.wal_ok =
          env_->ReadFileToString(options_.ship_dir + "/" +
                                     ShippedShardFileName(entry.index, "wal"),
                                 &shard_files.wal)
              .ok();
    }
  }
  return Status::Ok();
}

void ReplicaProxy::ArmManifestBackoff() {
  const std::chrono::milliseconds backoff =
      manifest_backoff_.NextBackoff(&backoff_rng_);
  manifest_backoff_ms_.store(backoff.count(), std::memory_order_relaxed);
  if (backoff_gauge_ != nullptr) backoff_gauge_->Set(backoff.count());
}

void ReplicaProxy::ResetManifestBackoff() {
  if (manifest_backoff_ms_.load(std::memory_order_relaxed) == 0) return;
  manifest_backoff_.Reset();
  manifest_backoff_ms_.store(0, std::memory_order_relaxed);
  if (backoff_gauge_ != nullptr) backoff_gauge_->Set(0);
}

Status ReplicaProxy::CatchUpLocked() {
  obs::ScopedLatency catchup_latency(registry_.get(), catchup_micros_);
  if (catchups_ != nullptr) catchups_->Increment();
  io::ShipManifest manifest;
  std::vector<ShardFiles> files;
  bool quiet = false;
  Status loaded = LoadShipState(&manifest, &files, &quiet);
  if (!loaded.ok()) {
    if (!quiet && manifest_failures_ != nullptr) {
      manifest_failures_->Increment();
    }
    // Back off the tail loop only on real failures — a leader that has
    // not shipped yet keeps being polled at full cadence.
    if (quiet) {
      ResetManifestBackoff();
    } else {
      ArmManifestBackoff();
    }
    std::lock_guard<std::mutex> lock(mu_);
    manifest_ok_ = false;
    PublishViewLocked();
    return Status::Ok();
  }
  ResetManifestBackoff();

  std::lock_guard<std::mutex> lock(mu_);
  if (tails_.size() != manifest.shards.size()) {
    // The leader's shard count changed: every tail's generation story is
    // void. Full rebuild (counted as a resync when state existed).
    if (!tails_.empty() && resyncs_ != nullptr) resyncs_->Increment();
    tails_.assign(manifest.shards.size(), ShardTail{});
  }
  for (size_t i = 0; i < manifest.shards.size(); ++i) {
    ApplyShard(manifest.shards[i], files[i].snapshot, files[i].snapshot_ok,
               files[i].wal, files[i].wal_ok, &tails_[i]);
  }
  latest_published_ = manifest.published_seq;
  manifest_ok_ = true;
  PublishViewLocked();
  return Status::Ok();
}

Status ReplicaProxy::CatchUp() {
  std::lock_guard<std::mutex> lock(catchup_mu_);
  return CatchUpLocked();
}

Status ReplicaProxy::Scrub() {
  std::lock_guard<std::mutex> lock(catchup_mu_);
  if (scrubs_ != nullptr) scrubs_->Increment();
  auto loaded = io::LoadShipManifest(
      env_, options_.ship_dir + "/" + kShipManifestName);
  if (!loaded.ok()) {
    if (manifest_failures_ != nullptr &&
        (loaded.status().code() != StatusCode::kNotFound || had_manifest_)) {
      manifest_failures_->Increment();
    }
    return Status::Ok();
  }
  const io::ShipManifest manifest = std::move(loaded).value();
  bool need_resync = false;
  {
    std::lock_guard<std::mutex> state_lock(mu_);
    for (size_t i = 0;
         i < manifest.shards.size() && i < tails_.size(); ++i) {
      const io::ShipManifest::Shard& entry = manifest.shards[i];
      ShardTail& tail = tails_[i];
      if (!tail.bootstrapped || tail.quarantined ||
          tail.base != entry.wal_base ||
          tail.applied_through != entry.published) {
        continue;  // not comparable against this manifest
      }
      if (DigestRows(tail.rows, entry.published) != entry.digest) {
        // Applied state no longer matches what was shipped (memory rot,
        // or a bug): drop it and rebuild from the source of truth.
        if (divergences_ != nullptr) divergences_->Increment();
        if (resyncs_ != nullptr) resyncs_->Increment();
        tail = ShardTail{};
        tail.quarantined = true;
        tail.cause = "divergence";
        need_resync = true;
      }
    }
    if (need_resync) PublishViewLocked();
  }
  if (need_resync) return CatchUpLocked();
  return Status::Ok();
}

Status ReplicaProxy::ForceResync() {
  std::lock_guard<std::mutex> lock(catchup_mu_);
  io::ShipManifest manifest;
  std::vector<ShardFiles> files;
  bool quiet = false;
  Status loaded = LoadShipState(&manifest, &files, &quiet);
  if (!loaded.ok()) {
    // No readable manifest: fall back to dropping state — the runbook
    // hammer must still clear a replica whose ship directory is gone.
    if (!quiet && manifest_failures_ != nullptr) {
      manifest_failures_->Increment();
    }
    if (quiet) {
      ResetManifestBackoff();
    } else {
      ArmManifestBackoff();
    }
    std::lock_guard<std::mutex> state_lock(mu_);
    if (!tails_.empty() && resyncs_ != nullptr) resyncs_->Increment();
    tails_.clear();
    view_published_ = 0;
    manifest_ok_ = false;
    PublishViewLocked();
    return Status::Ok();
  }
  ResetManifestBackoff();

  // Rebuild replacement tails from the shipped files *outside* mu_, then
  // swap atomically: concurrent Explains keep serving the old view for
  // the whole rebuild and never see a transient empty window — which is
  // what makes ForceResync on an in-sync replica a safe no-op.
  std::vector<ShardTail> fresh(manifest.shards.size());
  for (size_t i = 0; i < manifest.shards.size(); ++i) {
    ApplyShard(manifest.shards[i], files[i].snapshot, files[i].snapshot_ok,
               files[i].wal, files[i].wal_ok, &fresh[i]);
  }
  std::lock_guard<std::mutex> state_lock(mu_);
  if (!tails_.empty() && resyncs_ != nullptr) resyncs_->Increment();
  tails_ = std::move(fresh);
  latest_published_ = manifest.published_seq;
  manifest_ok_ = true;
  PublishViewLocked();
  return Status::Ok();
}

void ReplicaProxy::Start() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  tail_thread_ = std::thread([this] {
    size_t cycle = 0;
    while (true) {
      {
        // Failed manifest loads stretch the poll with decorrelated
        // jitter so a corrupt ship directory does not burn a core.
        const auto wait =
            options_.poll_interval +
            std::chrono::milliseconds(
                manifest_backoff_ms_.load(std::memory_order_relaxed));
        std::unique_lock<std::mutex> wait_lock(stop_mu_);
        stop_cv_.wait_for(wait_lock, wait, [this] { return stopping_; });
        if (stopping_) return;
      }
      (void)CatchUp();
      ++cycle;
      if (options_.scrub_every > 0 && cycle % options_.scrub_every == 0) {
        (void)Scrub();
      }
    }
  });
}

void ReplicaProxy::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (tail_thread_.joinable()) tail_thread_.join();
  std::lock_guard<std::mutex> lock(stop_mu_);
  started_ = false;
}

std::vector<ContextShard::Row> ReplicaProxy::ViewRows(
    bool* degraded) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ContextShard::Row> rows;
  for (const ShardTail& tail : tails_) {
    for (const ContextShard::Row& row : tail.rows) {
      if (row.seq >= view_published_) break;  // seq-ascending per tail
      rows.push_back(row);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const ContextShard::Row& a, const ContextShard::Row& b) {
              return a.seq < b.seq;
            });
  // The leader evicts globally-oldest-first down to its capacity, and the
  // shipped files may retain already-evicted rows (they leave the WAL
  // only at compaction). Keeping the newest `capacity` rows by sequence
  // reproduces the leader's window exactly.
  if (options_.context_capacity > 0 &&
      rows.size() > options_.context_capacity) {
    rows.erase(rows.begin(),
               rows.begin() + static_cast<std::vector<
                   ContextShard::Row>::difference_type>(
                   rows.size() - options_.context_capacity));
  }
  if (degraded != nullptr) {
    *degraded = !manifest_ok_;
    for (const ShardTail& tail : tails_) {
      if (tail.quarantined) *degraded = true;
    }
  }
  return rows;
}

ReadPath ReplicaProxy::ExplainReadPath() const {
  ReadPath path;
  path.alpha = options_.alpha;
  path.parallel_conformity = options_.parallel_conformity;
  path.pool = conformity_pool_.get();
  path.bitmap_rebuilds = bitmap_rebuilds_;
  path.conformity_shards = conformity_shards_;
  return path;
}

Result<KeyResult> ReplicaProxy::Explain(const Instance& x, Label y,
                                        const Deadline& deadline) const {
  obs::ScopedLatency latency(registry_.get(), explain_latency_us_);
  explains_->Increment();
  CCE_RETURN_IF_ERROR(schema_->ValidateInstance(x));
  CCE_RETURN_IF_ERROR(schema_->ValidateLabel(y));
  bool degraded = false;
  const std::vector<ContextShard::Row> rows = ViewRows(&degraded);
  if (rows.empty()) {
    return Status::FailedPrecondition(
        "replica view is empty (leader has not shipped, or the view "
        "watermark is 0)");
  }
  const Context context = MaterializeContext(schema_, rows);
  Result<KeyResult> key =
      SearchKey(context, x, y, deadline, ExplainReadPath());
  if (key.ok() && degraded) {
    // A quarantined tail or failing manifest means the view may be
    // stale; the key is still exactly right for published_seq(), and
    // honest about the replication path being degraded.
    key->degraded = true;
  }
  return key;
}

Result<std::vector<RelativeCounterfactual>> ReplicaProxy::Counterfactuals(
    const Instance& x, Label y) const {
  CCE_RETURN_IF_ERROR(schema_->ValidateInstance(x));
  CCE_RETURN_IF_ERROR(schema_->ValidateLabel(y));
  bool degraded = false;
  const std::vector<ContextShard::Row> rows = ViewRows(&degraded);
  if (rows.empty()) {
    return Status::FailedPrecondition("replica view is empty");
  }
  const Context context = MaterializeContext(schema_, rows);
  return SearchCounterfactuals(context, x, y);
}

Context ReplicaProxy::ContextSnapshot() const {
  return MaterializeContext(schema_, ViewRows(nullptr));
}

uint64_t ReplicaProxy::published_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_published_;
}

ReplicaProxy::Health ReplicaProxy::GetHealth() const {
  std::lock_guard<std::mutex> lock(mu_);
  Health health;
  health.view_published = view_published_;
  health.latest_published = latest_published_;
  health.lag_seq = latest_published_ > view_published_
                       ? latest_published_ - view_published_
                       : 0;
  health.manifest_ok = manifest_ok_;
  health.degraded = !manifest_ok_;
  uint64_t rows_in_view = 0;
  for (size_t i = 0; i < tails_.size(); ++i) {
    const ShardTail& tail = tails_[i];
    Health::Tail out;
    out.index = i;
    out.bootstrapped = tail.bootstrapped;
    out.quarantined = tail.quarantined;
    out.cause = tail.cause;
    out.applied_rows = tail.rows.size();
    out.applied_through = tail.applied_through;
    out.base = tail.base;
    if (tail.quarantined) health.degraded = true;
    for (const ContextShard::Row& row : tail.rows) {
      if (row.seq < view_published_) ++rows_in_view;
    }
    health.tails.push_back(std::move(out));
  }
  health.rows_in_view = rows_in_view;
  health.catchups = catchups_ != nullptr ? catchups_->Value() : 0;
  health.divergences = divergences_ != nullptr ? divergences_->Value() : 0;
  health.resyncs = resyncs_ != nullptr ? resyncs_->Value() : 0;
  health.manifest_failures =
      manifest_failures_ != nullptr ? manifest_failures_->Value() : 0;
  health.manifest_backoff_ms =
      manifest_backoff_ms_.load(std::memory_order_relaxed);
  return health;
}

}  // namespace cce::serving
