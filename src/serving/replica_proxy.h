#ifndef CCE_SERVING_REPLICA_PROXY_H_
#define CCE_SERVING_REPLICA_PROXY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cce.h"
#include "core/counterfactual.h"
#include "core/dataset.h"
#include "core/key_result.h"
#include "io/env.h"
#include "io/ship_manifest.h"
#include "obs/metrics.h"
#include "serving/context_shard.h"
#include "serving/read_path.h"
#include "serving/resilience.h"

namespace cce::serving {

/// Follower half of WAL-shipping replication: a read-only proxy that
/// bootstraps from a ShardLogShipper's ship directory and serves
/// Explain/Counterfactuals from a generation-consistent view of the
/// leader's recorded context — with keys *bit-identical* to the leader's
/// at the same published sequence, because both sides merge rows by the
/// same global sequence order, apply the same capacity window, and run
/// the same ReadPath search.
///
/// Consistency model. Each manifest shard record carries a per-shard
/// watermark p (complete up to p); the replica's served view is the
/// sequence min(p) over shards it has fully applied. A shard whose
/// shipped files are torn, divergent or unreadable is *tail-quarantined*:
/// its last-good applied rows keep serving, its watermark stops
/// advancing, and the whole view holds at the old watermark — stale but
/// never inconsistent. Explains then carry degraded = true, and
/// Health().lag_seq bounds the staleness in sequence numbers.
///
/// Fail-soft discipline (mirrors the leader's shards): no shipped-file
/// damage crashes the replica or fails Create. A corrupt manifest keeps
/// the previous view; a torn segment quarantines one shard's tail; a
/// divergence digest mismatch triggers an automatic resync of that shard
/// from the shipped files (dropping only replica-side state — the ship
/// directory is the source of truth).
///
/// Thread safety: all public methods may be called concurrently. CatchUp,
/// Scrub and ForceResync serialise on an internal catch-up mutex; Explain
/// copies the view under a short lock and searches outside it.
class ReplicaProxy {
 public:
  struct Options {
    /// The ship directory a ShardLogShipper publishes into.
    std::string ship_dir;
    /// Rolling window capacity — must equal the leader's
    /// context_capacity for bit-identical keys (0 = unbounded).
    size_t context_capacity = 0;
    /// Conformity bound — must equal the leader's alpha.
    double alpha = 1.0;
    /// Key-search engine configuration (see ExplainableProxy::Options);
    /// either setting yields the same keys, only latency differs.
    bool parallel_conformity = false;
    size_t conformity_threads = 0;
    /// I/O surface; null means io::Env::Default(). Tests inject
    /// io::FaultInjectingEnv to fault the replication read path.
    io::Env* env = nullptr;
    /// Metric sink; null means a private registry.
    std::shared_ptr<obs::Registry> registry;
    /// Cadence of the background tailing loop started by Start().
    std::chrono::milliseconds poll_interval{50};
    /// Run the divergence scrubber every N background catch-ups; 0
    /// disables background scrubbing (Scrub() can still be called).
    size_t scrub_every = 8;
    /// Decorrelated-jitter backoff the background loop adds on top of
    /// poll_interval after a *failed* manifest load, so a corrupt ship
    /// directory does not burn a core retrying at full cadence. A leader
    /// that simply has not shipped yet (quiet NotFound) never backs off.
    /// max_attempts is ignored — the loop never gives up.
    RetryPolicy::Options manifest_retry = [] {
      RetryPolicy::Options retry;
      retry.max_attempts = 1 << 20;
      retry.initial_backoff = std::chrono::milliseconds(50);
      retry.max_backoff = std::chrono::milliseconds(5000);
      return retry;
    }();
    /// Seed for the manifest-retry jitter (deterministic schedules).
    uint64_t backoff_seed = 42;
  };

  /// Point-in-time replica health.
  struct Health {
    /// The view watermark: every served row has seq < view_published,
    /// and every leader row with seq < view_published is in the view.
    uint64_t view_published = 0;
    /// Watermark of the newest good manifest seen.
    uint64_t latest_published = 0;
    /// latest_published - view_published: staleness bound in sequences.
    uint64_t lag_seq = 0;
    /// True when any tail is quarantined or the last manifest load
    /// failed: Explains are flagged degraded.
    bool degraded = false;
    /// False until a manifest has been loaded successfully.
    bool manifest_ok = false;
    uint64_t rows_in_view = 0;
    struct Tail {
      size_t index = 0;
      bool bootstrapped = false;
      bool quarantined = false;
      /// Why the tail is quarantined ("wal", "snapshot", "divergence",
      /// "read"); empty while healthy.
      std::string cause;
      uint64_t applied_rows = 0;
      uint64_t applied_through = 0;
      /// Snapshot generation currently applied.
      uint64_t base = 0;
    };
    std::vector<Tail> tails;
    uint64_t catchups = 0;
    uint64_t divergences = 0;
    uint64_t resyncs = 0;
    uint64_t manifest_failures = 0;
    /// Extra delay the background loop currently adds between polls
    /// because manifest loads keep failing; 0 while loads succeed.
    int64_t manifest_backoff_ms = 0;
  };

  /// Builds the replica and runs one catch-up (fail-soft: a missing or
  /// damaged ship directory yields an empty, degraded view, not an
  /// error). Fails only for invalid options. `schema` must be the
  /// leader's schema.
  static Result<std::unique_ptr<ReplicaProxy>> Create(
      std::shared_ptr<const Schema> schema, const Options& options);

  ~ReplicaProxy();
  ReplicaProxy(const ReplicaProxy&) = delete;
  ReplicaProxy& operator=(const ReplicaProxy&) = delete;

  /// One synchronous catch-up pass: reload the manifest, bootstrap or
  /// tail every shard, verify digests, advance the view. Returns OK even
  /// when shards were quarantined (fail-soft); the error cases are
  /// recorded in Health(). Serialised with Scrub/ForceResync.
  Status CatchUp();

  /// Divergence scrub: recompute every caught-up shard's digest from
  /// applied state against the manifest; a mismatch counts a divergence
  /// and resyncs the shard from the shipped files.
  Status Scrub();

  /// Drops all replica-side state and rebuilds from the ship directory
  /// (the runbook's forced-resync operation).
  Status ForceResync();

  /// Starts/stops the background tailing thread (CatchUp every
  /// poll_interval, Scrub every scrub_every cycles). Start is idempotent.
  void Start();
  void Stop();

  /// Relative key for (x, y) against the replica's current view. The key
  /// is bit-identical to the leader's Explain at the same published
  /// sequence; `degraded` is true when the view is behind a quarantined
  /// or failing replication path. kFailedPrecondition while the view is
  /// empty.
  Result<KeyResult> Explain(const Instance& x, Label y,
                            const Deadline& deadline = {}) const;

  /// Closest counterfactual witnesses from the current view.
  Result<std::vector<RelativeCounterfactual>> Counterfactuals(
      const Instance& x, Label y) const;

  /// The served view as a Context (rows with seq < published_seq() in
  /// arrival order, capacity-windowed) — the replica-side twin of
  /// ExplainableProxy::ContextSnapshot().
  Context ContextSnapshot() const;

  /// The view watermark (Health().view_published).
  uint64_t published_seq() const;

  Health GetHealth() const;

  obs::Registry& registry() const { return *registry_; }

 private:
  struct ShardTail {
    bool bootstrapped = false;
    bool quarantined = false;
    std::string cause;
    /// Snapshot generation (covers == wal base) currently applied.
    uint64_t base = 0;
    /// Applied rows of the current generation, ascending seq. Never
    /// trimmed while the generation lives — the digest covers them all.
    std::vector<ContextShard::Row> rows;
    /// Manifest watermark this tail is complete up to.
    uint64_t applied_through = 0;
  };

  /// One shard's shipped file contents, read before any lock is taken.
  struct ShardFiles {
    std::string snapshot;
    bool snapshot_ok = false;
    std::string wal;
    bool wal_ok = false;
  };

  ReplicaProxy(std::shared_ptr<const Schema> schema, const Options& options);

  void InitInstruments();
  /// Reads the manifest and every shard's shipped files (all the file
  /// I/O of a catch-up or resync, no locks beyond catchup_mu_). On
  /// failure `*quiet` says whether this is the benign
  /// leader-has-not-shipped-yet case. Under catchup_mu_.
  Status LoadShipState(io::ShipManifest* manifest,
                       std::vector<ShardFiles>* files, bool* quiet);
  /// Advance / clear the tail-loop manifest backoff. Under catchup_mu_.
  void ArmManifestBackoff();
  void ResetManifestBackoff();
  /// Applies one manifest shard record to its tail (bootstrap, tail, or
  /// quarantine). File contents are already read; mutates only `tail`
  /// and (thread-safe) counters, so callers may run it on a private
  /// tail outside mu_.
  void ApplyShard(const io::ShipManifest::Shard& entry,
                  const std::string& snapshot_content, bool snapshot_read_ok,
                  const std::string& wal_content, bool wal_read_ok,
                  ShardTail* tail);
  /// CRC-32C digest over `rows` with seq < `published` (the follower
  /// half of the manifest digest contract).
  static uint32_t DigestRows(const std::vector<ContextShard::Row>& rows,
                             uint64_t published);
  /// Recomputes the view watermark + gauges from the tails. Under mu_.
  void PublishViewLocked();
  /// Copies the served view (seq < view watermark, capacity-windowed).
  std::vector<ContextShard::Row> ViewRows(bool* degraded) const;
  Status CatchUpLocked();
  ReadPath ExplainReadPath() const;
  /// Lazily creates the per-shard tail-quarantined gauge.
  obs::Gauge* TailGauge(size_t shard) const;

  std::shared_ptr<const Schema> schema_;
  Options options_;
  io::Env* env_;

  /// Serialises CatchUp/Scrub/ForceResync (file I/O happens under this,
  /// never under mu_).
  std::mutex catchup_mu_;
  /// Guards tails_ + view fields. Held only for memory work.
  mutable std::mutex mu_;
  std::vector<ShardTail> tails_;
  uint64_t view_published_ = 0;
  uint64_t latest_published_ = 0;
  bool manifest_ok_ = false;
  /// A manifest has loaded successfully at least once (distinguishes
  /// "leader has not shipped yet" from "the manifest went bad").
  bool had_manifest_ = false;

  /// Manifest-failure backoff state (mutated under catchup_mu_ only; the
  /// current value is atomic so the tail loop and Health read it lock
  /// free).
  RetryPolicy manifest_backoff_;
  Rng backoff_rng_;
  std::atomic<int64_t> manifest_backoff_ms_{0};

  std::shared_ptr<obs::Registry> registry_;
  std::unique_ptr<ThreadPool> conformity_pool_;

  /// Background tailing loop.
  std::thread tail_thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;

  obs::Histogram* lag_hist_ = nullptr;
  obs::Histogram* catchup_micros_ = nullptr;
  obs::Gauge* backoff_gauge_ = nullptr;
  obs::Gauge* published_gauge_ = nullptr;
  obs::Counter* catchups_ = nullptr;
  obs::Counter* records_applied_ = nullptr;
  obs::Counter* divergences_ = nullptr;
  obs::Counter* resyncs_ = nullptr;
  obs::Counter* manifest_failures_ = nullptr;
  obs::Counter* fence_skips_ = nullptr;
  obs::Counter* scrubs_ = nullptr;
  obs::Counter* explains_ = nullptr;
  obs::Counter* bitmap_rebuilds_ = nullptr;
  obs::Counter* conformity_shards_ = nullptr;
  obs::Histogram* explain_latency_us_ = nullptr;
  /// Per-shard {shard="<i>"} quarantine gauges, created lazily (the
  /// shard count is discovered from the manifest).
  mutable std::vector<obs::Gauge*> tail_gauges_;
};

}  // namespace cce::serving

#endif  // CCE_SERVING_REPLICA_PROXY_H_
