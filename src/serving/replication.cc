#include "serving/replication.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/crc32c.h"
#include "io/atomic_file.h"
#include "io/shard_snapshot.h"
#include "io/wal_segment.h"
#include "serving/shard_layout.h"

namespace cce::serving {

ShardLogShipper::ShardLogShipper(const Options& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : io::Env::Default()),
      last_entries_(std::max<size_t>(1, options.shards)) {
  options_.shards = std::max<size_t>(1, options_.shards);
  if (options_.registry != nullptr) {
    obs::Registry& reg = *options_.registry;
    cycles_ = reg.GetCounter("cce_ship_cycles_total",
                             "Ship cycles completed (manifest published).");
    shard_skips_ = reg.GetCounter(
        "cce_ship_shard_skips_total",
        "Shards a ship cycle skipped because the generation fence kept "
        "failing (compaction raced the copy); the shard keeps its previous "
        "shipped state.");
    shipped_bytes_ = reg.GetCounter(
        "cce_ship_shipped_bytes_total",
        "Bytes written into the ship directory (segments + snapshots).");
    published_seq_gauge_ = reg.GetGauge(
        "cce_ship_published_seq",
        "Watermark of the last published ship manifest.");
    tmp_orphans_removed_ = reg.GetCounter(
        "cce_tmp_orphans_removed_total",
        "Orphaned *.tmp files swept from the durability dir at startup.");
  }
  SweepOrphanTmpFiles();
}

void ShardLogShipper::SweepOrphanTmpFiles() {
  std::vector<std::string> names;
  // The ship dir is created lazily by the first Ship(); a missing or
  // unlistable dir has nothing to sweep.
  if (!env_->ListDir(options_.ship_dir, &names).ok()) return;
  for (const std::string& name : names) {
    if (!io::IsAtomicTempName(name)) continue;
    if (env_->RemoveFile(options_.ship_dir + "/" + name).ok() &&
        tmp_orphans_removed_ != nullptr) {
      tmp_orphans_removed_->Increment();
    }
  }
}

Status ShardLogShipper::ReadShardState(size_t shard,
                                       std::string* snapshot_content,
                                       bool* has_snapshot,
                                       std::string* wal_content) {
  const std::string snapshot_path =
      options_.source_dir + "/" + ShardFileName(shard, "snapshot");
  const std::string wal_path =
      options_.source_dir + "/" + ShardFileName(shard, "wal");
  snapshot_content->clear();
  wal_content->clear();
  // Snapshot before WAL: a compaction that lands between the two reads
  // rewrote *both*, so the WAL header's base_recorded will disagree with
  // this snapshot's covers count and the fence below catches it. (The
  // reverse order has the same property; only doing it consistently
  // matters.)
  *has_snapshot = env_->FileExists(snapshot_path);
  if (*has_snapshot) {
    CCE_RETURN_IF_ERROR(env_->ReadFileToString(snapshot_path,
                                               snapshot_content));
  }
  Status read = env_->ReadFileToString(wal_path, wal_content);
  if (!read.ok() && read.code() != StatusCode::kNotFound) return read;
  return Status::Ok();
}

Status ShardLogShipper::ShipShard(size_t shard, uint64_t published_seq,
                                  io::ShipManifest::Shard* entry) {
  std::string snapshot_content;
  std::string wal_content;
  bool has_snapshot = false;
  io::LoadedShardSnapshot snapshot;
  io::WalSegmentView view;
  // One retry absorbs the common race (a single compaction landing
  // between the snapshot read and the WAL read); a shard that fences
  // twice is skipped this cycle and retried on the next.
  Status fenced = Status::Ok();
  for (int attempt = 0; attempt < 2; ++attempt) {
    CCE_RETURN_IF_ERROR(ReadShardState(shard, &snapshot_content,
                                       &has_snapshot, &wal_content));
    if (wal_content.empty()) {
      // No log yet (in-memory leader shard, or a leader that has not
      // recorded): nothing to ship, which is itself consistent.
      view = io::WalSegmentView{};
      view.header_ok = true;
      fenced = Status::Ok();
      if (!has_snapshot) break;
    }
    if (!wal_content.empty()) {
      view = io::ScanWalSegment(wal_content);
      if (!view.header_ok) {
        fenced = Status::IoError("shard " + std::to_string(shard) +
                                 " wal header unreadable mid-ship");
        continue;
      }
    }
    if (has_snapshot) {
      auto parsed = io::ParseShardSnapshot(
          snapshot_content, ShardFileName(shard, "snapshot"));
      if (!parsed.ok()) {
        fenced = parsed.status();
        continue;
      }
      snapshot = std::move(parsed).value();
      if (!snapshot.covers_valid ||
          snapshot.covers != view.base_recorded) {
        fenced = Status::Unavailable(
            "shard " + std::to_string(shard) +
            " generation fence: snapshot covers " +
            std::to_string(snapshot.covers) + " != wal base " +
            std::to_string(view.base_recorded));
        continue;
      }
    } else if (view.base_recorded != 0) {
      fenced = Status::Unavailable(
          "shard " + std::to_string(shard) + " wal base " +
          std::to_string(view.base_recorded) + " without a snapshot");
      continue;
    }
    fenced = Status::Ok();
    break;
  }
  CCE_RETURN_IF_ERROR(fenced);

  // Digest over every shipped row with seq < P, in sequence order. The
  // snapshot's rows all precede the log's frames (frames are appended
  // after the compaction that wrote the snapshot), so stored order is
  // sequence order.
  uint32_t digest = 0;
  uint64_t rows = 0;
  if (has_snapshot) {
    for (size_t r = 0; r < snapshot.rows.size(); ++r) {
      const uint64_t seq = snapshot.seqs[r];
      if (seq >= published_seq) continue;
      const std::string payload = io::EncodeWalRecordPayload(
          snapshot.rows.instance(r), snapshot.rows.label(r), seq);
      digest = crc32c::Extend(digest, payload.data(), payload.size());
      ++rows;
    }
  }
  for (const io::WalFrame& frame : view.frames) {
    if (frame.seq >= published_seq) continue;
    const std::string payload =
        io::EncodeWalRecordPayload(frame.x, frame.y, frame.seq);
    digest = crc32c::Extend(digest, payload.data(), payload.size());
    ++rows;
  }

  // Ship the exact bytes (snapshot verbatim, WAL's valid prefix): the
  // follower re-runs the same parsers over the same bytes.
  const std::string shipped_wal = wal_content.substr(0, view.valid_end);
  const std::string wal_dest =
      options_.ship_dir + "/" + ShippedShardFileName(shard, "wal");
  const std::string snapshot_dest =
      options_.ship_dir + "/" + ShippedShardFileName(shard, "snapshot");
  if (has_snapshot) {
    CCE_RETURN_IF_ERROR(io::AtomicWriteFile(
        env_, snapshot_dest, [&snapshot_content](std::ostream* out) {
          out->write(snapshot_content.data(),
                     static_cast<std::streamsize>(snapshot_content.size()));
          return Status::Ok();
        }));
  } else {
    (void)env_->RemoveFile(snapshot_dest);
  }
  CCE_RETURN_IF_ERROR(io::AtomicWriteFile(
      env_, wal_dest, [&shipped_wal](std::ostream* out) {
        out->write(shipped_wal.data(),
                   static_cast<std::streamsize>(shipped_wal.size()));
        return Status::Ok();
      }));
  if (shipped_bytes_ != nullptr) {
    shipped_bytes_->Add(shipped_wal.size() +
                        (has_snapshot ? snapshot_content.size() : 0));
  }

  entry->index = shard;
  entry->published = published_seq;
  entry->wal_base = view.base_recorded;
  entry->wal_bytes = view.valid_end;
  entry->has_snapshot = has_snapshot;
  entry->rows = rows;
  entry->digest = digest;
  return Status::Ok();
}

Status ShardLogShipper::Ship(uint64_t published_seq) {
  if (!ship_dir_ready_) {
    CCE_RETURN_IF_ERROR(env_->CreateDir(options_.ship_dir));
    ship_dir_ready_ = true;
  }
  io::ShipManifest manifest;
  manifest.published_seq = published_seq;
  for (size_t shard = 0; shard < options_.shards; ++shard) {
    io::ShipManifest::Shard entry;
    Status shipped = ShipShard(shard, published_seq, &entry);
    if (!shipped.ok()) {
      if (shard_skips_ != nullptr) shard_skips_->Increment();
      if (last_entries_[shard].has_value()) {
        // Fail-soft: the previous shipped files are still intact (every
        // ship write is atomic) and their watermark still holds.
        entry = *last_entries_[shard];
      } else {
        // Never shipped: an explicitly-empty record at watermark 0, so
        // followers hold their view at 0 instead of trusting a gap.
        entry = io::ShipManifest::Shard{};
        entry.index = shard;
      }
    }
    last_entries_[shard] = entry;
    manifest.shards.push_back(entry);
  }
  CCE_RETURN_IF_ERROR(io::SaveShipManifest(
      env_, options_.ship_dir + "/" + kShipManifestName, manifest));
  last_manifest_ = manifest;
  if (cycles_ != nullptr) cycles_->Increment();
  if (published_seq_gauge_ != nullptr) {
    published_seq_gauge_->Set(static_cast<int64_t>(published_seq));
  }
  return Status::Ok();
}

}  // namespace cce::serving
