#ifndef CCE_SERVING_REPLICATION_H_
#define CCE_SERVING_REPLICATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/env.h"
#include "io/ship_manifest.h"
#include "obs/metrics.h"

namespace cce::serving {

/// Leader-side half of WAL-shipping replication (DESIGN.md §11): copies
/// each context shard's current snapshot generation + valid WAL prefix
/// from the proxy's durability directory into a ship directory, then
/// atomically replaces the ship manifest naming the published watermark
/// those files are complete up to. A ReplicaProxy pointed at the ship
/// directory (a shared filesystem, an rsync target, or a test tmpdir)
/// bootstraps and tails those files into a read-only serving view.
///
/// The shipper is a *reader* of the leader's files — it never holds a
/// shard lock, so shipping cannot stall recording. Consistency comes from
/// two fences instead:
///
///   - the watermark fence: the caller obtains P from
///     ExplainableProxy::PublishedSequence() *before* Ship reads any file,
///     so every record with seq < P is already durably in its shard's
///     files, and the frames the copy catches beyond P are filtered by
///     sequence on the follower;
///   - the generation fence: a compaction racing the copy is detected by
///     the snapshot's covers count disagreeing with the WAL header's
///     base_recorded (they are written to agree). Ship re-reads once;
///     a shard still torn is skipped — its previous shipped files and its
///     previous per-shard watermark stay in the manifest, so followers
///     simply see that shard lag rather than a wrong view.
///
/// Each manifest shard record also carries a digest (CRC-32C over the
/// shipped rows' WAL payload encodings with seq < p, in sequence order):
/// the follower's divergence scrubber recomputes the digest from applied
/// state and forces a resync on mismatch.
///
/// Thread safety: Ship is not re-entrant; callers serialise ship cycles
/// (one shipping loop per leader).
class ShardLogShipper {
 public:
  struct Options {
    /// The leader proxy's durability directory (read side).
    std::string source_dir;
    /// Destination directory; created if missing (parents must exist).
    std::string ship_dir;
    /// Leader shard count (ExplainableProxy::num_shards()).
    size_t shards = 1;
    /// I/O surface for both sides; null means io::Env::Default(). Tests
    /// inject io::FaultInjectingEnv to tear shipped segments.
    io::Env* env = nullptr;
    /// Metric sink; null disables shipper metrics.
    obs::Registry* registry = nullptr;
  };

  /// Construction also sweeps orphaned "*.tmp.*" files out of the ship
  /// directory (AtomicWriteFile casualties of a shipper that died between
  /// create and rename), counted in cce_tmp_orphans_removed_total — the
  /// same family the leader proxy sweeps its durability dir into.
  explicit ShardLogShipper(const Options& options);

  /// Ships every shard's current state and publishes a manifest with
  /// watermark `published_seq` (from the leader's PublishedSequence(),
  /// obtained before this call). Per-shard failures are fail-soft: the
  /// shard keeps its previous shipped files + watermark in the manifest
  /// and the cycle continues. Only a manifest write failure fails Ship —
  /// without a new manifest the cycle changed nothing a follower reads.
  Status Ship(uint64_t published_seq);

  /// The manifest written by the last successful Ship; nullopt before the
  /// first one. Test/diagnostic accessor.
  const std::optional<io::ShipManifest>& last_manifest() const {
    return last_manifest_;
  }

 private:
  /// Reads, fences and ships one shard; fills `entry` on success.
  Status ShipShard(size_t shard, uint64_t published_seq,
                   io::ShipManifest::Shard* entry);
  /// One read + fence attempt for ShipShard (which retries once).
  Status ReadShardState(size_t shard, std::string* snapshot_content,
                        bool* has_snapshot, std::string* wal_content);
  /// Unlinks "*.tmp.*" leftovers in the ship dir (no-op while the dir does
  /// not exist yet).
  void SweepOrphanTmpFiles();

  Options options_;
  io::Env* env_;
  bool ship_dir_ready_ = false;
  /// Previous cycle's manifest entries, reused for fence-skipped shards.
  std::vector<std::optional<io::ShipManifest::Shard>> last_entries_;
  std::optional<io::ShipManifest> last_manifest_;

  obs::Counter* cycles_ = nullptr;
  obs::Counter* shard_skips_ = nullptr;
  obs::Counter* shipped_bytes_ = nullptr;
  obs::Counter* tmp_orphans_removed_ = nullptr;
  obs::Gauge* published_seq_gauge_ = nullptr;
};

}  // namespace cce::serving

#endif  // CCE_SERVING_REPLICATION_H_
