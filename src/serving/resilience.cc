#include "serving/resilience.h"

#include <algorithm>

namespace cce::serving {

RetryPolicy::RetryPolicy(const Options& options)
    : options_(options), previous_(options.initial_backoff) {}

void RetryPolicy::Reset() {
  previous_ = options_.initial_backoff;
  first_ = true;
}

std::chrono::milliseconds RetryPolicy::NextBackoff(Rng* rng) {
  const auto base = options_.initial_backoff;
  const auto cap = options_.max_backoff;
  std::chrono::milliseconds next;
  if (options_.jitter && rng != nullptr) {
    // Decorrelated jitter: uniform in [base, 3 * previous]. The widening
    // window spreads correlated clients apart while never sleeping less
    // than the base delay.
    const int64_t lo = base.count();
    const int64_t hi = std::max<int64_t>(lo, previous_.count() * 3);
    next = std::chrono::milliseconds(rng->UniformInt(lo, hi));
  } else if (first_) {
    next = base;
  } else {
    next = std::chrono::milliseconds(static_cast<int64_t>(
        static_cast<double>(previous_.count()) * options_.multiplier));
    next = std::max(next, base);
  }
  next = std::min(next, cap);
  previous_ = next;
  first_ = false;
  return next;
}

CircuitBreaker::CircuitBreaker(const Options& options, ClockFn clock)
    : options_(options), clock_(std::move(clock)) {
  if (!clock_) {
    clock_ = [] { return std::chrono::steady_clock::now(); };
  }
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::AllowRequest() {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (clock_() - opened_at_ >= options_.open_cooldown) {
        state_ = State::kHalfOpen;
        probes_in_flight_ = 0;
        probe_successes_ = 0;
        return AllowRequest();
      }
      ++rejected_;
      return false;
    case State::kHalfOpen:
      if (probes_in_flight_ < options_.probe_budget) {
        ++probes_in_flight_;
        return true;
      }
      ++rejected_;
      return false;
  }
  return false;
}

void CircuitBreaker::TripOpen() {
  state_ = State::kOpen;
  opened_at_ = clock_();
  consecutive_failures_ = 0;
  ++trips_;
}

void CircuitBreaker::RecordSuccess() {
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      ++probe_successes_;
      if (probe_successes_ >= options_.successes_to_close) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
      }
      break;
    case State::kOpen:
      // A success reported while open (late completion); ignore.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TripOpen();
      }
      break;
    case State::kHalfOpen:
      // One failing probe is enough: the backend is still sick.
      TripOpen();
      break;
    case State::kOpen:
      break;
  }
}

std::string HealthSnapshot::ToString() const {
  std::string out = "breaker=";
  out += CircuitBreaker::StateName(breaker_state);
  out += " predicts=" + std::to_string(predicts);
  out += " predict_failures=" + std::to_string(predict_failures);
  out += " retries=" + std::to_string(retries);
  out += " breaker_rejections=" + std::to_string(breaker_rejections);
  out += " breaker_trips=" + std::to_string(breaker_trips);
  out += " deadline_misses=" + std::to_string(deadline_misses);
  out += " degraded_explains=" + std::to_string(degraded_explains);
  out += " fallback_serves=" + std::to_string(fallback_serves);
  out += " wal_records_logged=" + std::to_string(wal_records_logged);
  out += " wal_fsyncs=" + std::to_string(wal_fsyncs);
  out += " wal_compactions=" + std::to_string(wal_compactions);
  out += " wal_records_recovered=" + std::to_string(wal_records_recovered);
  out += " wal_records_dropped=" + std::to_string(wal_records_dropped);
  out += " compaction_failures=" + std::to_string(compaction_failures);
  out += " quarantine_drops=" + std::to_string(quarantine_drops);
  out += " tmp_orphans_removed=" + std::to_string(tmp_orphans_removed);
  out += " shards=" + std::to_string(shards.size());
  out += " shards_quarantined=" + std::to_string(shards_quarantined);
  out += " shards_read_only=" + std::to_string(shards_read_only);
  out += " shard_repairs=" + std::to_string(shard_repairs);
  out += std::string(" degraded_context=") +
         (degraded_context ? "true" : "false");
  for (const ShardHealth& shard : shards) {
    out += " shard" + std::to_string(shard.index) + "=";
    switch (shard.state) {
      case ContextShard::State::kActive:
        out += "active";
        break;
      case ContextShard::State::kReadOnly:
        out += "read_only";
        break;
      case ContextShard::State::kQuarantined:
        out += "quarantined";
        break;
    }
    out += "/" + std::to_string(shard.window_rows) + "rows";
    if (shard.wal_poisoned) out += "/poisoned";
  }
  out += " explains=" + std::to_string(explains);
  out += " validation_rejects=" + std::to_string(validation_rejects);
  out += " admitted_predicts=" + std::to_string(admitted_predicts);
  out += " admitted_records=" + std::to_string(admitted_records);
  out += " admitted_explains=" + std::to_string(admitted_explains);
  out += " admitted_counterfactuals=" +
         std::to_string(admitted_counterfactuals);
  out += " shed_rate_limited=" + std::to_string(shed_rate_limited);
  out += " shed_queue_full=" + std::to_string(shed_queue_full);
  out += " shed_deadline_unmeetable=" +
         std::to_string(shed_deadline_unmeetable);
  out += " shed_queue_deadline=" + std::to_string(shed_queue_deadline);
  out += " shed_codel=" + std::to_string(shed_codel);
  out += " explain_queue_waits=" + std::to_string(explain_queue_waits);
  out += " concurrency_limit=" + std::to_string(concurrency_limit);
  out += " concurrency_increases=" + std::to_string(concurrency_increases);
  out += " concurrency_decreases=" + std::to_string(concurrency_decreases);
  out += " explain_latency_ewma_us=" +
         std::to_string(explain_latency_ewma_us);
  out += " cache_hits=" + std::to_string(cache_hits);
  out += " cache_misses=" + std::to_string(cache_misses);
  out += " cache_stale_drops=" + std::to_string(cache_stale_drops);
  out += " cache_revalidations=" + std::to_string(cache_revalidations);
  out += " cache_revalidation_failures=" +
         std::to_string(cache_revalidation_failures);
  out += " cache_served_explains=" + std::to_string(cache_served_explains);
  out += " batch_executions=" + std::to_string(batch_executions);
  out += " batch_items=" + std::to_string(batch_items);
  return out;
}

}  // namespace cce::serving
