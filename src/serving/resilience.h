#ifndef CCE_SERVING_RESILIENCE_H_
#define CCE_SERVING_RESILIENCE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/model.h"
#include "core/types.h"
#include "serving/context_shard.h"

namespace cce::serving {

/// A fallible prediction backend — the remote-service view of a model.
/// Where core::Model promises an answer, an endpoint may time out, throttle
/// or fail; the proxy's resilience machinery (retries, breaker, deadlines)
/// exists to absorb exactly that difference.
class ModelEndpoint {
 public:
  virtual ~ModelEndpoint() = default;

  /// Serves one prediction, or a non-OK status describing the failure.
  virtual Result<Label> Predict(const Instance& x) = 0;
};

/// Adapts an in-process core::Model (which cannot fail) to the endpoint
/// interface, for proxies serving a local model.
class LocalModelEndpoint : public ModelEndpoint {
 public:
  /// `model` is not owned and must outlive the endpoint.
  explicit LocalModelEndpoint(const Model* model) : model_(model) {}

  Result<Label> Predict(const Instance& x) override {
    return model_->Predict(x);
  }

 private:
  const Model* model_;
};

/// Capped exponential backoff with decorrelated jitter (the AWS
/// architecture-blog scheme): each delay is drawn uniformly from
/// [base, 3 * previous], capped at `max_backoff`. Jitter is driven by an
/// external cce::Rng so schedules are reproducible from a seed.
///
/// The policy only *computes* delays; the caller decides how to wait, which
/// keeps tests free of real sleeps.
class RetryPolicy {
 public:
  struct Options {
    /// Total tries including the first; <= 1 disables retrying.
    int max_attempts = 4;
    /// First (and minimum) backoff delay.
    std::chrono::milliseconds initial_backoff{1};
    /// Upper bound on any single delay.
    std::chrono::milliseconds max_backoff{250};
    /// Growth factor used when jitter is disabled.
    double multiplier = 2.0;
    /// Decorrelated jitter; false gives deterministic pure exponential.
    bool jitter = true;
  };

  explicit RetryPolicy(const Options& options);

  /// Delay to wait before retry number `attempt` (1-based: the delay after
  /// the first failure is attempt 1). Advances the decorrelated-jitter
  /// state; call Reset() between logical operations.
  std::chrono::milliseconds NextBackoff(Rng* rng);

  /// Forgets the jitter state so the next operation starts from
  /// initial_backoff again.
  void Reset();

  /// True while `attempt` (number of tries already made) leaves budget.
  bool ShouldRetry(int attempts_made) const {
    return attempts_made < options_.max_attempts;
  }

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::chrono::milliseconds previous_;
  bool first_ = true;
};

/// Classic three-state circuit breaker protecting a model endpoint.
///
///   closed    — requests flow; `failure_threshold` *consecutive operation
///               failures* (an operation = one client call including all its
///               retries) trip it open.
///   open      — requests are rejected instantly (the proxy degrades to
///               record-only serving); after `open_cooldown` the next
///               request transitions to half-open.
///   half-open — up to `probe_budget` requests are let through as probes;
///               `successes_to_close` consecutive probe successes close the
///               breaker, any probe failure re-opens it.
///
/// Time is read through an injectable clock so the state machine is testable
/// without real waiting. Not thread-safe; the proxy serialises access.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive operation failures that trip the breaker.
    int failure_threshold = 5;
    /// How long the breaker stays open before probing.
    std::chrono::milliseconds open_cooldown{1000};
    /// Max probes admitted while half-open before a verdict.
    int probe_budget = 3;
    /// Consecutive probe successes required to close again.
    int successes_to_close = 2;
  };

  /// Monotonic now; injectable for tests.
  using ClockFn = std::function<std::chrono::steady_clock::time_point()>;

  explicit CircuitBreaker(const Options& options, ClockFn clock = nullptr);

  /// True when a request may proceed. Handles the open -> half-open
  /// transition when the cooldown has elapsed; a false return means the
  /// caller must fail fast (and may serve degraded results instead).
  bool AllowRequest();

  /// Reports the outcome of an admitted operation.
  void RecordSuccess();
  void RecordFailure();

  State state() const { return state_; }

  uint64_t rejected_count() const { return rejected_; }
  uint64_t trip_count() const { return trips_; }

  static const char* StateName(State state);

 private:
  void TripOpen();

  Options options_;
  ClockFn clock_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
  uint64_t rejected_ = 0;
  uint64_t trips_ = 0;
};

/// Point-in-time view of the proxy's resilience machinery, exposed for
/// observability (dashboards, alerting, tests).
struct HealthSnapshot {
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  /// Client calls to Predict() (before any retries).
  uint64_t predicts = 0;
  /// Predict operations that failed after exhausting retries.
  uint64_t predict_failures = 0;
  /// Individual retry attempts made across all operations.
  uint64_t retries = 0;
  /// Requests rejected fast because the breaker was open.
  uint64_t breaker_rejections = 0;
  /// Times the breaker tripped from closed/half-open to open.
  uint64_t breaker_trips = 0;
  /// Calls that ran out of deadline (Predict or Explain).
  uint64_t deadline_misses = 0;
  /// Explain calls answered with a degraded (deadline-truncated) key.
  uint64_t degraded_explains = 0;
  /// Explain/Counterfactual calls served while the breaker was open
  /// (record-only fallback mode still answering from context).
  uint64_t fallback_serves = 0;

  // Durability counters (all zero when Options::durability is disabled).
  /// Records appended to the write-ahead log.
  uint64_t wal_records_logged = 0;
  /// fsyncs issued by the log (sync policy + compactions).
  uint64_t wal_fsyncs = 0;
  /// Snapshot+truncate compactions performed.
  uint64_t wal_compactions = 0;
  /// Records replayed from snapshot + log at Create (crash recovery).
  uint64_t wal_records_recovered = 0;
  /// Lower bound on records lost to log corruption at recovery.
  uint64_t wal_records_dropped = 0;
  /// Compactions that failed and left the previous generation serving.
  uint64_t compaction_failures = 0;
  /// Records not durably applied (their shard was quarantined/read-only).
  uint64_t quarantine_drops = 0;
  /// Orphaned *.tmp files unlinked from the durability dir at startup.
  uint64_t tmp_orphans_removed = 0;

  // Sharded-context health (one entry per shard; always populated — a
  // classic single-WAL proxy reports one shard).
  struct ShardHealth {
    size_t index = 0;
    ContextShard::State state = ContextShard::State::kActive;
    size_t window_rows = 0;
    uint64_t total_recorded = 0;
    /// True while the shard's WAL refuses appends after a failed fsync.
    bool wal_poisoned = false;
    /// Non-empty while quarantined: what recovery could not salvage.
    std::string quarantine_reason;
    /// Bytes the last recovery's salvage truncated off this shard's WAL.
    uint64_t last_salvage_truncated_bytes = 0;
    /// Most recent quarantine, surviving Repair(): why, and which file
    /// class caused it ("snapshot" or "wal"; empty = never quarantined).
    std::string last_quarantine_reason;
    std::string last_quarantine_cause;
  };
  std::vector<ShardHealth> shards;
  uint64_t shards_quarantined = 0;
  uint64_t shards_read_only = 0;
  /// Quarantined shards re-admitted via RepairShard(), summed over shards.
  uint64_t shard_repairs = 0;
  /// True while any shard is quarantined: the merged context is missing
  /// rows and explanations are flagged degraded.
  bool degraded_context = false;

  // Overload-protection counters (DESIGN.md §8; admission fields are zero
  // when Options::overload.enabled is false).
  /// Client calls to Explain().
  uint64_t explains = 0;
  /// Requests rejected at the boundary for malformed input (wrong arity,
  /// out-of-domain value code, unknown label).
  uint64_t validation_rejects = 0;
  /// Admissions by class.
  uint64_t admitted_predicts = 0;
  uint64_t admitted_records = 0;
  uint64_t admitted_explains = 0;
  uint64_t admitted_counterfactuals = 0;
  /// Sheds by cause (kResourceExhausted with a retry_after_ms hint,
  /// except shed_queue_deadline which is kDeadlineExceeded).
  uint64_t shed_rate_limited = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline_unmeetable = 0;
  uint64_t shed_queue_deadline = 0;
  uint64_t shed_codel = 0;
  /// Expensive admissions that had to queue for a concurrency slot.
  uint64_t explain_queue_waits = 0;
  /// Current AIMD concurrency limit and its adjustment history.
  int concurrency_limit = 0;
  uint64_t concurrency_increases = 0;
  uint64_t concurrency_decreases = 0;
  /// EWMA of observed Explain service latency, µs.
  int64_t explain_latency_ewma_us = 0;
  /// Explanation-cache ladder: lookups, hits, entries whose window deltas
  /// outran the revalidation ring (dropped unverifiable), entries
  /// re-proven / disproven by a delta replay, and requests actually
  /// answered from the cache under pressure.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_stale_drops = 0;
  uint64_t cache_revalidations = 0;
  uint64_t cache_revalidation_failures = 0;
  uint64_t cache_served_explains = 0;
  /// Amortized batch Explain: shared-build executions and the items they
  /// answered (items / executions = the achieved amortization factor).
  uint64_t batch_executions = 0;
  uint64_t batch_items = 0;

  std::string ToString() const;
};

}  // namespace cce::serving

#endif  // CCE_SERVING_RESILIENCE_H_
