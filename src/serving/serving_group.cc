#include "serving/serving_group.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cce::serving {

const char* RoutePolicyName(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kLeaderOnly:
      return "leader-only";
    case RoutePolicy::kPreferFresh:
      return "prefer-fresh";
    case RoutePolicy::kPreferAvailable:
      return "prefer-available";
  }
  return "unknown";
}

/// Rendezvous between the caller and its hedge-pool tasks: each task fills
/// its slot and signals; the caller waits for an acceptable answer or for
/// every submitted attempt. Heap-allocated and shared so a losing task that
/// outlives the caller still has somewhere safe to write.
struct ServingGroup::HedgeState {
  std::mutex mu;
  std::condition_variable cv;
  Attempt attempts[2];
  int completed = 0;
};

Result<std::unique_ptr<ServingGroup>> ServingGroup::Create(
    ExplainableProxy* leader, std::vector<ReplicaProxy*> replicas,
    const Options& options) {
  if (leader == nullptr) {
    return Status::InvalidArgument("serving group needs a leader proxy");
  }
  for (const ReplicaProxy* replica : replicas) {
    if (replica == nullptr) {
      return Status::InvalidArgument("serving group replica may not be null");
    }
  }
  if (options.hedge_deadline_fraction <= 0.0 ||
      options.hedge_deadline_fraction > 1.0) {
    return Status::InvalidArgument(
        "hedge_deadline_fraction must be in (0, 1]");
  }
  if (options.hedge_p95_factor <= 0.0) {
    return Status::InvalidArgument("hedge_p95_factor must be positive");
  }
  return std::unique_ptr<ServingGroup>(
      new ServingGroup(leader, std::move(replicas), options));
}

ServingGroup::ServingGroup(ExplainableProxy* leader,
                           std::vector<ReplicaProxy*> replicas,
                           const Options& options)
    : leader_(leader), options_(options), policy_(options.policy) {
  if (options_.latency_window == 0) options_.latency_window = 1;
  registry_ = options_.registry != nullptr ? options_.registry
                                           : std::make_shared<obs::Registry>();
  if (options_.trace_capacity > 0) {
    traces_ = std::make_unique<obs::TraceRing>(options_.trace_capacity,
                                               registry_->clock());
  }
  backends_.resize(1 + replicas.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    Backend& backend = backends_[i];
    if (i > 0) backend.replica = replicas[i - 1];
    backend.breaker =
        std::make_unique<CircuitBreaker>(options_.breaker, options_.clock);
    backend.latencies_us.assign(options_.latency_window, 0);
  }
  InitInstruments();
  if (options_.hedge) {
    hedge_pool_ = std::make_unique<ThreadPool>(
        std::max<size_t>(2, options_.hedge_threads));
  }
  RefreshProbes();
}

ServingGroup::~ServingGroup() {
  // Drain in-flight hedge tasks before anything they touch goes away.
  hedge_pool_.reset();
}

void ServingGroup::InitInstruments() {
  obs::Registry& reg = *registry_;
  hedges_ = reg.GetCounter(
      "cce_group_hedges_total",
      "Hedged Explains fired after the primary backend exceeded its hedge "
      "delay.");
  hedge_wins_ = reg.GetCounter(
      "cce_group_hedge_wins_total",
      "Hedged Explains where the hedge request's answer was served.");
  failovers_ = reg.GetCounter(
      "cce_group_failovers_total",
      "Read dispatches that skipped past a broken or failing backend.");
  stale_hedge_rejects_ = reg.GetCounter(
      "cce_group_stale_hedge_rejects_total",
      "Secondary answers demoted to degraded because their view was behind "
      "the request's watermark fence.");
  degraded_serves_ = reg.GetCounter(
      "cce_group_degraded_serves_total",
      "Group Explains answered with a degraded key.");
  errors_ = reg.GetCounter(
      "cce_group_errors_total",
      "Group Explains that failed on every routable backend.");
  explain_latency_us_ = reg.GetHistogram(
      "cce_group_explain_latency_us",
      "Group Explain end-to-end latency (routing + hedging included), "
      "microseconds.");
  for (size_t i = 0; i < backends_.size(); ++i) {
    const obs::Labels labels = {{"backend", std::to_string(i)}};
    Backend& backend = backends_[i];
    backend.explains = reg.GetCounter(
        "cce_group_explains_total",
        "Explain attempts dispatched to each serving-group backend.", labels);
    backend.healthy_gauge = reg.GetGauge(
        "cce_group_backend_healthy",
        "1 while the backend is routable, non-degraded, breaker-closed and "
        "within the freshness slack.",
        labels);
    backend.evicted_gauge = reg.GetGauge(
        "cce_group_backend_evicted",
        "1 while the backend is evicted from the read routing set.", labels);
    backend.p95_gauge = reg.GetGauge(
        "cce_group_backend_p95_us",
        "Rolling p95 of the backend's Explain latency, microseconds.",
        labels);
  }
}

uint64_t ServingGroup::BackendSeq(size_t index) const {
  if (index == 0) return leader_->PublishedSequence();
  return backends_[index].replica->published_seq();
}

int64_t ServingGroup::P95Locked(const Backend& backend) const {
  if (backend.latency_count == 0) return 0;
  std::vector<int64_t> sample(
      backend.latencies_us.begin(),
      backend.latencies_us.begin() +
          static_cast<ptrdiff_t>(backend.latency_count));
  size_t nth = (sample.size() * 95) / 100;
  if (nth >= sample.size()) nth = sample.size() - 1;
  std::nth_element(sample.begin(),
                   sample.begin() + static_cast<ptrdiff_t>(nth), sample.end());
  return sample[nth];
}

std::vector<size_t> ServingGroup::RouteOrder() {
  std::lock_guard<std::mutex> lock(mu_);
  if (policy_ == RoutePolicy::kLeaderOnly) {
    if (backends_[0].evicted) return {};
    return {0};
  }
  std::vector<size_t> order;
  uint64_t max_published = 0;
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i].evicted) continue;
    order.push_back(i);
    max_published = std::max(max_published, backends_[i].published);
  }
  const uint64_t slack = options_.freshness_slack_seq;
  const RoutePolicy policy = policy_;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const Backend& ba = backends_[a];
    const Backend& bb = backends_[b];
    // A degraded view or an open breaker ranks last regardless of policy:
    // those backends stay in the order as last-resort failover targets.
    const bool bad_a = ba.degraded ||
                       ba.breaker->state() == CircuitBreaker::State::kOpen;
    const bool bad_b = bb.degraded ||
                       bb.breaker->state() == CircuitBreaker::State::kOpen;
    if (bad_a != bad_b) return !bad_a;
    const int64_t p95_a = P95Locked(ba);
    const int64_t p95_b = P95Locked(bb);
    if (policy == RoutePolicy::kPreferFresh) {
      const bool fresh_a = ba.published + slack >= max_published;
      const bool fresh_b = bb.published + slack >= max_published;
      if (fresh_a != fresh_b) return fresh_a;
      if (!fresh_a && ba.published != bb.published) {
        return ba.published > bb.published;
      }
      if (p95_a != p95_b) return p95_a < p95_b;
    } else {  // kPreferAvailable
      if (p95_a != p95_b) return p95_a < p95_b;
      if (ba.published != bb.published) return ba.published > bb.published;
    }
    return a < b;  // leader first on full ties
  });
  return order;
}

bool ServingGroup::AdmitBackend(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  return backends_[index].breaker->AllowRequest();
}

void ServingGroup::RecordOutcome(size_t index, const Status& status,
                                 int64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  Backend& backend = backends_[index];
  backend.explains->Increment();
  backend.latencies_us[backend.latency_next] = micros;
  backend.latency_next = (backend.latency_next + 1) % backend.latencies_us.size();
  backend.latency_count =
      std::min(backend.latency_count + 1, backend.latencies_us.size());
  backend.p95_gauge->Set(P95Locked(backend));
  if (status.ok()) {
    backend.breaker->RecordSuccess();
  } else if (status.code() != StatusCode::kInvalidArgument) {
    // Client errors are the caller's fault, not the backend's.
    backend.breaker->RecordFailure();
  }
}

ServingGroup::Attempt ServingGroup::CallBackend(size_t index,
                                                const Instance& x, Label y,
                                                const Deadline& deadline) {
  Attempt attempt;
  attempt.backend = index;
  // Sample the backend's watermark on both sides of the call and report the
  // min: the served view is at least that fresh even if a concurrent resync
  // rebuilt the view mid-call, so view_seq is always a sound lower bound.
  const uint64_t before = BackendSeq(index);
  const auto start = registry_->now();
  if (options_.explain_interceptor) options_.explain_interceptor(index);
  Result<KeyResult> result =
      index == 0 ? leader_->Explain(x, y, deadline)
                 : backends_[index].replica->Explain(x, y, deadline);
  const int64_t micros =
      std::chrono::duration_cast<std::chrono::microseconds>(registry_->now() -
                                                            start)
          .count();
  const uint64_t after = BackendSeq(index);
  attempt.view_seq = std::min(before, after);
  RecordOutcome(index, result.status(), micros);
  attempt.result = std::move(result);
  attempt.done = true;
  return attempt;
}

std::chrono::milliseconds ServingGroup::HedgeDelay(size_t primary,
                                                   const Deadline& deadline) {
  int64_t p95_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    p95_us = P95Locked(backends_[primary]);
  }
  auto delay = std::chrono::milliseconds(static_cast<int64_t>(
      static_cast<double>(p95_us) * options_.hedge_p95_factor / 1000.0));
  delay = std::clamp(delay, options_.hedge_min_delay, options_.hedge_max_delay);
  if (!deadline.infinite()) {
    const auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline.remaining());
    delay = std::min(
        delay, std::chrono::milliseconds(static_cast<int64_t>(
                   static_cast<double>(budget.count()) *
                   options_.hedge_deadline_fraction)));
  }
  return std::max(delay, std::chrono::milliseconds(0));
}

void ServingGroup::ApplyFence(Attempt* attempt, uint64_t fence_seq,
                              bool hedged) {
  if (!attempt->result.ok()) return;
  KeyResult& key = attempt->result.value();
  if (key.degraded) return;
  const bool behind_fence = hedged && attempt->view_seq < fence_seq;
  const bool behind_floor =
      attempt->view_seq < served_floor_.load(std::memory_order_relaxed);
  if (behind_fence || behind_floor) {
    // The key is still valid for the view it was computed from — it just
    // may not be the key the fence promised, so it serves flagged.
    key.degraded = true;
    if (behind_fence) stale_hedge_rejects_->Increment();
  }
}

Result<ServingGroup::ExplainResult> ServingGroup::FinishExplain(
    obs::RequestTrace& trace, Attempt attempt, bool hedged, bool hedge_won) {
  if (!attempt.result.ok()) {
    errors_->Increment();
    trace.set_outcome(obs::TraceOutcome::kError);
    trace.set_detail(attempt.result.status().ToString());
    return attempt.result.status();
  }
  if (hedge_won) hedge_wins_->Increment();
  ExplainResult out;
  out.key = std::move(attempt.result.value());
  out.backend = attempt.backend;
  out.view_seq = attempt.view_seq;
  out.hedged = hedged;
  if (out.key.degraded) {
    degraded_serves_->Increment();
    trace.set_outcome(obs::TraceOutcome::kDegraded);
  } else {
    uint64_t floor = served_floor_.load(std::memory_order_relaxed);
    while (floor < out.view_seq &&
           !served_floor_.compare_exchange_weak(floor, out.view_seq,
                                                std::memory_order_relaxed)) {
    }
    trace.set_outcome(hedged ? obs::TraceOutcome::kRetried
                             : obs::TraceOutcome::kServedFull);
  }
  return out;
}

Result<ServingGroup::ExplainResult> ServingGroup::Explain(
    const Instance& x, Label y, const Deadline& deadline) {
  obs::RequestTrace trace(traces_.get(), "group_explain");
  obs::ScopedLatency latency(registry_.get(), explain_latency_us_);
  const std::vector<size_t> order = RouteOrder();
  if (order.empty()) {
    errors_->Increment();
    trace.set_outcome(obs::TraceOutcome::kBroke);
    trace.set_detail("no routable backend");
    return Status::Unavailable("serving group: no routable backend");
  }
  // The fence: the freshest view the preferred backend promised at entry.
  // No secondary answer may serve non-degraded from behind it.
  const uint64_t fence_seq = BackendSeq(order[0]);

  const bool can_hedge = options_.hedge && hedge_pool_ != nullptr &&
                         policy() != RoutePolicy::kLeaderOnly &&
                         order.size() > 1;
  if (!can_hedge) {
    // Synchronous sequential failover down the route order.
    Status last = Status::Unavailable("serving group: all breakers open");
    for (size_t pos = 0; pos < order.size(); ++pos) {
      const size_t index = order[pos];
      if (!AdmitBackend(index)) {
        if (pos + 1 < order.size()) failovers_->Increment();
        continue;
      }
      Attempt attempt = CallBackend(index, x, y, deadline);
      if (attempt.result.ok() ||
          attempt.result.status().code() == StatusCode::kInvalidArgument) {
        ApplyFence(&attempt, fence_seq, /*hedged=*/pos > 0);
        return FinishExplain(trace, std::move(attempt), /*hedged=*/false,
                             /*hedge_won=*/false);
      }
      last = attempt.result.status();
      if (pos + 1 < order.size()) failovers_->Increment();
    }
    errors_->Increment();
    trace.set_outcome(obs::TraceOutcome::kError);
    trace.set_detail(last.ToString());
    return last;
  }

  auto state = std::make_shared<HedgeState>();
  auto submit = [&](int slot, size_t index) {
    hedge_pool_->Submit([this, state, slot, index, x, y, deadline] {
      Attempt attempt = CallBackend(index, x, y, deadline);
      std::lock_guard<std::mutex> lock(state->mu);
      state->attempts[slot] = std::move(attempt);
      ++state->completed;
      state->cv.notify_all();
    });
  };

  size_t primary_pos = 0;
  while (primary_pos < order.size() && !AdmitBackend(order[primary_pos])) {
    failovers_->Increment();
    ++primary_pos;
  }
  if (primary_pos == order.size()) {
    errors_->Increment();
    trace.set_outcome(obs::TraceOutcome::kBroke);
    trace.set_detail("all breakers open");
    return Status::Unavailable("serving group: all breakers open");
  }
  const size_t primary = order[primary_pos];
  const bool primary_is_preferred = primary_pos == 0;
  submit(0, primary);

  // Give the primary its head start.
  const std::chrono::milliseconds delay = HedgeDelay(primary, deadline);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait_for(lock, delay,
                       [&] { return state->attempts[0].done; });
  }

  bool primary_done = false;
  bool primary_acceptable = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    Attempt& attempt = state->attempts[0];
    primary_done = attempt.done;
    if (primary_done && attempt.result.ok()) {
      ApplyFence(&attempt, fence_seq, /*hedged=*/!primary_is_preferred);
      primary_acceptable = !attempt.result.value().degraded;
    }
  }
  if (primary_done && primary_acceptable) {
    Attempt chosen;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      chosen = state->attempts[0];
    }
    return FinishExplain(trace, std::move(chosen), /*hedged=*/false,
                         /*hedge_won=*/false);
  }

  // The primary is slow (hedge) or already failed/degraded (failover):
  // fire the same request at the next admissible backend.
  bool hedge_submitted = false;
  bool fired_as_hedge = false;
  for (size_t pos = primary_pos + 1; pos < order.size(); ++pos) {
    if (!AdmitBackend(order[pos])) {
      failovers_->Increment();
      continue;
    }
    hedge_submitted = true;
    fired_as_hedge = !primary_done;
    if (fired_as_hedge) {
      hedges_->Increment();
    } else {
      failovers_->Increment();
    }
    submit(1, order[pos]);
    break;
  }

  // Wait for an acceptable answer, or for every submitted attempt.
  const int expected = hedge_submitted ? 2 : 1;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      if (state->completed >= expected) return true;
      if (hedge_submitted && state->attempts[1].done) {
        Attempt& hedge = state->attempts[1];
        if (hedge.result.ok()) {
          ApplyFence(&hedge, fence_seq, /*hedged=*/true);
          if (!hedge.result.value().degraded) return true;
        }
      }
      if (state->attempts[0].done) {
        Attempt& first = state->attempts[0];
        if (first.result.ok()) {
          ApplyFence(&first, fence_seq, /*hedged=*/!primary_is_preferred);
          if (!first.result.value().degraded) return true;
        }
      }
      return false;
    });
  }

  Attempt chosen;
  bool secondary_won = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    // Fences may not have been applied yet on the path where completion
    // (not acceptability) ended the wait.
    if (state->attempts[0].done) {
      ApplyFence(&state->attempts[0], fence_seq,
                 /*hedged=*/!primary_is_preferred);
    }
    if (hedge_submitted && state->attempts[1].done) {
      ApplyFence(&state->attempts[1], fence_seq, /*hedged=*/true);
    }
    auto quality = [](const Attempt& attempt) {
      if (!attempt.done) return 0;           // still in flight — unusable
      if (!attempt.result.ok()) return 1;    // error, last resort
      return attempt.result.value().degraded ? 2 : 3;
    };
    const int primary_quality = quality(state->attempts[0]);
    const int hedge_quality =
        hedge_submitted ? quality(state->attempts[1]) : 0;
    if (hedge_quality > primary_quality) {
      chosen = state->attempts[1];
      secondary_won = true;
    } else {
      chosen = state->attempts[0];
    }
  }
  return FinishExplain(trace, std::move(chosen),
                       /*hedged=*/secondary_won,
                       /*hedge_won=*/secondary_won && fired_as_hedge);
}

std::vector<Result<ServingGroup::ExplainResult>> ServingGroup::ExplainBatch(
    const std::vector<BatchQuery>& items) {
  std::vector<Result<ExplainResult>> results(
      items.size(), Result<ExplainResult>(Status::Unavailable(
                        "serving group: no routable backend")));
  if (items.empty()) return results;
  obs::RequestTrace trace(traces_.get(), "group_explain_batch");
  obs::ScopedLatency latency(registry_.get(), explain_latency_us_);
  const std::vector<size_t> order = RouteOrder();
  if (order.empty()) {
    errors_->Add(items.size());
    trace.set_outcome(obs::TraceOutcome::kBroke);
    trace.set_detail("no routable backend");
    return results;
  }
  // Same fence as Explain(): the freshest view the preferred backend
  // promised at entry bounds every item in the batch.
  const uint64_t fence_seq = BackendSeq(order[0]);
  Status last = Status::Unavailable("serving group: all breakers open");
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const size_t index = order[pos];
    if (!AdmitBackend(index)) {
      if (pos + 1 < order.size()) failovers_->Increment();
      continue;
    }
    const uint64_t before = BackendSeq(index);
    const auto start = registry_->now();
    if (options_.explain_interceptor) options_.explain_interceptor(index);
    std::vector<Result<KeyResult>> keys;
    if (index == 0) {
      keys = leader_->ExplainBatch(items);
    } else {
      // Replicas expose no batch surface; the routing decision and the
      // serving view are still shared across the batch.
      keys.reserve(items.size());
      for (const BatchQuery& item : items) {
        keys.push_back(
            backends_[index].replica->Explain(item.x, item.y, item.deadline));
      }
    }
    const int64_t micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            registry_->now() - start)
            .count();
    const uint64_t after = BackendSeq(index);
    const uint64_t view_seq = std::min(before, after);
    // Breaker verdict for the whole dispatch: the backend failed only when
    // it served no item and at least one failure was the backend's fault
    // (client errors — kInvalidArgument — never are).
    bool any_ok = false;
    bool any_backend_error = false;
    Status first_backend_error = Status::Ok();
    for (const Result<KeyResult>& key : keys) {
      if (key.ok()) {
        any_ok = true;
      } else if (key.status().code() != StatusCode::kInvalidArgument) {
        if (!any_backend_error) first_backend_error = key.status();
        any_backend_error = true;
      }
    }
    const bool backend_failed = !any_ok && any_backend_error;
    RecordOutcome(index,
                  backend_failed ? first_backend_error : Status::Ok(),
                  micros);
    if (backend_failed) {
      last = first_backend_error;
      if (pos + 1 < order.size()) failovers_->Increment();
      continue;
    }
    bool any_error = false;
    bool any_degraded = false;
    for (size_t i = 0; i < items.size(); ++i) {
      Attempt attempt;
      attempt.backend = index;
      attempt.view_seq = view_seq;
      attempt.result = std::move(keys[i]);
      attempt.done = true;
      if (!attempt.result.ok()) {
        errors_->Increment();
        any_error = true;
        results[i] = attempt.result.status();
        continue;
      }
      ApplyFence(&attempt, fence_seq, /*hedged=*/pos > 0);
      ExplainResult out;
      out.key = std::move(attempt.result.value());
      out.backend = index;
      out.view_seq = view_seq;
      out.hedged = false;
      if (out.key.degraded) {
        degraded_serves_->Increment();
        any_degraded = true;
      } else {
        uint64_t floor = served_floor_.load(std::memory_order_relaxed);
        while (floor < view_seq &&
               !served_floor_.compare_exchange_weak(
                   floor, view_seq, std::memory_order_relaxed)) {
        }
      }
      results[i] = std::move(out);
    }
    trace.set_outcome(any_error      ? obs::TraceOutcome::kError
                      : any_degraded ? obs::TraceOutcome::kDegraded
                                     : obs::TraceOutcome::kServedFull);
    return results;
  }
  errors_->Add(items.size());
  trace.set_outcome(obs::TraceOutcome::kError);
  trace.set_detail(last.ToString());
  for (Result<ExplainResult>& result : results) result = last;
  return results;
}

Result<Label> ServingGroup::Predict(const Instance& x,
                                    const Deadline& deadline) {
  return leader_->Predict(x, deadline);
}

Status ServingGroup::Record(const Instance& x, Label y) {
  return leader_->Record(x, y);
}

Result<std::vector<RelativeCounterfactual>> ServingGroup::Counterfactuals(
    const Instance& x, Label y) {
  const std::vector<size_t> order = RouteOrder();
  if (order.empty()) {
    return Status::Unavailable("serving group: no routable backend");
  }
  Status last = Status::Unavailable("serving group: no backend answered");
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const size_t index = order[pos];
    auto result = index == 0
                      ? leader_->Counterfactuals(x, y)
                      : backends_[index].replica->Counterfactuals(x, y);
    if (result.ok() ||
        result.status().code() == StatusCode::kInvalidArgument) {
      return result;
    }
    last = result.status();
    if (pos + 1 < order.size()) failovers_->Increment();
  }
  return last;
}

void ServingGroup::RefreshProbes() {
  const size_t n = backends_.size();
  std::vector<bool> degraded(n, false);
  std::vector<uint64_t> published(n, 0);
  // Probe every backend outside mu_ — Health() takes backend-side locks.
  const HealthSnapshot leader_health = leader_->Health();
  degraded[0] = leader_health.degraded_context;
  published[0] = leader_->PublishedSequence();
  for (size_t i = 1; i < n; ++i) {
    const ReplicaProxy::Health health = backends_[i].replica->GetHealth();
    degraded[i] = health.degraded;
    published[i] = health.view_published;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < n; ++i) {
    Backend& backend = backends_[i];
    backend.degraded = degraded[i];
    backend.published = published[i];
    const uint64_t lag =
        published[0] > backend.published ? published[0] - backend.published : 0;
    const bool healthy =
        !backend.evicted && !backend.degraded &&
        backend.breaker->state() == CircuitBreaker::State::kClosed &&
        lag <= options_.freshness_slack_seq;
    backend.healthy_gauge->Set(healthy ? 1 : 0);
    backend.evicted_gauge->Set(backend.evicted ? 1 : 0);
  }
}

ServingGroup::GroupHealth ServingGroup::Health() {
  RefreshProbes();
  GroupHealth health;
  std::lock_guard<std::mutex> lock(mu_);
  health.policy = policy_;
  const uint64_t leader_published = backends_[0].published;
  bool fully = true;
  for (size_t i = 0; i < backends_.size(); ++i) {
    const Backend& backend = backends_[i];
    BackendHealth entry;
    entry.index = i;
    entry.is_leader = i == 0;
    entry.evicted = backend.evicted;
    entry.degraded = backend.degraded;
    entry.published_seq = backend.published;
    entry.lag_seq = leader_published > backend.published
                        ? leader_published - backend.published
                        : 0;
    entry.breaker = backend.breaker->state();
    entry.p95_us = P95Locked(backend);
    entry.healthy = !entry.evicted && !entry.degraded &&
                    entry.breaker == CircuitBreaker::State::kClosed &&
                    entry.lag_seq <= options_.freshness_slack_seq;
    fully = fully && entry.healthy;
    health.explains += backend.explains->Value();
    health.backends.push_back(std::move(entry));
  }
  health.hedges = hedges_->Value();
  health.hedge_wins = hedge_wins_->Value();
  health.failovers = failovers_->Value();
  health.stale_hedge_rejects = stale_hedge_rejects_->Value();
  health.degraded_serves = degraded_serves_->Value();
  health.errors = errors_->Value();
  health.fully_healthy = fully;
  return health;
}

void ServingGroup::EvictBackend(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= backends_.size()) return;
  backends_[index].evicted = true;
  backends_[index].evicted_gauge->Set(1);
}

void ServingGroup::ReadmitBackend(size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= backends_.size()) return;
  backends_[index].evicted = false;
  backends_[index].evicted_gauge->Set(0);
}

void ServingGroup::set_policy(RoutePolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  policy_ = policy;
}

RoutePolicy ServingGroup::policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return policy_;
}

}  // namespace cce::serving
