#ifndef CCE_SERVING_SERVING_GROUP_H_
#define CCE_SERVING_SERVING_GROUP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/counterfactual.h"
#include "core/key_result.h"
#include "core/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/proxy.h"
#include "serving/replica_proxy.h"
#include "serving/resilience.h"

namespace cce::serving {

/// How the group orders read backends (Explain / Counterfactuals). Writes
/// (Predict / Record) always go to the leader — replicas are read-only.
enum class RoutePolicy {
  /// Reads go to the leader only; replicas are never consulted and
  /// hedging is off. The availability of the group is the availability
  /// of the leader (the pre-group behaviour, and the bench baseline).
  kLeaderOnly = 0,
  /// Reads prefer the freshest non-degraded view: the leader first, then
  /// replicas by published sequence descending. A replica within
  /// `freshness_slack_seq` of the leader ties and the faster one (p95)
  /// wins. This is the default: leader answers unless it is sick.
  kPreferFresh = 1,
  /// Reads prefer whoever answers fastest among the healthy backends
  /// (p95 ascending, degraded views last), accepting bounded staleness.
  kPreferAvailable = 2,
};

const char* RoutePolicyName(RoutePolicy policy);

/// A self-healing serving group: one leader ExplainableProxy and N
/// ReplicaProxy followers behind the proxy's Predict/Record/Explain/
/// Counterfactuals surface. The group routes reads by backend health
/// (Health() probes + a per-backend CircuitBreaker), fails over when the
/// preferred backend is broken, and *hedges* slow Explains: when the
/// preferred backend has not answered within a per-backend p95-tracked
/// delay, the same request is fired at the next-healthiest backend and the
/// first acceptable answer wins.
///
/// The bit-identical-keys contract survives hedging by watermark fencing
/// on PublishedSequence(): every answer reports the published sequence of
/// the view it was computed from (`ExplainResult::view_seq`, a lower bound
/// sampled around the backend call), and
///
///   - a hedge answer whose view is staler than the primary's view at
///     request entry is never returned as non-degraded (it may still serve,
///     demoted to degraded, when the primary fails outright);
///   - non-degraded answers are monotonic in view_seq across the whole
///     group (a served watermark floor), so a client can never observe a
///     non-degraded key regress to an older context.
///
/// Within those fences a served key is exactly the leader's key at the
/// reported sequence — leader and replicas share serving/read_path.h, which
/// is what SUITE=ha asserts under dual fault injection.
///
/// The group takes no repair actions itself; pair it with a Supervisor
/// (serving/supervisor.h) to close the detect-to-repair loop, or drive
/// EvictBackend/ReadmitBackend from a runbook.
///
/// Thread safety: all public methods may be called concurrently. Breakers,
/// probes and latency rings are guarded by one group mutex; backend calls
/// run outside it. Backends are not owned and must outlive the group
/// (the destructor drains in-flight hedges first).
class ServingGroup {
 public:
  struct Options {
    RoutePolicy policy = RoutePolicy::kPreferFresh;

    /// Hedged Explains (ignored under kLeaderOnly). A hedge fires when
    /// the primary backend has not answered within
    ///   clamp(p95(primary) * hedge_p95_factor,
    ///         hedge_min_delay, hedge_max_delay)
    /// further capped at `hedge_deadline_fraction` of the remaining
    /// deadline when one is set.
    bool hedge = true;
    double hedge_p95_factor = 2.0;
    std::chrono::milliseconds hedge_min_delay{1};
    std::chrono::milliseconds hedge_max_delay{50};
    double hedge_deadline_fraction = 0.5;
    /// Worker threads executing hedged attempts; at least 2 so a stuck
    /// primary cannot starve its own hedge.
    size_t hedge_threads = 2;
    /// Explain latency samples kept per backend for the p95 estimate.
    size_t latency_window = 64;

    /// A replica this many sequences behind the leader still ranks as
    /// "fresh" under kPreferFresh, and still counts as healthy for
    /// GroupHealth::fully_healthy.
    uint64_t freshness_slack_seq = 0;

    /// Per-backend circuit breaker configuration (one breaker per
    /// backend; an Explain failure on a backend counts against it, client
    /// errors — kInvalidArgument — do not).
    CircuitBreaker::Options breaker;
    /// Clock for breaker cooldowns; null = steady_clock (tests inject
    /// manual time).
    CircuitBreaker::ClockFn clock;

    /// Metric sink; null means a private registry.
    std::shared_ptr<obs::Registry> registry;
    /// Group-level trace ring capacity (routing decisions + supervisor
    /// actions); 0 disables tracing.
    size_t trace_capacity = 64;

    /// Test/bench hook: invoked (outside the group mutex) right before
    /// each backend Explain, with the backend index. bench_ha uses this
    /// to replay a FaultInjectingModel latency-spike schedule onto the
    /// leader's read path; null in production.
    std::function<void(size_t backend)> explain_interceptor;
  };

  /// One served Explain, with its provenance.
  struct ExplainResult {
    KeyResult key;
    /// Backend that produced the answer: 0 = leader, 1 + r = replica r.
    size_t backend = 0;
    /// Published sequence of the serving view (lower bound sampled around
    /// the backend call) — the fence the key is exact at.
    uint64_t view_seq = 0;
    /// True when the answer came from a hedge request, not the primary.
    bool hedged = false;
  };

  struct BackendHealth {
    size_t index = 0;
    bool is_leader = false;
    bool evicted = false;
    /// Routable and serving a non-degraded view within the lag slack.
    bool healthy = false;
    /// Last probe saw a degraded view (quarantined shards / tails, or a
    /// failing manifest).
    bool degraded = false;
    uint64_t published_seq = 0;
    /// Sequences behind the leader's published sequence.
    uint64_t lag_seq = 0;
    CircuitBreaker::State breaker = CircuitBreaker::State::kClosed;
    /// Rolling p95 of this backend's Explain latency, microseconds
    /// (0 until a sample exists).
    int64_t p95_us = 0;
  };

  struct GroupHealth {
    RoutePolicy policy = RoutePolicy::kPreferFresh;
    std::vector<BackendHealth> backends;
    uint64_t explains = 0;
    uint64_t hedges = 0;
    uint64_t hedge_wins = 0;
    uint64_t failovers = 0;
    uint64_t stale_hedge_rejects = 0;
    uint64_t degraded_serves = 0;
    uint64_t errors = 0;
    /// True when every backend is routed (not evicted), its breaker is
    /// closed, its view is non-degraded and within the freshness slack —
    /// the SUITE=ha convergence target.
    bool fully_healthy = false;
  };

  /// `leader` must be non-null; backends are not owned and must outlive
  /// the group. Replicas may be empty (a leader-only group still adds
  /// breaker fail-fast + group metrics).
  static Result<std::unique_ptr<ServingGroup>> Create(
      ExplainableProxy* leader, std::vector<ReplicaProxy*> replicas,
      const Options& options);

  ~ServingGroup();
  ServingGroup(const ServingGroup&) = delete;
  ServingGroup& operator=(const ServingGroup&) = delete;

  /// Writes go to the leader (replicas are read-only followers).
  Result<Label> Predict(const Instance& x, const Deadline& deadline = {});
  Status Record(const Instance& x, Label y);

  /// Routed, breaker-guarded, optionally hedged Explain. kUnavailable
  /// when no backend is routable (all evicted or broken).
  Result<ExplainResult> Explain(const Instance& x, Label y,
                                const Deadline& deadline = {});

  /// Routed batch Explain: one routing decision and one backend dispatch
  /// answers every item. On the leader the items run as a shared-build
  /// ExplainableProxy::ExplainBatch (one fused bitmap build); on a replica
  /// they run item-by-item against a single routed view. Never hedged.
  /// Results are positional — result i answers items[i] — and item
  /// failures are individual: per-item deadlines and degradation flags are
  /// honored one by one, and the batch fails over to the next backend only
  /// when the current one served *no* item. Watermark fencing applies to
  /// every item exactly as in Explain().
  std::vector<Result<ExplainResult>> ExplainBatch(
      const std::vector<BatchQuery>& items);

  /// Routed with sequential failover (never hedged — witnesses are
  /// cheap relative to key searches).
  Result<std::vector<RelativeCounterfactual>> Counterfactuals(
      const Instance& x, Label y);

  /// Re-reads every backend's Health()/GetHealth() into the routing
  /// probes (including the leader's PublishedSequence). Called by the
  /// Supervisor each tick and by Health(); call it manually when running
  /// without a supervisor and routing on freshness.
  void RefreshProbes();

  GroupHealth Health();

  /// Removes / restores a backend from the read routing set. An evicted
  /// backend keeps draining (its proxy object still serves whoever holds
  /// a direct pointer) and keeps being probed, it just receives no routed
  /// traffic. Evicting the leader only stops *reads*; writes have nowhere
  /// else to go. Out-of-range indices are ignored.
  void EvictBackend(size_t index);
  void ReadmitBackend(size_t index);

  void set_policy(RoutePolicy policy);
  RoutePolicy policy() const;

  size_t num_backends() const { return backends_.size(); }
  ExplainableProxy* leader() const { return leader_; }
  size_t num_replicas() const { return backends_.size() - 1; }
  ReplicaProxy* replica(size_t r) const { return backends_[1 + r].replica; }

  obs::Registry& registry() const { return *registry_; }
  /// Group trace ring (shared with the Supervisor); null when
  /// trace_capacity = 0.
  obs::TraceRing* trace_ring() const { return traces_.get(); }

 private:
  struct Backend {
    ReplicaProxy* replica = nullptr;  // null for the leader (index 0)
    std::unique_ptr<CircuitBreaker> breaker;
    bool evicted = false;
    // Cached probe (RefreshProbes).
    bool degraded = false;
    uint64_t published = 0;
    // Rolling Explain latency ring for the p95 estimate.
    std::vector<int64_t> latencies_us;
    size_t latency_next = 0;
    size_t latency_count = 0;
    obs::Counter* explains = nullptr;
    obs::Gauge* healthy_gauge = nullptr;
    obs::Gauge* evicted_gauge = nullptr;
    obs::Gauge* p95_gauge = nullptr;
  };

  /// One backend call's outcome, as the hedging machinery sees it.
  struct Attempt {
    Result<KeyResult> result = Status::Unavailable("not attempted");
    uint64_t view_seq = 0;
    size_t backend = 0;
    bool done = false;
  };
  struct HedgeState;

  ServingGroup(ExplainableProxy* leader, std::vector<ReplicaProxy*> replicas,
               const Options& options);
  void InitInstruments();

  /// Published-sequence lower bound for a backend right now (leader:
  /// PublishedSequence barrier — cheap at sane shard counts; replica:
  /// its view watermark).
  uint64_t BackendSeq(size_t index) const;

  /// Preference-ordered routable backends under the current policy; the
  /// caller dispatches through AdmitBackend. Takes mu_.
  std::vector<size_t> RouteOrder();

  /// Breaker admission for an actual dispatch (under mu_ internally);
  /// false counts a failover.
  bool AdmitBackend(size_t index);

  /// Runs one backend Explain and records latency + breaker outcome.
  Attempt CallBackend(size_t index, const Instance& x, Label y,
                      const Deadline& deadline);

  void RecordOutcome(size_t index, const Status& status, int64_t micros);
  int64_t P95Locked(const Backend& backend) const;
  std::chrono::milliseconds HedgeDelay(size_t primary,
                                       const Deadline& deadline);

  /// Applies the watermark fences to a candidate answer: demotes a
  /// non-degraded answer to degraded (counting the reject) when its view
  /// is behind `fence_seq` or behind the group's served floor.
  void ApplyFence(Attempt* attempt, uint64_t fence_seq, bool hedged);

  /// Finalises a served answer: served-floor advance, metrics, trace.
  Result<ExplainResult> FinishExplain(obs::RequestTrace& trace,
                                      Attempt attempt, bool hedged,
                                      bool hedge_won);

  ExplainableProxy* leader_;
  Options options_;
  std::vector<Backend> backends_;  // [0] = leader, [1 + r] = replica r

  /// Guards backends_ (breakers, probes, latency rings) and policy_.
  mutable std::mutex mu_;
  RoutePolicy policy_;

  /// Highest view_seq ever returned non-degraded (monotonic-reads floor).
  std::atomic<uint64_t> served_floor_{0};

  std::shared_ptr<obs::Registry> registry_;
  std::unique_ptr<obs::TraceRing> traces_;
  /// Executes hedged attempts; declared after the members tasks touch and
  /// reset first in the destructor so in-flight hedges drain before
  /// anything they reference dies.
  std::unique_ptr<ThreadPool> hedge_pool_;

  obs::Counter* hedges_ = nullptr;
  obs::Counter* hedge_wins_ = nullptr;
  obs::Counter* failovers_ = nullptr;
  obs::Counter* stale_hedge_rejects_ = nullptr;
  obs::Counter* degraded_serves_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Histogram* explain_latency_us_ = nullptr;
};

}  // namespace cce::serving

#endif  // CCE_SERVING_SERVING_GROUP_H_
