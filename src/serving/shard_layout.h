#ifndef CCE_SERVING_SHARD_LAYOUT_H_
#define CCE_SERVING_SHARD_LAYOUT_H_

#include <cstdlib>
#include <string>

namespace cce::serving {

/// On-disk naming of a durability directory's shard files, shared by the
/// proxy (which writes them), the log shipper (which reads them for
/// replication) and the orphan-adoption sweep.

/// Name of shard `i`'s file with extension `ext` ("wal" / "snapshot").
/// Shard 0 keeps the pre-sharding names ("context.wal" /
/// "context.snapshot") so existing single-shard directories recover
/// without migration.
inline std::string ShardFileName(size_t shard, const char* ext) {
  if (shard == 0) return std::string("context.") + ext;
  return "context." + std::to_string(shard) + "." + ext;
}

/// Parses "context.<i>.wal" names; false for shard 0's "context.wal" and
/// for anything else.
inline bool ParseShardWalName(const std::string& name, size_t* shard) {
  constexpr char kPrefix[] = "context.";
  constexpr char kSuffix[] = ".wal";
  if (name.size() <= sizeof(kPrefix) - 1 + sizeof(kSuffix) - 1) return false;
  if (name.rfind(kPrefix, 0) != 0) return false;
  if (name.compare(name.size() - 4, 4, kSuffix) != 0) return false;
  const std::string digits =
      name.substr(sizeof(kPrefix) - 1,
                  name.size() - (sizeof(kPrefix) - 1) - 4);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *shard = static_cast<size_t>(std::strtoull(digits.c_str(), nullptr, 10));
  return true;
}

/// Name of shard `i`'s shipped file in a replication ship directory
/// ("shard.<i>.wal" / "shard.<i>.snapshot"). Deliberately distinct from
/// the durability-dir names so a ship dir can never be mistaken for (or
/// recovered as) a proxy directory.
inline std::string ShippedShardFileName(size_t shard, const char* ext) {
  return "shard." + std::to_string(shard) + "." + ext;
}

/// The ship directory's manifest file (io::ShipManifest).
inline constexpr char kShipManifestName[] = "MANIFEST";

}  // namespace cce::serving

#endif  // CCE_SERVING_SHARD_LAYOUT_H_
