#include "serving/supervisor.h"

#include <string>
#include <utility>

namespace cce::serving {

namespace {

constexpr const char* kFaults[] = {"quarantined_shard", "poisoned_wal",
                                   "tail_quarantine", "replica_lag",
                                   "manifest"};
constexpr char kObservationsHelp[] =
    "Fault observations by the supervisor, counted once per supervision "
    "cycle the fault is present.";

}  // namespace

const char* Supervisor::LevelName(Level level) {
  switch (level) {
    case Level::kHealthy:
      return "healthy";
    case Level::kObserving:
      return "observing";
    case Level::kRepairing:
      return "repairing";
    case Level::kEvicted:
      return "evicted";
    case Level::kParked:
      return "parked";
  }
  return "unknown";
}

Supervisor::Supervisor(ServingGroup* group)
    : Supervisor(group, Options()) {}

Supervisor::Supervisor(ServingGroup* group, const Options& options)
    : group_(group),
      options_(options),
      clock_(options.clock != nullptr
                 ? options.clock
                 : [] { return std::chrono::steady_clock::now(); }),
      bucket_(options.action_rate, clock_),
      rng_(options.backoff_seed) {
  const size_t shards = group_->leader()->num_shards();
  for (size_t i = 0; i < shards; ++i) {
    domains_.emplace_back("leader_shard_" + std::to_string(i),
                          /*is_replica=*/false, /*backend=*/0, /*shard=*/i,
                          options_.repair_backoff);
  }
  for (size_t r = 0; r < group_->num_replicas(); ++r) {
    domains_.emplace_back("replica_" + std::to_string(r),
                          /*is_replica=*/true, /*backend=*/1 + r, /*shard=*/0,
                          options_.repair_backoff);
  }
  InitInstruments();
}

Supervisor::~Supervisor() { Stop(); }

void Supervisor::InitInstruments() {
  obs::Registry& reg = group_->registry();
  cycles_ = reg.GetCounter("cce_supervisor_cycles_total",
                           "Supervision cycles executed.");
  repair_shards_ =
      reg.GetCounter("cce_supervisor_repair_shards_total",
                     "Automatic RepairShard() calls issued by the supervisor "
                     "(includes benign no-ops on already-healthy shards).");
  force_resyncs_ =
      reg.GetCounter("cce_supervisor_force_resyncs_total",
                     "Automatic ForceResync() calls issued by the supervisor.");
  evictions_ = reg.GetCounter(
      "cce_supervisor_evictions_total",
      "Backends evicted from the routing set by the supervisor.");
  readmissions_ = reg.GetCounter(
      "cce_supervisor_readmissions_total",
      "Evicted backends readmitted to routing after probing healthy.");
  rate_limited_ = reg.GetCounter(
      "cce_supervisor_rate_limited_total",
      "Repair actions deferred by the shared action-rate token bucket.");
  backoff_holds_ = reg.GetCounter(
      "cce_supervisor_backoff_holds_total",
      "Repair actions deferred by a domain's jittered backoff gate.");
  give_ups_ = reg.GetCounter(
      "cce_supervisor_give_ups_total",
      "Domains parked degraded after exhausting their repair attempts.");
  for (const char* fault : kFaults) {
    reg.GetCounter("cce_supervisor_observations_total", kObservationsHelp,
                   {{"fault", fault}});
  }
  for (Domain& domain : domains_) {
    domain.level_gauge =
        reg.GetGauge("cce_supervisor_ladder_level",
                     "Escalation-ladder rung per fault domain (0 healthy, 1 "
                     "observing, 2 repairing, 3 evicted, 4 parked).",
                     {{"domain", domain.name}});
  }
}

void Supervisor::Start() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  thread_ = std::thread([this] {
    while (true) {
      {
        std::unique_lock<std::mutex> wait_lock(stop_mu_);
        if (stop_cv_.wait_for(wait_lock, options_.poll_interval,
                              [this] { return stopping_; })) {
          return;
        }
      }
      TickOnce();
    }
  });
}

void Supervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(stop_mu_);
  started_ = false;
}

void Supervisor::SetLevelLocked(Domain& domain, Level level) {
  domain.level = level;
  domain.level_gauge->Set(static_cast<int64_t>(level));
}

void Supervisor::TraceAction(const char* action, const Domain& domain,
                             const Status& status) {
  obs::RequestTrace trace(group_->trace_ring(), "supervisor");
  trace.set_outcome(status.ok() ? obs::TraceOutcome::kRetried
                                : obs::TraceOutcome::kError);
  std::string detail = std::string(action) + " " + domain.name;
  if (!status.ok()) detail += ": " + status.ToString();
  trace.set_detail(std::move(detail));
}

Status Supervisor::ActLocked(Domain& domain) {
  if (domain.is_replica) {
    force_resyncs_->Increment();
    Status status = group_->replica(domain.backend - 1)->ForceResync();
    TraceAction("force_resync", domain, status);
    return status;
  }
  repair_shards_->Increment();
  Status status = group_->leader()->RepairShard(domain.shard);
  if (status.code() == StatusCode::kFailedPrecondition) {
    // The shard healed between probe and action — a benign no-op.
    status = Status::Ok();
  }
  TraceAction("repair_shard", domain, status);
  return status;
}

void Supervisor::AdvanceLocked(Domain& domain, bool faulty, const char* fault,
                               bool actionable,
                               std::chrono::steady_clock::time_point now) {
  if (!faulty) {
    if (domain.is_replica && (domain.level == Level::kEvicted ||
                              (domain.level == Level::kParked))) {
      group_->ReadmitBackend(domain.backend);
      readmissions_->Increment();
      TraceAction("readmit", domain, Status::Ok());
    }
    domain.streak = 0;
    domain.attempts = 0;
    domain.park_remaining = 0;
    domain.last_fault.clear();
    domain.backoff.Reset();
    domain.next_action = {};
    SetLevelLocked(domain, Level::kHealthy);
    return;
  }
  ++domain.streak;
  domain.last_fault = fault;
  switch (domain.level) {
    case Level::kHealthy:
      SetLevelLocked(domain, Level::kObserving);
      break;
    case Level::kObserving:
      if (actionable && domain.streak >= options_.observe_threshold) {
        SetLevelLocked(domain, Level::kRepairing);
      }
      break;
    case Level::kRepairing:
    case Level::kEvicted: {
      if (!actionable) break;
      if (now < domain.next_action) {
        backoff_holds_->Increment();
        break;
      }
      if (!bucket_.TryAcquire()) {
        rate_limited_->Increment();
        break;
      }
      (void)ActLocked(domain);
      ++domain.attempts;
      domain.next_action = now + domain.backoff.NextBackoff(&rng_);
      if (domain.attempts >= options_.repair_attempts) {
        if (domain.level == Level::kRepairing && domain.is_replica) {
          group_->EvictBackend(domain.backend);
          evictions_->Increment();
          TraceAction("evict", domain, Status::Ok());
          domain.attempts = 0;
          domain.backoff.Reset();
          domain.next_action = {};
          SetLevelLocked(domain, Level::kEvicted);
        } else {
          give_ups_->Increment();
          domain.park_remaining = options_.park_ticks;
          TraceAction("park", domain, Status::Ok());
          SetLevelLocked(domain, Level::kParked);
        }
      }
      break;
    }
    case Level::kParked:
      if (--domain.park_remaining <= 0) {
        domain.attempts = 0;
        domain.backoff.Reset();
        domain.next_action = {};
        // A parked replica is still evicted — it re-enters the ladder at
        // the evicted rung; a leader shard goes back to repairing.
        SetLevelLocked(domain, domain.is_replica ? Level::kEvicted
                                                 : Level::kRepairing);
      }
      break;
  }
}

void Supervisor::TickOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  cycles_->Increment();
  group_->RefreshProbes();
  const std::chrono::steady_clock::time_point now = clock_();
  obs::Registry& reg = group_->registry();
  auto observe = [&reg](const char* fault) {
    reg.GetCounter("cce_supervisor_observations_total", kObservationsHelp,
                   {{"fault", fault}})
        ->Increment();
  };

  const HealthSnapshot leader_health = group_->leader()->Health();
  const uint64_t leader_published = group_->leader()->PublishedSequence();
  for (Domain& domain : domains_) {
    if (!domain.is_replica) {
      if (domain.shard >= leader_health.shards.size()) continue;
      const HealthSnapshot::ShardHealth& shard =
          leader_health.shards[domain.shard];
      if (shard.state == ContextShard::State::kQuarantined) {
        observe("quarantined_shard");
        AdvanceLocked(domain, true, "quarantined_shard", /*actionable=*/true,
                      now);
      } else if (shard.wal_poisoned) {
        // Heals itself at the next compaction; repairing would be wrong.
        observe("poisoned_wal");
        AdvanceLocked(domain, true, "poisoned_wal", /*actionable=*/false,
                      now);
      } else {
        AdvanceLocked(domain, false, "", false, now);
      }
      continue;
    }
    const ReplicaProxy::Health health =
        group_->replica(domain.backend - 1)->GetHealth();
    bool tail_quarantined = false;
    for (const ReplicaProxy::Health::Tail& tail : health.tails) {
      tail_quarantined = tail_quarantined || tail.quarantined;
    }
    const uint64_t lag = leader_published > health.view_published
                             ? leader_published - health.view_published
                             : 0;
    if (tail_quarantined) {
      observe("tail_quarantine");
      AdvanceLocked(domain, true, "tail_quarantine", /*actionable=*/true,
                    now);
    } else if (!health.manifest_ok) {
      observe("manifest");
      AdvanceLocked(domain, true, "manifest", /*actionable=*/true, now);
    } else if (lag > options_.lag_budget_seq) {
      observe("replica_lag");
      AdvanceLocked(domain, true, "replica_lag", /*actionable=*/true, now);
    } else {
      AdvanceLocked(domain, false, "", false, now);
    }
  }
}

std::vector<Supervisor::DomainStatus> Supervisor::Domains() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DomainStatus> statuses;
  statuses.reserve(domains_.size());
  for (const Domain& domain : domains_) {
    DomainStatus status;
    status.name = domain.name;
    status.is_replica = domain.is_replica;
    status.backend = domain.backend;
    status.level = domain.level;
    status.unhealthy_streak = domain.streak;
    status.attempts = domain.attempts;
    status.last_fault = domain.last_fault;
    statuses.push_back(std::move(status));
  }
  return statuses;
}

}  // namespace cce::serving
