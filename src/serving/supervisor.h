#ifndef CCE_SERVING_SUPERVISOR_H_
#define CCE_SERVING_SUPERVISOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/token_bucket.h"
#include "obs/metrics.h"
#include "serving/resilience.h"
#include "serving/serving_group.h"

namespace cce::serving {

/// Closes the self-healing loop over a ServingGroup: a background thread
/// that watches every fault domain (each leader context shard, each
/// replica) and walks an escalation ladder from observation to automatic
/// repair, so quarantines heal without a pager.
///
/// The ladder, per domain:
///
///   healthy    — nothing to do; an evicted replica that probes healthy is
///                readmitted to routing and the domain fully resets.
///   observing  — a fault was seen; `observe_threshold` consecutive faulty
///                cycles are required before acting (debounce: a torn read
///                that self-heals next cycle never triggers a repair).
///   repairing  — the domain-appropriate repair fires with jittered
///                decorrelated backoff between attempts: RepairShard(shard)
///                for a quarantined leader shard, ForceResync() for a sick
///                replica. `repair_attempts` failed attempts escalate.
///   evicted    — (replicas only; the leader cannot leave the group) the
///                backend is evicted from routing but keeps draining and
///                keeps being resynced on the same backoff schedule.
///   parked     — repairs are exhausted; the domain holds degraded for
///                `park_ticks` cycles, then re-enters the repair rung.
///                Give-up is a cooldown, not a terminal state — when the
///                underlying fault clears (disk replaced, faults stop), the
///                group converges back to fully-healthy with no manual
///                call, which is what SUITE=ha asserts.
///
/// Every action is gated by one TokenBucket across all domains, so a
/// flapping disk cannot turn auto-repair into a repair storm. One fault is
/// observed but never "repaired": a poisoned leader WAL heals itself at the
/// next compaction, and RepairShard on a healthy shard would be wrong — the
/// domain holds at the observing rung until the poison clears.
///
/// Thread safety: Start/Stop/TickOnce/Domains may be called concurrently;
/// one mutex serialises ticks. TickOnce is public so tests (and the HA
/// torture harness) can drive supervision deterministically without the
/// thread.
class Supervisor {
 public:
  struct Options {
    /// Cadence of the background supervision loop started by Start().
    std::chrono::milliseconds poll_interval{100};
    /// Consecutive faulty cycles before the first repair attempt.
    int observe_threshold = 2;
    /// Repair attempts per ladder rung before escalating.
    int repair_attempts = 3;
    /// Cycles a parked domain holds degraded before retrying repairs.
    int park_ticks = 8;
    /// Replica staleness (sequences behind the leader) treated as a fault.
    uint64_t lag_budget_seq = 1024;
    /// Jittered backoff between repair attempts on one domain.
    RetryPolicy::Options repair_backoff = [] {
      RetryPolicy::Options options;
      options.max_attempts = 1 << 20;  // the ladder bounds attempts, not this
      options.initial_backoff = std::chrono::milliseconds(100);
      options.max_backoff = std::chrono::milliseconds(5000);
      return options;
    }();
    /// Seed for the backoff jitter (deterministic repair schedules).
    uint64_t backoff_seed = 42;
    /// Rate limit shared by every repair/evict action across domains.
    TokenBucket::Options action_rate = [] {
      TokenBucket::Options options;
      options.refill_per_sec = 5.0;
      options.burst = 10.0;
      return options;
    }();
    /// Clock for the token bucket and backoff gating; null = steady_clock.
    TokenBucket::ClockFn clock;
  };

  /// Escalation-ladder rung of one fault domain.
  enum class Level {
    kHealthy = 0,
    kObserving = 1,
    kRepairing = 2,
    kEvicted = 3,
    kParked = 4,
  };
  static const char* LevelName(Level level);

  struct DomainStatus {
    /// "leader_shard_<i>" or "replica_<r>".
    std::string name;
    bool is_replica = false;
    /// Group backend index the domain belongs to (0 for leader shards).
    size_t backend = 0;
    Level level = Level::kHealthy;
    /// Consecutive faulty cycles observed.
    int unhealthy_streak = 0;
    /// Repair attempts made on the current rung.
    int attempts = 0;
    /// Most recent fault: "quarantined_shard", "poisoned_wal",
    /// "tail_quarantine", "replica_lag", "manifest"; empty while healthy.
    std::string last_fault;
  };

  /// `group` is not owned and must outlive the supervisor. Metrics land in
  /// the group's registry; actions are traced into the group's trace ring.
  explicit Supervisor(ServingGroup* group);
  Supervisor(ServingGroup* group, const Options& options);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Starts/stops the background supervision thread (TickOnce every
  /// poll_interval). Start is idempotent; the destructor stops.
  void Start();
  void Stop();

  /// One synchronous supervision cycle: probe every domain, advance its
  /// ladder, take at most one gated action per domain. Serialised with the
  /// background thread.
  void TickOnce();

  std::vector<DomainStatus> Domains();

 private:
  struct Domain {
    Domain(std::string name_in, bool is_replica_in, size_t backend_in,
           size_t shard_in, const RetryPolicy::Options& backoff_options)
        : name(std::move(name_in)),
          is_replica(is_replica_in),
          backend(backend_in),
          shard(shard_in),
          backoff(backoff_options) {}

    std::string name;
    bool is_replica;
    size_t backend;
    /// Leader shard index (unused for replica domains).
    size_t shard;
    Level level = Level::kHealthy;
    int streak = 0;
    int attempts = 0;
    std::string last_fault;
    /// Earliest time the next repair may fire (backoff gate).
    std::chrono::steady_clock::time_point next_action{};
    RetryPolicy backoff;
    int park_remaining = 0;
    obs::Gauge* level_gauge = nullptr;
  };

  void InitInstruments();
  /// Advances one domain's ladder. `faulty` = the domain probed sick this
  /// cycle; `actionable` = a repair could plausibly help (false for
  /// observe-only faults). Under mu_.
  void AdvanceLocked(Domain& domain, bool faulty, const char* fault,
                     bool actionable,
                     std::chrono::steady_clock::time_point now);
  /// Fires the domain's repair action; returns its status. Under mu_.
  Status ActLocked(Domain& domain);
  void TraceAction(const char* action, const Domain& domain,
                   const Status& status);
  void SetLevelLocked(Domain& domain, Level level);

  ServingGroup* group_;
  Options options_;
  TokenBucket::ClockFn clock_;

  /// Serialises ticks and guards domains_ + the bucket + the rng.
  std::mutex mu_;
  std::vector<Domain> domains_;
  TokenBucket bucket_;
  Rng rng_;

  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;

  obs::Counter* cycles_ = nullptr;
  obs::Counter* repair_shards_ = nullptr;
  obs::Counter* force_resyncs_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* readmissions_ = nullptr;
  obs::Counter* rate_limited_ = nullptr;
  obs::Counter* backoff_holds_ = nullptr;
  obs::Counter* give_ups_ = nullptr;
};

}  // namespace cce::serving

#endif  // CCE_SERVING_SUPERVISOR_H_
