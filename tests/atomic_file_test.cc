#include "io/atomic_file.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace cce::io {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(AtomicFileTest, WritesNewFile) {
  const std::string path = ::testing::TempDir() + "/atomic_new.txt";
  std::remove(path.c_str());
  CCE_CHECK_OK(AtomicWriteFile(path, [](std::ostream* out) {
    *out << "hello\n";
    return Status::Ok();
  }));
  EXPECT_EQ(ReadAll(path), "hello\n");
  std::remove(path.c_str());
}

TEST(AtomicFileTest, ReplacesExistingContentAtomically) {
  const std::string path = ::testing::TempDir() + "/atomic_replace.txt";
  CCE_CHECK_OK(AtomicWriteFile(path, [](std::ostream* out) {
    *out << "old";
    return Status::Ok();
  }));
  CCE_CHECK_OK(AtomicWriteFile(path, [](std::ostream* out) {
    *out << "new content";
    return Status::Ok();
  }));
  EXPECT_EQ(ReadAll(path), "new content");
  std::remove(path.c_str());
}

TEST(AtomicFileTest, WriterErrorLeavesOriginalIntactAndNoTempBehind) {
  const std::string path = ::testing::TempDir() + "/atomic_failed.txt";
  CCE_CHECK_OK(AtomicWriteFile(path, [](std::ostream* out) {
    *out << "precious";
    return Status::Ok();
  }));
  Status failed = AtomicWriteFile(path, [](std::ostream* out) {
    *out << "half-writ";
    return Status::IoError("simulated mid-write failure");
  });
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_EQ(ReadAll(path), "precious")
      << "a failed rewrite must not touch the target";
  // The temp file must have been cleaned up.
  EXPECT_FALSE(std::ifstream(path + ".tmp.0").good());
  std::remove(path.c_str());
}

TEST(AtomicFileTest, UnwritableDirectoryFails) {
  Status failed = AtomicWriteFile("/no/such/dir/file.txt",
                                  [](std::ostream* out) {
                                    *out << "x";
                                    return Status::Ok();
                                  });
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
}

TEST(EnsureDirectoryTest, CreatesOnceAndIsIdempotent) {
  const std::string dir = ::testing::TempDir() + "/atomic_mkdir_test";
  CCE_CHECK_OK(EnsureDirectory(dir));
  CCE_CHECK_OK(EnsureDirectory(dir));
  // A file with the same name is rejected.
  const std::string file = dir + "/occupied";
  CCE_CHECK_OK(AtomicWriteFile(file, [](std::ostream* out) {
    *out << "x";
    return Status::Ok();
  }));
  EXPECT_EQ(EnsureDirectory(file).code(), StatusCode::kIoError);
  std::remove(file.c_str());
}

TEST(EnsureDirectoryTest, RejectsEmptyPath) {
  EXPECT_EQ(EnsureDirectory("").code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cce::io
