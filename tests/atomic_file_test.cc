#include "io/atomic_file.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "io/env.h"
#include "io/fault_env.h"

namespace cce::io {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(AtomicFileTest, WritesNewFile) {
  const std::string path = ::testing::TempDir() + "/atomic_new.txt";
  std::remove(path.c_str());
  CCE_CHECK_OK(AtomicWriteFile(path, [](std::ostream* out) {
    *out << "hello\n";
    return Status::Ok();
  }));
  EXPECT_EQ(ReadAll(path), "hello\n");
  std::remove(path.c_str());
}

TEST(AtomicFileTest, ReplacesExistingContentAtomically) {
  const std::string path = ::testing::TempDir() + "/atomic_replace.txt";
  CCE_CHECK_OK(AtomicWriteFile(path, [](std::ostream* out) {
    *out << "old";
    return Status::Ok();
  }));
  CCE_CHECK_OK(AtomicWriteFile(path, [](std::ostream* out) {
    *out << "new content";
    return Status::Ok();
  }));
  EXPECT_EQ(ReadAll(path), "new content");
  std::remove(path.c_str());
}

TEST(AtomicFileTest, WriterErrorLeavesOriginalIntactAndNoTempBehind) {
  const std::string path = ::testing::TempDir() + "/atomic_failed.txt";
  CCE_CHECK_OK(AtomicWriteFile(path, [](std::ostream* out) {
    *out << "precious";
    return Status::Ok();
  }));
  Status failed = AtomicWriteFile(path, [](std::ostream* out) {
    *out << "half-writ";
    return Status::IoError("simulated mid-write failure");
  });
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_EQ(ReadAll(path), "precious")
      << "a failed rewrite must not touch the target";
  // The temp file must have been cleaned up.
  EXPECT_FALSE(std::ifstream(path + ".tmp.0").good());
  std::remove(path.c_str());
}

TEST(AtomicFileTest, UnwritableDirectoryFails) {
  Status failed = AtomicWriteFile("/no/such/dir/file.txt",
                                  [](std::ostream* out) {
                                    *out << "x";
                                    return Status::Ok();
                                  });
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
}

/// Counts files in `dir` whose names match the atomic temp pattern.
size_t CountTmpOrphans(const std::string& dir) {
  std::vector<std::string> names;
  CCE_CHECK_OK(Env::Default()->ListDir(dir, &names));
  size_t orphans = 0;
  for (const std::string& name : names) {
    if (IsAtomicTempName(name)) ++orphans;
  }
  return orphans;
}

class AtomicFileFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/atomic_fault_test";
    CCE_CHECK_OK(EnsureDirectory(dir_));
    std::vector<std::string> names;
    CCE_CHECK_OK(Env::Default()->ListDir(dir_, &names));
    for (const std::string& name : names) {
      CCE_CHECK_OK(Env::Default()->RemoveFile(dir_ + "/" + name));
    }
    path_ = dir_ + "/target.bin";
    CCE_CHECK_OK(AtomicWriteFile(path_, [](std::ostream* out) {
      *out << "previous generation";
      return Status::Ok();
    }));
  }

  std::string dir_;
  std::string path_;
};

TEST_F(AtomicFileFaultTest, EnospcDuringWriteLeavesTargetIntact) {
  FaultInjectingEnv env(Env::Default());
  env.ExhaustSpaceAfter(4);  // far less than the payload
  Status failed = AtomicWriteFile(&env, path_, [](std::ostream* out) {
    *out << "next generation that will not fit on the device";
    return Status::Ok();
  });
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_NE(failed.message().find("ENOSPC"), std::string::npos)
      << failed.ToString();
  EXPECT_EQ(ReadAll(path_), "previous generation");
  EXPECT_EQ(CountTmpOrphans(dir_), 0u)
      << "the aborted temp file must be unlinked";
}

TEST_F(AtomicFileFaultTest, FailedFsyncAbortsBeforeTheRename) {
  FaultInjectingEnv env(Env::Default());
  env.FailNextSync();
  Status failed = AtomicWriteFile(&env, path_, [](std::ostream* out) {
    *out << "unflushed";
    return Status::Ok();
  });
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_EQ(ReadAll(path_), "previous generation")
      << "a write that never hit the platter must not replace the target";
  EXPECT_EQ(CountTmpOrphans(dir_), 0u);
}

TEST_F(AtomicFileFaultTest, FailedRenameLeavesTargetAndCleansTemp) {
  FaultInjectingEnv env(Env::Default());
  env.FailNextRename();
  Status failed = AtomicWriteFile(&env, path_, [](std::ostream* out) {
    *out << "stranded";
    return Status::Ok();
  });
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_EQ(ReadAll(path_), "previous generation");
  EXPECT_EQ(CountTmpOrphans(dir_), 0u);
  // The machinery recovers on the next attempt without operator help.
  CCE_CHECK_OK(AtomicWriteFile(&env, path_, [](std::ostream* out) {
    *out << "healed";
    return Status::Ok();
  }));
  EXPECT_EQ(ReadAll(path_), "healed");
}

TEST(IsAtomicTempNameTest, MatchesOnlyTheTempPattern) {
  EXPECT_TRUE(IsAtomicTempName("context.snapshot.tmp.1234.7"));
  EXPECT_TRUE(IsAtomicTempName("x.tmp.0"));
  EXPECT_FALSE(IsAtomicTempName("context.snapshot"));
  EXPECT_FALSE(IsAtomicTempName("context.wal"));
  EXPECT_FALSE(IsAtomicTempName(".tmp.orphan")) << "empty target";
  EXPECT_FALSE(IsAtomicTempName("file.tmp.")) << "empty suffix";
  EXPECT_FALSE(IsAtomicTempName(""));
}

TEST(EnsureDirectoryTest, CreatesOnceAndIsIdempotent) {
  const std::string dir = ::testing::TempDir() + "/atomic_mkdir_test";
  CCE_CHECK_OK(EnsureDirectory(dir));
  CCE_CHECK_OK(EnsureDirectory(dir));
  // A file with the same name is rejected.
  const std::string file = dir + "/occupied";
  CCE_CHECK_OK(AtomicWriteFile(file, [](std::ostream* out) {
    *out << "x";
    return Status::Ok();
  }));
  EXPECT_EQ(EnsureDirectory(file).code(), StatusCode::kIoError);
  std::remove(file.c_str());
}

TEST(EnsureDirectoryTest, RejectsEmptyPath) {
  EXPECT_EQ(EnsureDirectory("").code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cce::io
