// The batch determinism contract (docs/algorithms.md "Amortized batch
// Explain"): Srk::ExplainBatch shares ONE bitmap build across every item
// yet returns keys bit-identical to running ExplainInstance per item — at
// any pool width, any batch split, and across window slides. The proxy's
// ExplainBatch inherits the same contract end to end, including while
// Record traffic races the batch (the TSan angle of the stress suite).

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/srk.h"
#include "serving/proxy.h"
#include "serving/read_path.h"
#include "tests/test_util.h"

namespace cce {
namespace {

int StressScale() {
  const char* env = std::getenv("CCE_STRESS");
  return (env != nullptr && env[0] != '\0' && env[0] != '0') ? 4 : 1;
}

/// A mixed batch over `context`: existing rows, perturbed instances, and
/// both labels, so the shared build serves heterogeneous queries.
std::vector<Srk::BatchItem> MakeBatch(const Dataset& context, size_t count,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<Srk::BatchItem> items;
  items.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Srk::BatchItem item;
    item.x = context.instance(rng.Uniform(context.size()));
    if (rng.Bernoulli(0.3)) {
      item.x[rng.Uniform(item.x.size())] = static_cast<ValueId>(rng.Uniform(4));
    }
    item.y = static_cast<Label>(rng.Uniform(2));
    items.push_back(std::move(item));
  }
  return items;
}

void ExpectSameKey(const KeyResult& want, const KeyResult& got,
                   const std::string& what) {
  EXPECT_EQ(want.key, got.key) << what;
  EXPECT_EQ(want.pick_order, got.pick_order) << what;
  EXPECT_EQ(want.achieved_alpha, got.achieved_alpha) << what;
  EXPECT_EQ(want.satisfied, got.satisfied) << what;
  EXPECT_EQ(want.degraded, got.degraded) << what;
}

TEST(BatchEquivalenceTest, BatchKeysIdenticalToSerialAtAnyPoolWidth) {
  for (uint64_t seed : {41u, 42u, 43u}) {
    Dataset context = testing::RandomContext(600, 8, 4, seed);
    for (double alpha : {1.0, 0.9}) {
      const std::vector<Srk::BatchItem> items = MakeBatch(context, 24, seed);

      // Serial reference: each item explained independently.
      std::vector<KeyResult> want;
      for (const Srk::BatchItem& item : items) {
        Srk::Options serial;
        serial.alpha = alpha;
        auto one = Srk::ExplainInstance(context, item.x, item.y, serial);
        ASSERT_TRUE(one.ok());
        want.push_back(*one);
      }

      for (size_t threads : {0u, 1u, 4u}) {
        Srk::Options options;
        options.alpha = alpha;
        options.parallel_conformity = true;
        ThreadPool pool(threads == 0 ? 1 : threads);
        options.pool = threads == 0 ? nullptr : &pool;
        Srk::EngineStats stats;
        options.stats = &stats;
        auto got = Srk::ExplainBatch(context, items, options);
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got->size(), items.size());
        EXPECT_EQ(stats.bitmap_builds.load(), 1u)
            << "one shared build for the whole batch";
        for (size_t i = 0; i < items.size(); ++i) {
          ExpectSameKey(want[i], (*got)[i],
                        "seed " + std::to_string(seed) + " alpha " +
                            std::to_string(alpha) + " threads " +
                            std::to_string(threads) + " item " +
                            std::to_string(i));
        }
      }
    }
  }
}

TEST(BatchEquivalenceTest, AnyBatchSplitGivesTheSameKeys) {
  Dataset context = testing::RandomContext(500, 8, 4, 51);
  const std::vector<Srk::BatchItem> items = MakeBatch(context, 20, 52);
  ThreadPool pool(4);
  Srk::Options options;
  options.parallel_conformity = true;
  options.pool = &pool;

  auto whole = Srk::ExplainBatch(context, items, options);
  ASSERT_TRUE(whole.ok());

  Rng rng(53);
  for (int trial = 0; trial < 5; ++trial) {
    // Cut the batch at random points; concatenated results must match the
    // whole-batch run exactly (and therefore the serial run, transitively).
    std::vector<KeyResult> stitched;
    size_t begin = 0;
    while (begin < items.size()) {
      const size_t take = 1 + rng.Uniform(items.size() - begin);
      std::vector<Srk::BatchItem> chunk(items.begin() + begin,
                                        items.begin() + begin + take);
      auto part = Srk::ExplainBatch(context, chunk, options);
      ASSERT_TRUE(part.ok());
      stitched.insert(stitched.end(), part->begin(), part->end());
      begin += take;
    }
    ASSERT_EQ(stitched.size(), whole->size());
    for (size_t i = 0; i < stitched.size(); ++i) {
      ExpectSameKey((*whole)[i], stitched[i],
                    "trial " + std::to_string(trial) + " item " +
                        std::to_string(i));
    }
  }
}

TEST(BatchEquivalenceTest, EquivalenceHoldsAcrossWindowSlides) {
  Dataset full = testing::RandomContext(700, 8, 4, 61);
  const std::vector<Srk::BatchItem> items = MakeBatch(full, 12, 62);
  ThreadPool pool(3);
  // The same batch re-explained as the window grows: each slide is a fresh
  // shared build, and every one must agree with the serial path over the
  // context as it stands at that moment.
  for (size_t window : {100u, 350u, 700u}) {
    Dataset context = full.Prefix(window);
    Srk::Options options;
    options.parallel_conformity = true;
    options.pool = &pool;
    auto got = Srk::ExplainBatch(context, items, options);
    ASSERT_TRUE(got.ok());
    for (size_t i = 0; i < items.size(); ++i) {
      Srk::Options serial;
      auto want =
          Srk::ExplainInstance(context, items[i].x, items[i].y, serial);
      ASSERT_TRUE(want.ok());
      ExpectSameKey(*want, (*got)[i],
                    "window " + std::to_string(window) + " item " +
                        std::to_string(i));
    }
  }
}

TEST(BatchEquivalenceTest, ProxyBatchMatchesSerialExplains) {
  testing::Fig2Context fig2;
  serving::ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.explain_cache.capacity = 0;  // compare live searches, not cache
  auto proxy =
      serving::ExplainableProxy::Create(fig2.schema, nullptr, options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(row),
                                  fig2.context.label(row)));
  }
  std::vector<serving::BatchQuery> items;
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    items.push_back({fig2.context.instance(row), fig2.context.label(row),
                     Deadline::Infinite()});
  }
  auto batch = (*proxy)->ExplainBatch(items);
  ASSERT_EQ(batch.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    auto serial = (*proxy)->Explain(items[i].x, items[i].y);
    ASSERT_TRUE(serial.ok()) << "item " << i;
    ASSERT_TRUE(batch[i].ok()) << "item " << i;
    ExpectSameKey(*serial, batch[i].value(), "item " + std::to_string(i));
  }
  serving::HealthSnapshot health = (*proxy)->Health();
  EXPECT_EQ(health.batch_executions, 1u);
  EXPECT_EQ(health.batch_items, items.size());
}

TEST(BatchEquivalenceTest, BatchInvalidItemFailsAloneNotTheBatch) {
  testing::Fig2Context fig2;
  serving::ExplainableProxy::Options options;
  options.monitor_drift = false;
  auto proxy =
      serving::ExplainableProxy::Create(fig2.schema, nullptr, options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(row),
                                  fig2.context.label(row)));
  }
  Instance poisoned = fig2.context.instance(0);
  poisoned[fig2.credit] = 999;  // far outside Credit's domain
  std::vector<serving::BatchQuery> items = {
      {fig2.context.instance(0), fig2.denied, Deadline::Infinite()},
      {poisoned, fig2.denied, Deadline::Infinite()},
      {fig2.context.instance(5), fig2.approved, Deadline::Infinite()},
  };
  auto batch = (*proxy)->ExplainBatch(items);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch[0].ok());
  EXPECT_EQ(batch[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(batch[2].ok());
  EXPECT_EQ(batch[0].value().key, (FeatureSet{fig2.income, fig2.credit}));
}

TEST(BatchEquivalenceTest, BatchRacingRecordsQuiescesToSerialKeys) {
  const int scale = StressScale();
  testing::Fig2Context fig2;
  serving::ExplainableProxy::Options options;
  options.monitor_drift = false;
  // Bound the window: the writer thread below records in a tight loop, and
  // an unbounded context would grow for as long as the scheduler favours
  // the writer — every ExplainBatch would scan a larger window than the
  // last, making the runtime schedule-dependent (pathological under TSan).
  options.context_capacity = 64;
  auto proxy =
      serving::ExplainableProxy::Create(fig2.schema, nullptr, options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(row),
                                  fig2.context.label(row)));
  }
  std::vector<serving::BatchQuery> items = {
      {fig2.context.instance(0), fig2.denied, Deadline::Infinite()},
      {fig2.context.instance(5), fig2.approved, Deadline::Infinite()},
  };
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(71);
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t row = rng.Uniform(fig2.context.size());
      CCE_CHECK_OK(
          (*proxy)->Record(fig2.context.instance(row), fig2.context.label(row)));
    }
  });
  // Each batch sees SOME consistent window; every item's answer must be a
  // real key for that window, so OK items always carry a non-empty key.
  for (int iter = 0; iter < 50 * scale; ++iter) {
    auto batch = (*proxy)->ExplainBatch(items);
    ASSERT_EQ(batch.size(), items.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(batch[i].ok()) << "iter " << iter << " item " << i;
      EXPECT_FALSE(batch[i].value().key.empty());
    }
  }
  stop.store(true);
  writer.join();
  // Quiesced: the racing writes have settled, batch and serial answers over
  // the final window must agree exactly.
  auto final_batch = (*proxy)->ExplainBatch(items);
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(final_batch[i].ok());
    auto serial = (*proxy)->Explain(items[i].x, items[i].y);
    ASSERT_TRUE(serial.ok());
    if (!serial->cached) {
      ExpectSameKey(*serial, final_batch[i].value(),
                    "quiesced item " + std::to_string(i));
    } else {
      EXPECT_EQ(serial->key, final_batch[i].value().key);
    }
  }
}

}  // namespace
}  // namespace cce
