#include "em/blocking.h"

#include <gtest/gtest.h>

#include "em/datasets.h"
#include "ml/gbdt.h"

namespace cce::em {
namespace {

std::vector<Record> Table(std::initializer_list<const char*> titles) {
  std::vector<Record> out;
  for (const char* title : titles) out.push_back(Record{{title}});
  return out;
}

TEST(TokenBlockerTest, ValidatesArguments) {
  std::vector<Record> table = Table({"a b c"});
  EXPECT_FALSE(TokenBlocker::Block({}, table, {}).ok());
  EXPECT_FALSE(TokenBlocker::Block(table, {}, {}).ok());
  TokenBlocker::Options bad;
  bad.key_attribute = 5;
  EXPECT_FALSE(TokenBlocker::Block(table, table, bad).ok());
  bad = TokenBlocker::Options();
  bad.min_shared_tokens = 0;
  EXPECT_FALSE(TokenBlocker::Block(table, table, bad).ok());
}

TEST(TokenBlockerTest, FindsOverlappingPairs) {
  std::vector<Record> left = Table({"adobe photoshop elements",
                                    "corel draw suite"});
  std::vector<Record> right = Table({"photoshop elements adobe bundle",
                                     "corel paint shop",
                                     "unrelated office thing"});
  auto candidates = TokenBlocker::Block(left, right, {});
  ASSERT_TRUE(candidates.ok());
  // left0-right0 share 3 tokens; left1-right1 share only 1 (below the
  // default threshold of 2).
  ASSERT_EQ(candidates->size(), 1u);
  EXPECT_EQ((*candidates)[0].left, 0u);
  EXPECT_EQ((*candidates)[0].right, 0u);
  EXPECT_EQ((*candidates)[0].shared_tokens, 3u);
}

TEST(TokenBlockerTest, StopTokensDoNotBlock) {
  // "the" appears everywhere on the right; it must not create candidates.
  std::vector<Record> left = Table({"the alpha"});
  std::vector<Record> right = Table({"the beta", "the gamma", "the delta",
                                     "the epsilon"});
  TokenBlocker::Options options;
  options.min_shared_tokens = 1;
  options.stop_token_fraction = 0.5;
  auto candidates = TokenBlocker::Block(left, right, options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates->empty());
}

TEST(TokenBlockerTest, CandidatesSortedByOverlapAndCapped) {
  std::vector<Record> left = Table({"a b c d e"});
  std::vector<Record> right = Table({"a b", "a b c", "a b c d"});
  TokenBlocker::Options options;
  options.min_shared_tokens = 2;
  options.stop_token_fraction = 1.0;  // tiny table: disable stop words
  auto all = TokenBlocker::Block(left, right, options);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 3u);
  EXPECT_EQ((*all)[0].shared_tokens, 4u);
  EXPECT_EQ((*all)[2].shared_tokens, 2u);
  options.max_candidates = 1;
  auto capped = TokenBlocker::Block(left, right, options);
  ASSERT_TRUE(capped.ok());
  ASSERT_EQ(capped->size(), 1u);
  EXPECT_EQ((*capped)[0].shared_tokens, 4u);
}

TEST(TokenBlockerTest, BlockingRecallArithmetic) {
  std::vector<TokenBlocker::Candidate> candidates = {{0, 0, 3}, {1, 2, 2}};
  EXPECT_DOUBLE_EQ(
      TokenBlocker::BlockingRecall(candidates, {{0, 0}, {1, 1}}), 0.5);
  EXPECT_DOUBLE_EQ(TokenBlocker::BlockingRecall(candidates, {}), 1.0);
}

TEST(TokenBlockerTest, HighRecallOnGeneratedMatches) {
  // Build two "tables" from the A-G generator's match pairs; blocking on
  // titles must retain nearly all true matches.
  EmGeneratorOptions options;
  options.pairs = 1500;
  EmTask task = GenerateAmazonGoogle(options);
  std::vector<Record> left;
  std::vector<Record> right;
  std::vector<std::pair<size_t, size_t>> true_matches;
  for (const RecordPair& pair : task.pairs) {
    if (!pair.is_match) continue;
    true_matches.emplace_back(left.size(), right.size());
    left.push_back(pair.left);
    right.push_back(pair.right);
  }
  ASSERT_GT(true_matches.size(), 50u);
  TokenBlocker::Options block_options;
  block_options.min_shared_tokens = 2;
  block_options.stop_token_fraction = 0.6;
  auto candidates = TokenBlocker::Block(left, right, block_options);
  ASSERT_TRUE(candidates.ok());
  double recall =
      TokenBlocker::BlockingRecall(*candidates, true_matches);
  EXPECT_GE(recall, 0.85);
  // And blocking prunes: far fewer candidates than the full cross product.
  EXPECT_LT(candidates->size(), left.size() * right.size() / 4);
}

TEST(GainImportanceTest, InformativeFeaturesGetTheGain) {
  // Piggybacked here to exercise ml::Gbdt::GainImportance on EM-style
  // data: labels depend only on feature 0.
  auto schema = std::make_shared<Schema>();
  FeatureId a = schema->AddFeature("a");
  FeatureId b = schema->AddFeature("b");
  for (FeatureId f : {a, b}) {
    for (int v = 0; v < 4; ++v) {
      schema->InternValue(f, std::to_string(v));
    }
  }
  schema->InternLabel("neg");
  schema->InternLabel("pos");
  Dataset labelled(schema);
  Rng rng(8);
  for (int i = 0; i < 600; ++i) {
    ValueId va = static_cast<ValueId>(rng.Uniform(4));
    ValueId vb = static_cast<ValueId>(rng.Uniform(4));
    labelled.Add({va, vb}, va >= 2 ? 1u : 0u);
  }
  auto model = ml::Gbdt::Train(labelled, {});
  ASSERT_TRUE(model.ok());
  std::vector<double> importance = (*model)->GainImportance(2);
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_GT(importance[a], 0.9);
  EXPECT_LT(importance[b], 0.1);
  EXPECT_NEAR(importance[a] + importance[b], 1.0, 1e-9);
}

}  // namespace
}  // namespace cce::em
