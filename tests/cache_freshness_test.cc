// The generation-fresh cache contract (docs/algorithms.md "Generation-fresh
// key cache"): a cached key served after the window slides is exactly the
// key a cold proxy would compute — never a bounded-stale approximation.
// Benign slides revalidate and serve; conflicting slides are detected and
// force a recompute; every cached serve is alpha-conformant for the window
// as it stands NOW, which a reference checker re-proves from scratch.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/conformity.h"
#include "core/dataset.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce {
namespace {

using serving::ExplainableProxy;

/// A proxy that sheds every Explain after the first `burst`, so later
/// requests exercise the cache rung of the ladder.
Result<std::unique_ptr<ExplainableProxy>> ShedAfter(
    std::shared_ptr<const Schema> schema, double burst) {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.overload.enabled = true;
  options.overload.explain_bucket.refill_per_sec = 0.001;
  options.overload.explain_bucket.burst = burst;
  return ExplainableProxy::Create(schema, nullptr, options);
}

/// A proxy with no overload control and no cache: always computes cold.
Result<std::unique_ptr<ExplainableProxy>> Cold(
    std::shared_ptr<const Schema> schema) {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.explain_cache.capacity = 0;
  return ExplainableProxy::Create(schema, nullptr, options);
}

TEST(CacheFreshnessTest, BenignSlideCachedEqualsCold) {
  testing::Fig2Context fig2;
  auto warm = ShedAfter(fig2.schema, 1.0);
  auto cold = Cold(fig2.schema);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(cold.ok());
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    CCE_CHECK_OK((*warm)->Record(fig2.context.instance(row),
                                 fig2.context.label(row)));
    CCE_CHECK_OK((*cold)->Record(fig2.context.instance(row),
                                 fig2.context.label(row)));
  }
  const Instance& x0 = fig2.context.instance(0);
  ASSERT_TRUE((*warm)->Explain(x0, fig2.denied).ok());  // warms the cache
  // The window slides benignly on BOTH proxies.
  CCE_CHECK_OK((*warm)->Record(fig2.context.instance(3), fig2.denied));
  CCE_CHECK_OK((*cold)->Record(fig2.context.instance(3), fig2.denied));
  auto cached = (*warm)->Explain(x0, fig2.denied);
  auto fresh = (*cold)->Explain(x0, fig2.denied);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(cached->cached);
  EXPECT_FALSE(fresh->cached);
  EXPECT_EQ(cached->key, fresh->key)
      << "a revalidated cached key is the cold answer, not an approximation";
  EXPECT_EQ(cached->achieved_alpha, fresh->achieved_alpha);
  EXPECT_EQ((*warm)->Health().cache_revalidations, 1u);
}

TEST(CacheFreshnessTest, ConflictingSlideRecomputesToColdKey) {
  testing::Fig2Context fig2;
  auto warm = ShedAfter(fig2.schema, 2.0);
  auto cold = Cold(fig2.schema);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(cold.ok());
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    CCE_CHECK_OK((*warm)->Record(fig2.context.instance(row),
                                 fig2.context.label(row)));
    CCE_CHECK_OK((*cold)->Record(fig2.context.instance(row),
                                 fig2.context.label(row)));
  }
  const Instance& x0 = fig2.context.instance(0);
  ASSERT_TRUE((*warm)->Explain(x0, fig2.denied).ok());
  // x3 agrees with x0 on {Income, Credit}; recording it with the other
  // label breaks the cached key on both proxies' windows.
  CCE_CHECK_OK((*warm)->Record(fig2.context.instance(3), fig2.approved));
  CCE_CHECK_OK((*cold)->Record(fig2.context.instance(3), fig2.approved));
  // The warm proxy still has one admission token: the recompute must agree
  // with the cold proxy (and not resemble the disproven cached key).
  auto recomputed = (*warm)->Explain(x0, fig2.denied);
  auto fresh = (*cold)->Explain(x0, fig2.denied);
  ASSERT_TRUE(recomputed.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(recomputed->cached);
  EXPECT_EQ(recomputed->key, fresh->key);
  EXPECT_EQ(recomputed->achieved_alpha, fresh->achieved_alpha);
  // The recompute refreshed the cache: a shed request now serves the NEW
  // key, which still matches cold.
  auto cached = (*warm)->Explain(x0, fig2.denied);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->cached);
  EXPECT_EQ(cached->key, fresh->key);
}

TEST(CacheFreshnessTest, RandomizedCachedServesAreConformantNow) {
  // Property: ANY key the cache serves after a slide is alpha-conformant
  // over the window as it stands at serve time — re-proven here by a
  // reference checker over a replica of the recorded rows. Keys the slide
  // disproved must surface as shed errors, never as stale serves.
  for (uint64_t seed : {81u, 82u, 83u}) {
    Dataset stream = testing::RandomContext(300, 6, 3, seed);
    auto warm = ShedAfter(stream.schema_ptr(), 1.0);
    ASSERT_TRUE(warm.ok());
    Dataset window(stream.schema_ptr());
    const size_t kWarmRows = 200;
    for (size_t row = 0; row < kWarmRows; ++row) {
      CCE_CHECK_OK((*warm)->Record(stream.instance(row), stream.label(row)));
      window.Add(stream.instance(row), stream.label(row));
    }
    const Instance x0 = stream.instance(0);
    const Label y0 = stream.label(0);
    auto full = (*warm)->Explain(x0, y0);
    ASSERT_TRUE(full.ok());
    size_t served = 0;
    for (size_t row = kWarmRows; row < stream.size(); ++row) {
      CCE_CHECK_OK((*warm)->Record(stream.instance(row), stream.label(row)));
      window.Add(stream.instance(row), stream.label(row));
      auto cached = (*warm)->Explain(x0, y0);
      if (!cached.ok()) {
        EXPECT_EQ(cached.status().code(), StatusCode::kResourceExhausted)
            << "seed " << seed << " row " << row;
        continue;
      }
      ++served;
      ConformityChecker checker(&window);
      EXPECT_TRUE(checker.IsAlphaConformant(x0, y0, cached->key, 1.0))
          << "seed " << seed << " row " << row
          << ": served a key the slide disproved";
    }
    const serving::HealthSnapshot health = (*warm)->Health();
    EXPECT_EQ(health.cache_served_explains, served);
    EXPECT_GT(health.cache_revalidations + health.cache_revalidation_failures,
              0u)
        << "seed " << seed << ": the slide never exercised revalidation";
  }
}

}  // namespace
}  // namespace cce
