#include "core/cce.h"

#include <gtest/gtest.h>

#include "core/conformity.h"
#include "data/drift.h"
#include "tests/test_util.h"

namespace cce {
namespace {

TEST(CceBatchTest, MatchesSrkOnFig2) {
  testing::Fig2Context fig2;
  CceBatch cce(fig2.context, 1.0);
  auto result = cce.Explain(0);
  ASSERT_TRUE(result.ok());
  FeatureSet expected = {fig2.income, fig2.credit};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result->key, expected);
}

TEST(CceBatchTest, AdHocInstanceExplained) {
  testing::Fig2Context fig2;
  CceBatch cce(fig2.context, 1.0);
  auto result =
      cce.ExplainInstance(fig2.context.instance(5), fig2.approved);
  ASSERT_TRUE(result.ok());
  ConformityChecker checker(&cce.context());
  EXPECT_TRUE(checker.IsAlphaConformant(fig2.context.instance(5),
                                        fig2.approved, result->key, 1.0));
}

TEST(CceOnlineTest, DelegatesToOsrk) {
  testing::Fig2Context fig2;
  CceOnline::Options options;
  options.seed = 4;
  auto cce = CceOnline::Create(fig2.schema, fig2.context.instance(0),
                               fig2.denied, options);
  ASSERT_TRUE(cce.ok());
  for (size_t row = 1; row < fig2.context.size(); ++row) {
    (*cce)->Observe(fig2.context.instance(row), fig2.context.label(row));
  }
  EXPECT_EQ((*cce)->context_size(), 6u);
  EXPECT_DOUBLE_EQ((*cce)->achieved_alpha(), 1.0);
  // The online key must itself be a relative key for the arrived context.
  std::vector<size_t> rows = {1, 2, 3, 4, 5, 6};
  Dataset arrived = fig2.context.Subset(rows);
  ConformityChecker checker(&arrived);
  EXPECT_TRUE(checker.IsAlphaConformant(fig2.context.instance(0),
                                        fig2.denied, (*cce)->key(), 1.0));
}

TEST(SlidingWindowTest, CreateValidatesOptions) {
  testing::Fig2Context fig2;
  SlidingWindowExplainer::Options options;
  options.window_size = 0;
  EXPECT_FALSE(SlidingWindowExplainer::Create(fig2.schema, options).ok());
  options.window_size = 8;
  options.step = 0;
  EXPECT_FALSE(SlidingWindowExplainer::Create(fig2.schema, options).ok());
  options.step = 9;
  EXPECT_FALSE(SlidingWindowExplainer::Create(fig2.schema, options).ok());
  options.step = 4;
  options.alpha = 0.0;
  EXPECT_FALSE(SlidingWindowExplainer::Create(fig2.schema, options).ok());
}

TEST(SlidingWindowTest, WindowEvictsOldInstances) {
  Dataset stream = testing::RandomContext(50, 4, 3, 808);
  SlidingWindowExplainer::Options options;
  options.window_size = 16;
  options.step = 4;
  auto window = SlidingWindowExplainer::Create(stream.schema_ptr(), options);
  ASSERT_TRUE(window.ok());
  for (size_t row = 0; row < stream.size(); ++row) {
    (*window)->Observe(stream.instance(row), stream.label(row));
  }
  EXPECT_EQ((*window)->window_population(), 16u);
}

TEST(SlidingWindowTest, LastWinsRecomputesAcrossEpochs) {
  Dataset stream = testing::RandomContext(64, 4, 3, 909, /*noise=*/0.0);
  SlidingWindowExplainer::Options options;
  options.window_size = 16;
  options.step = 8;
  options.policy = KeyResolutionPolicy::kLastWins;
  auto window = SlidingWindowExplainer::Create(stream.schema_ptr(), options);
  ASSERT_TRUE(window.ok());
  const Instance& x0 = stream.instance(0);
  Label y0 = stream.label(0);
  for (size_t row = 0; row < 16; ++row) {
    (*window)->Observe(stream.instance(row), stream.label(row));
  }
  auto first = (*window)->Explain(x0, y0);
  ASSERT_TRUE(first.ok());
  for (size_t row = 16; row < 64; ++row) {
    (*window)->Observe(stream.instance(row), stream.label(row));
  }
  auto second = (*window)->Explain(x0, y0);
  ASSERT_TRUE(second.ok());
  // Whatever the keys are, the last-wins key reflects the *current* window.
  Context current(stream.schema_ptr());
  for (size_t row = 48; row < 64; ++row) {
    current.Add(stream.instance(row), stream.label(row));
  }
  ConformityChecker checker(&current);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, y0, second->key, 1.0));
}

TEST(SlidingWindowTest, FirstWinsKeepsInitialKey) {
  Dataset stream = testing::RandomContext(64, 4, 3, 1010, /*noise=*/0.0);
  SlidingWindowExplainer::Options options;
  options.window_size = 16;
  options.step = 8;
  options.policy = KeyResolutionPolicy::kFirstWins;
  auto window = SlidingWindowExplainer::Create(stream.schema_ptr(), options);
  ASSERT_TRUE(window.ok());
  const Instance& x0 = stream.instance(0);
  Label y0 = stream.label(0);
  for (size_t row = 0; row < 16; ++row) {
    (*window)->Observe(stream.instance(row), stream.label(row));
  }
  auto first = (*window)->Explain(x0, y0);
  ASSERT_TRUE(first.ok());
  for (size_t row = 16; row < 64; ++row) {
    (*window)->Observe(stream.instance(row), stream.label(row));
  }
  auto second = (*window)->Explain(x0, y0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->key, second->key);
}

TEST(SlidingWindowTest, UnionKeyAccumulates) {
  Dataset stream = testing::RandomContext(64, 4, 3, 1111, /*noise=*/0.0);
  SlidingWindowExplainer::Options options;
  options.window_size = 16;
  options.step = 8;
  options.policy = KeyResolutionPolicy::kUnionKey;
  auto window = SlidingWindowExplainer::Create(stream.schema_ptr(), options);
  ASSERT_TRUE(window.ok());
  const Instance& x0 = stream.instance(0);
  Label y0 = stream.label(0);
  FeatureSet previous;
  for (size_t row = 0; row < 64; ++row) {
    (*window)->Observe(stream.instance(row), stream.label(row));
    if (row % 16 == 15) {
      auto result = (*window)->Explain(x0, y0);
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(FeatureSetIsSubset(previous, result->key));
      previous = result->key;
    }
  }
}

TEST(DriftMonitorTest, NoAlarmOnCleanStream) {
  Dataset stream = testing::RandomContext(600, 6, 3, 1212, /*noise=*/0.0);
  DriftMonitor::Options options;
  options.probe_count = 4;
  DriftMonitor monitor(stream.schema_ptr(), options);
  for (size_t row = 0; row < stream.size(); ++row) {
    monitor.Observe(stream.instance(row), stream.label(row));
  }
  EXPECT_FALSE(monitor.Alarmed());
}

TEST(DriftMonitorTest, AlarmsOnInjectedNoise) {
  Dataset clean = testing::RandomContext(800, 6, 4, 1313, /*noise=*/0.0);
  Rng rng(5);
  // Heavy tail noise: random labels + scrambled features in the last 40%.
  Dataset noisy = data::InjectTailNoise(clean, 0.4, 0.8, &rng);
  for (size_t row = noisy.size() * 6 / 10; row < noisy.size(); ++row) {
    noisy.set_label(row, static_cast<Label>(rng.Uniform(2)));
  }
  DriftMonitor::Options options;
  options.probe_count = 4;
  options.alarm_growth = 1.0;
  options.alarm_window = 400;
  DriftMonitor monitor(noisy.schema_ptr(), options);
  for (size_t row = 0; row < noisy.size(); ++row) {
    monitor.Observe(noisy.instance(row), noisy.label(row));
  }
  EXPECT_TRUE(monitor.Alarmed());
}

TEST(DriftMonitorTest, AverageSuccinctnessGrowsMonotonically) {
  Dataset stream = testing::RandomContext(300, 5, 3, 1414, /*noise=*/0.0);
  DriftMonitor::Options options;
  options.probe_count = 4;
  DriftMonitor monitor(stream.schema_ptr(), options);
  double previous = 0.0;
  for (size_t row = 0; row < stream.size(); ++row) {
    monitor.Observe(stream.instance(row), stream.label(row));
    double current = monitor.AverageSuccinctness();
    if (row >= options.probe_count) {
      // Once the probe panel is fixed, coherence means keys only grow.
      EXPECT_GE(current, previous - 1e-12);
    }
    previous = current;
  }
}

}  // namespace
}  // namespace cce
