// Randomised cross-validation of the conformity engine against a naive
// reference implementation, over a grid of context shapes. The posting-list
// checker is the backbone of every algorithm and metric, so it gets the
// heaviest fuzzing.

#include <gtest/gtest.h>

#include "core/conformity.h"
#include "tests/test_util.h"

namespace cce {
namespace {

// Naive O(|I| * |E|) reference implementations.
size_t NaiveViolators(const Context& context, const Instance& x0, Label y0,
                      const FeatureSet& e) {
  size_t violators = 0;
  for (size_t row = 0; row < context.size(); ++row) {
    bool agrees = true;
    for (FeatureId f : e) {
      if (context.value(row, f) != x0[f]) {
        agrees = false;
        break;
      }
    }
    if (agrees && context.label(row) != y0) ++violators;
  }
  return violators;
}

std::vector<size_t> NaiveAgreeing(const Context& context,
                                  const Instance& x0, const FeatureSet& e) {
  std::vector<size_t> rows;
  for (size_t row = 0; row < context.size(); ++row) {
    bool agrees = true;
    for (FeatureId f : e) {
      if (context.value(row, f) != x0[f]) {
        agrees = false;
        break;
      }
    }
    if (agrees) rows.push_back(row);
  }
  return rows;
}

struct FuzzParam {
  uint64_t seed;
  size_t rows;
  size_t features;
  size_t domain;
};

class ConformityFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(ConformityFuzzTest, MatchesNaiveReference) {
  const auto& p = GetParam();
  Dataset context = testing::RandomContext(p.rows, p.features, p.domain,
                                           p.seed);
  ConformityChecker checker(&context);
  Rng rng(p.seed ^ 0xABCDEF);
  for (int trial = 0; trial < 30; ++trial) {
    // Random probe instance (not necessarily in the context) and subset.
    Instance x0(p.features);
    for (FeatureId f = 0; f < p.features; ++f) {
      x0[f] = static_cast<ValueId>(rng.Uniform(p.domain));
    }
    Label y0 = static_cast<Label>(rng.Uniform(2));
    FeatureSet e;
    for (FeatureId f = 0; f < p.features; ++f) {
      if (rng.Bernoulli(0.4)) e.push_back(f);
    }
    EXPECT_EQ(checker.CountViolators(x0, y0, e),
              NaiveViolators(context, x0, y0, e));
    EXPECT_EQ(checker.AgreeingRows(x0, e), NaiveAgreeing(context, x0, e));
    double precision = checker.Precision(x0, y0, e);
    EXPECT_GE(precision, 0.0);
    EXPECT_LE(precision, 1.0);
    EXPECT_NEAR(precision,
                1.0 - static_cast<double>(NaiveViolators(context, x0, y0,
                                                         e)) /
                          static_cast<double>(context.size()),
                1e-12);
    // IsAlphaConformant consistency with Precision at the exact boundary.
    EXPECT_TRUE(checker.IsAlphaConformant(x0, y0, e, precision));
  }
}

TEST_P(ConformityFuzzTest, MonotoneInExplanationSize) {
  // Adding features can only shrink the agreeing set, so violators and
  // precision move monotonically.
  const auto& p = GetParam();
  Dataset context = testing::RandomContext(p.rows, p.features, p.domain,
                                           p.seed + 101);
  ConformityChecker checker(&context);
  Rng rng(p.seed ^ 0x123);
  for (int trial = 0; trial < 10; ++trial) {
    size_t row = rng.Uniform(context.size());
    const Instance& x0 = context.instance(row);
    Label y0 = context.label(row);
    FeatureSet e;
    size_t previous_violators = checker.CountViolators(x0, y0, e);
    std::vector<FeatureId> order(p.features);
    for (FeatureId f = 0; f < p.features; ++f) order[f] = f;
    rng.Shuffle(&order);
    for (FeatureId f : order) {
      FeatureSetInsert(&e, f);
      size_t violators = checker.CountViolators(x0, y0, e);
      EXPECT_LE(violators, previous_violators);
      previous_violators = violators;
    }
    // x0 is a context row: it always agrees with itself, so the full key
    // leaves at least one agreeing row.
    EXPECT_GE(checker.AgreeingRows(x0, e).size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConformityFuzzTest,
    ::testing::Values(FuzzParam{1, 20, 3, 2}, FuzzParam{2, 50, 5, 3},
                      FuzzParam{3, 200, 4, 4}, FuzzParam{4, 500, 8, 2},
                      FuzzParam{5, 1000, 6, 5}, FuzzParam{6, 37, 10, 3},
                      FuzzParam{7, 333, 7, 6}, FuzzParam{8, 64, 12, 2}));

}  // namespace
}  // namespace cce
