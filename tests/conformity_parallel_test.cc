// The determinism contract of the bitset conformity engine (ISSUE 5): for
// the same logical context, the serial sorted-row-id engine and the blocked
// bitset engine return identical answers — counts, row lists, and above
// all the *keys* produced by SRK / OSRK / SSRK, with 0, 1 and N pool
// threads. Any divergence here is a bug by definition (docs/algorithms.md
// "Determinism contract").

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/bitset_conformity.h"
#include "core/conformity.h"
#include "core/osrk.h"
#include "core/row_bitmap.h"
#include "core/srk.h"
#include "core/ssrk.h"
#include "tests/test_util.h"

namespace cce {
namespace {

// ------------------------------------------------------------- RowBitmap

TEST(RowBitmapTest, SetTestClearCount) {
  RowBitmap bits(200);
  EXPECT_EQ(bits.Count(), 0u);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(199);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_FALSE(bits.Test(62));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Clear(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
  EXPECT_EQ(bits.ToRows(), (std::vector<size_t>{0, 64, 199}));
}

TEST(RowBitmapTest, CountPrefix) {
  RowBitmap bits(300);
  for (size_t row = 0; row < 300; row += 3) bits.Set(row);
  size_t expected = 0;
  for (size_t limit = 0; limit <= 300; ++limit) {
    EXPECT_EQ(bits.CountPrefix(limit), expected) << "limit " << limit;
    if (limit < 300 && limit % 3 == 0) ++expected;
  }
  // A limit beyond size() clamps.
  EXPECT_EQ(bits.CountPrefix(10'000), bits.Count());
}

TEST(RowBitmapTest, ResizePreservesAndClearsTail) {
  RowBitmap bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  bits.Resize(130);
  EXPECT_EQ(bits.Count(), 70u);  // new rows arrive clear
  bits.Resize(65);
  EXPECT_EQ(bits.Count(), 65u);  // shrink drops the tail bits
  bits.Resize(128);
  EXPECT_EQ(bits.Count(), 65u);  // dropped bits stay dropped
}

TEST(RowBitmapTest, AndCountMatchesSerialUnderEveryPoolWidth) {
  // Big enough to exceed kShardWords so the pool path actually shards.
  const size_t rows = (RowBitmap::kShardWords + 37) * 64;
  RowBitmap a(rows);
  RowBitmap b(rows);
  Rng rng(7);
  for (size_t row = 0; row < rows; ++row) {
    if (rng.Bernoulli(0.4)) a.Set(row);
    if (rng.Bernoulli(0.6)) b.Set(row);
  }
  const size_t serial = RowBitmap::AndCount(a, b);
  for (size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    uint64_t shards = 0;
    EXPECT_EQ(RowBitmap::AndCount(a, b, &pool, &shards), serial)
        << threads << " threads";
    EXPECT_GT(shards, 0u);
  }
}

TEST(RowBitmapTest, AndNotAndCount) {
  RowBitmap a(100), b(100), c(100);
  for (size_t row = 0; row < 100; ++row) {
    if (row % 2 == 0) a.Set(row);
    if (row % 4 == 0) b.Set(row);
    if (row < 50) c.Set(row);
  }
  // a & ~b & c = even rows, not multiples of 4, below 50: 2,6,...,46.
  EXPECT_EQ(RowBitmap::AndNotAndCount(a, b, c), 12u);
}

// ------------------------------------- checker parity on random contexts

/// Exercises every query of both engines on the same (x0, y0, E) and fails
/// on the first divergence.
void ExpectCheckersAgree(const ConformityChecker& reference,
                         const BitsetConformityChecker& bitset,
                         const Instance& x0, Label y0, const FeatureSet& e,
                         const std::string& what) {
  EXPECT_EQ(reference.AgreeingRows(x0, e), bitset.AgreeingRows(x0, e))
      << what;
  EXPECT_EQ(reference.CountViolators(x0, y0, e),
            bitset.CountViolators(x0, y0, e))
      << what;
  EXPECT_EQ(reference.Precision(x0, y0, e), bitset.Precision(x0, y0, e))
      << what;
  EXPECT_EQ(reference.CoveredRows(x0, y0, e), bitset.CoveredRows(x0, y0, e))
      << what;
  for (double alpha : {1.0, 0.9, 0.5, 0.0}) {
    EXPECT_EQ(reference.ViolatorBudget(alpha), bitset.ViolatorBudget(alpha))
        << what << " alpha=" << alpha;
    EXPECT_EQ(reference.IsAlphaConformant(x0, y0, e, alpha),
              bitset.IsAlphaConformant(x0, y0, e, alpha))
        << what << " alpha=" << alpha;
  }
}

TEST(BitsetParityTest, RandomizedQueriesAgreeWithReference) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Dataset context = testing::RandomContext(600, 8, 4, seed);
    ConformityChecker reference(&context);
    ThreadPool pool(3);
    BitsetConformityChecker::Options options;
    options.pool = &pool;
    BitsetConformityChecker bitset(&context, options);
    Rng rng(seed * 101);
    for (int q = 0; q < 50; ++q) {
      Instance x0 = context.instance(rng.Uniform(context.size()));
      if (rng.Bernoulli(0.3)) {
        x0[rng.Uniform(x0.size())] = static_cast<ValueId>(rng.Uniform(4));
      }
      const Label y0 = static_cast<Label>(rng.Uniform(2));
      FeatureSet e;
      for (FeatureId f = 0; f < 8; ++f) {
        if (rng.Bernoulli(0.35)) e.push_back(f);
      }
      ExpectCheckersAgree(reference, bitset, x0, y0, e,
                          "seed " + std::to_string(seed) + " query " +
                              std::to_string(q));
    }
  }
}

TEST(BitsetParityTest, UnseenValueAndLabel) {
  testing::Fig2Context fig2;
  ConformityChecker reference(&fig2.context);
  BitsetConformityChecker bitset(&fig2.context);
  Instance alien = fig2.context.instance(0);
  alien[fig2.income] = 999;  // never interned
  ExpectCheckersAgree(reference, bitset, alien, fig2.denied, {fig2.income},
                      "unseen value");
  // A label id beyond anything in the context: every agreeing row violates.
  const Instance& x0 = fig2.context.instance(0);
  EXPECT_EQ(bitset.CountViolators(x0, 77, {fig2.credit}),
            reference.CountViolators(x0, 77, {fig2.credit}));
}

TEST(BitsetParityTest, IncrementalMaintenanceMatchesRebuild) {
  Dataset full = testing::RandomContext(400, 6, 3, 11);
  // Start from the first half, stream in the second, then slide out the
  // first 100 rows — the rolling-window life cycle.
  Dataset prefix = full.Prefix(200);
  BitsetConformityChecker bitset(&prefix);
  for (size_t row = 200; row < full.size(); ++row) {
    bitset.AddRow(full.instance(row), full.label(row));
  }
  for (size_t row = 0; row < 100; ++row) bitset.RemoveRow(row);
  EXPECT_EQ(bitset.live_rows(), 300u);
  EXPECT_EQ(bitset.allocated_rows(), 400u);

  // Reference over the equivalent live window (row ids differ, counts
  // cannot).
  std::vector<size_t> live_rows_list;
  for (size_t row = 100; row < 400; ++row) live_rows_list.push_back(row);
  Dataset window = full.Subset(live_rows_list);
  ConformityChecker reference(&window);
  Rng rng(12);
  for (int q = 0; q < 40; ++q) {
    Instance x0 = full.instance(rng.Uniform(full.size()));
    const Label y0 = static_cast<Label>(rng.Uniform(2));
    FeatureSet e;
    for (FeatureId f = 0; f < 6; ++f) {
      if (rng.Bernoulli(0.4)) e.push_back(f);
    }
    EXPECT_EQ(bitset.CountViolators(x0, y0, e),
              reference.CountViolators(x0, y0, e))
        << "query " << q;
    EXPECT_EQ(bitset.Precision(x0, y0, e), reference.Precision(x0, y0, e));
    EXPECT_EQ(bitset.ViolatorBudget(0.9), reference.ViolatorBudget(0.9));
  }
}

// ----------------------------------------- key equivalence: SRK/OSRK/SSRK

TEST(EngineEquivalenceTest, SrkKeysIdenticalAcrossEngines) {
  for (uint64_t seed : {5u, 6u, 7u, 8u}) {
    Dataset context = testing::RandomContext(800, 10, 4, seed);
    for (double alpha : {1.0, 0.95, 0.8}) {
      for (size_t row : {size_t{0}, context.size() / 2, context.size() - 1}) {
        Srk::Options serial;
        serial.alpha = alpha;
        auto want = Srk::Explain(context, row, serial);
        ASSERT_TRUE(want.ok());

        for (size_t threads : {0u, 1u, 4u}) {
          Srk::Options par;
          par.alpha = alpha;
          par.parallel_conformity = true;
          ThreadPool pool(threads == 0 ? 1 : threads);
          par.pool = threads == 0 ? nullptr : &pool;
          Srk::EngineStats stats;
          par.stats = &stats;
          auto got = Srk::Explain(context, row, par);
          ASSERT_TRUE(got.ok());
          const std::string what = "seed " + std::to_string(seed) +
                                   " alpha " + std::to_string(alpha) +
                                   " row " + std::to_string(row) +
                                   " threads " + std::to_string(threads);
          EXPECT_EQ(want->key, got->key) << what;
          EXPECT_EQ(want->pick_order, got->pick_order) << what;
          EXPECT_EQ(want->achieved_alpha, got->achieved_alpha) << what;
          EXPECT_EQ(want->satisfied, got->satisfied) << what;
          EXPECT_EQ(want->degraded, got->degraded) << what;
          EXPECT_EQ(stats.bitmap_builds.load(), 1u) << what;
        }
      }
    }
  }
}

TEST(EngineEquivalenceTest, OsrkKeysIdenticalAcrossEngines) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    Dataset stream = testing::RandomContext(3000, 8, 3, seed);
    const Instance x0 = stream.instance(0);
    const Label y0 = stream.label(0);

    Osrk::Options serial;
    serial.alpha = 0.97;
    serial.seed = seed;
    auto want = Osrk::Create(stream.schema_ptr(), x0, y0, serial);
    ASSERT_TRUE(want.ok());

    ThreadPool pool(4);
    Osrk::Options par = serial;
    par.parallel_conformity = true;
    par.pool = &pool;
    auto got = Osrk::Create(stream.schema_ptr(), x0, y0, par);
    ASSERT_TRUE(got.ok());

    for (size_t row = 1; row < stream.size(); ++row) {
      const FeatureSet& want_key =
          (*want)->Observe(stream.instance(row), stream.label(row));
      const FeatureSet& got_key =
          (*got)->Observe(stream.instance(row), stream.label(row));
      ASSERT_EQ(want_key, got_key) << "seed " << seed << " arrival " << row;
    }
    EXPECT_EQ((*want)->achieved_alpha(), (*got)->achieved_alpha());
    EXPECT_EQ((*want)->satisfied(), (*got)->satisfied());
  }
}

TEST(EngineEquivalenceTest, SsrkKeysAndPotentialIdenticalAcrossEngines) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    Dataset universe = testing::RandomContext(1000, 8, 3, seed);
    const Instance x0 = universe.instance(0);
    const Label y0 = universe.label(0);

    Ssrk::Options serial;
    serial.alpha = 0.98;
    auto want = Ssrk::Create(universe, x0, y0, serial);
    ASSERT_TRUE(want.ok());

    for (size_t threads : {0u, 4u}) {
      ThreadPool pool(threads == 0 ? 1 : threads);
      Ssrk::Options par = serial;
      par.parallel_conformity = true;
      par.pool = threads == 0 ? nullptr : &pool;
      auto got = Ssrk::Create(universe, x0, y0, par);
      ASSERT_TRUE(got.ok());
      // Φ must match bit-for-bit from construction on: the chunked
      // accumulation order is the same on both engines.
      ASSERT_EQ((*want)->log_potential(), (*got)->log_potential());

      auto fresh = Ssrk::Create(universe, x0, y0, serial);
      ASSERT_TRUE(fresh.ok());
      Rng order(seed * 7);
      std::vector<size_t> arrival(universe.size());
      for (size_t i = 0; i < arrival.size(); ++i) arrival[i] = i;
      order.Shuffle(&arrival);
      for (size_t row : arrival) {
        const FeatureSet& want_key =
            (*fresh)->Observe(universe.instance(row), universe.label(row));
        const FeatureSet& got_key =
            (*got)->Observe(universe.instance(row), universe.label(row));
        ASSERT_EQ(want_key, got_key)
            << "seed " << seed << " threads " << threads << " row " << row;
        ASSERT_EQ((*fresh)->log_potential(), (*got)->log_potential())
            << "seed " << seed << " threads " << threads << " row " << row;
      }
      EXPECT_EQ((*fresh)->achieved_alpha(), (*got)->achieved_alpha());
      EXPECT_EQ((*fresh)->satisfied(), (*got)->satisfied());
    }
  }
}

}  // namespace
}  // namespace cce
