// TSan stress for the bitset conformity engine (ISSUE 5, satellite 5):
// concurrent Explain traffic on a proxy running the parallel engine while
// Record traffic slides the context window, and concurrent queries on a
// shared BitsetConformityChecker while a writer drives incremental bitmap
// maintenance under the documented external lock. Run under
// SUITE=stress (ThreadSanitizer + CCE_STRESS=1 scaling).

#include <atomic>
#include <cstdlib>
#include <shared_mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/bitset_conformity.h"
#include "core/conformity.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce {
namespace {

size_t Scaled(size_t base, size_t stress) {
  return std::getenv("CCE_STRESS") != nullptr ? stress : base;
}

int64_t CounterValue(const obs::Registry& registry, const std::string& name) {
  for (const auto& family : registry.Collect()) {
    if (family.name != name) continue;
    int64_t total = 0;
    for (const auto& sample : family.samples) total += sample.value;
    return total;
  }
  return -1;
}

TEST(ConformityStressTest, ConcurrentExplainAgainstRecord) {
  Dataset data = testing::RandomContext(2000, 8, 4, 99);
  serving::ExplainableProxy::Options options;
  options.context_capacity = 512;  // the window slides during the run
  options.parallel_conformity = true;
  options.conformity_threads = 4;
  options.monitor_drift = false;
  auto proxy =
      serving::ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < 256; ++row) {
    ASSERT_TRUE((*proxy)->Record(data.instance(row), data.label(row)).ok());
  }

  const size_t explains_per_thread = Scaled(30, 150);
  const size_t records_per_thread = Scaled(500, 4000);
  constexpr int kExplainers = 3;
  constexpr int kRecorders = 2;
  std::atomic<size_t> ok_explains{0};
  std::atomic<size_t> ok_records{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kExplainers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (size_t i = 0; i < explains_per_thread; ++i) {
        const size_t row = rng.Uniform(data.size());
        auto key = (*proxy)->Explain(data.instance(row), data.label(row));
        if (key.ok()) ok_explains.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < kRecorders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(2000 + t);
      for (size_t i = 0; i < records_per_thread; ++i) {
        const size_t row = rng.Uniform(data.size());
        if ((*proxy)->Record(data.instance(row), data.label(row)).ok()) {
          ok_records.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok_explains.load(), kExplainers * explains_per_thread);
  EXPECT_EQ(ok_records.load(), kRecorders * records_per_thread);
  // Every Explain went through the bitset engine: one bitmap build each.
  EXPECT_EQ(CounterValue((*proxy)->registry(), "cce_bitmap_rebuilds_total"),
            static_cast<int64_t>(ok_explains.load()));
}

TEST(ConformityStressTest, ConcurrentQueriesAgainstIncrementalMaintenance) {
  Dataset data = testing::RandomContext(3000, 6, 3, 123);
  Dataset seed_window = data.Prefix(512);
  BitsetConformityChecker checker(&seed_window);

  // The documented contract: const queries may run concurrently; mutation
  // requires external synchronisation. A shared_mutex encodes exactly that,
  // and TSan verifies the engine doesn't touch shared state outside it.
  std::shared_mutex mu;
  std::atomic<bool> done{false};
  std::atomic<size_t> queries{0};
  const size_t slides = Scaled(400, 3000);

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(500 + t);
      while (!done.load(std::memory_order_acquire)) {
        const Instance x0 = data.instance(rng.Uniform(data.size()));
        const Label y0 = static_cast<Label>(rng.Uniform(2));
        FeatureSet e;
        for (FeatureId f = 0; f < 6; ++f) {
          if (rng.Bernoulli(0.4)) e.push_back(f);
        }
        std::shared_lock<std::shared_mutex> lock(mu);
        const size_t violators = checker.CountViolators(x0, y0, e);
        EXPECT_LE(violators, checker.live_rows());
        EXPECT_TRUE(checker.IsAlphaConformant(x0, y0, e, 0.0));
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: slide the window one row at a time, like the proxy's rolling
  // context does.
  size_t oldest = 0;
  for (size_t i = 0; i < slides; ++i) {
    const size_t row = 512 + (i % (data.size() - 512));
    std::unique_lock<std::shared_mutex> lock(mu);
    checker.AddRow(data.instance(row), data.label(row));
    checker.RemoveRow(oldest++);
  }
  // On a loaded box the writer can finish every slide before a reader is
  // even scheduled; hold the run open until at least one query completed
  // so the queries > 0 assertion cannot flake.
  while (queries.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(queries.load(), 0u);
  {
    std::shared_lock<std::shared_mutex> lock(mu);
    EXPECT_EQ(checker.live_rows(), 512u);
    EXPECT_EQ(checker.allocated_rows(), 512u + slides);
  }
}

}  // namespace
}  // namespace cce
