#include "core/conformity.h"

#include <gtest/gtest.h>

#include "core/enumerate.h"
#include "tests/test_util.h"

namespace cce {
namespace {

/// Brute-force violator count straight from the definition (paper Section
/// 3.1): rows agreeing with x0 on every feature of E yet predicted
/// differently. The oracle both engines must match.
size_t OracleViolators(const Context& context, const Instance& x0, Label y0,
                       const FeatureSet& e) {
  size_t count = 0;
  for (size_t row = 0; row < context.size(); ++row) {
    bool agrees = true;
    for (FeatureId f : e) {
      if (context.value(row, f) != x0[f]) {
        agrees = false;
        break;
      }
    }
    if (agrees && context.label(row) != y0) ++count;
  }
  return count;
}

class ConformityTest : public ::testing::Test {
 protected:
  testing::Fig2Context fig2_;
};

TEST_F(ConformityTest, EmptyExplanationAgreesWithEveryRow) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  EXPECT_EQ(checker.AgreeingRows(x0, {}).size(), 7u);
}

TEST_F(ConformityTest, AgreeingRowsForCredit) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  // Credit = poor matches x0..x4.
  std::vector<size_t> rows = checker.AgreeingRows(x0, {fig2_.credit});
  EXPECT_EQ(rows, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST_F(ConformityTest, ViolatorsOfEmptyExplanation) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  // x1, x5, x6 are approved.
  EXPECT_EQ(checker.CountViolators(x0, fig2_.denied, {}), 3u);
}

TEST_F(ConformityTest, PaperKeyHasNoViolators) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  FeatureSet key = {fig2_.income, fig2_.credit};
  std::sort(key.begin(), key.end());
  EXPECT_EQ(checker.CountViolators(x0, fig2_.denied, key), 0u);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, fig2_.denied, key, 1.0));
  EXPECT_DOUBLE_EQ(checker.Precision(x0, fig2_.denied, key), 1.0);
}

TEST_F(ConformityTest, CreditAloneIsSixSeventhsConformant) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  FeatureSet credit_only = {fig2_.credit};
  EXPECT_EQ(checker.CountViolators(x0, fig2_.denied, credit_only), 1u);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, fig2_.denied, credit_only,
                                        6.0 / 7.0));
  EXPECT_FALSE(checker.IsAlphaConformant(x0, fig2_.denied, credit_only,
                                         1.0));
  EXPECT_NEAR(checker.Precision(x0, fig2_.denied, credit_only), 6.0 / 7.0,
              1e-12);
}

TEST_F(ConformityTest, ViolatorBudget) {
  ConformityChecker checker(&fig2_.context);
  EXPECT_EQ(checker.ViolatorBudget(1.0), 0u);
  EXPECT_EQ(checker.ViolatorBudget(6.0 / 7.0), 1u);
  EXPECT_EQ(checker.ViolatorBudget(0.5), 3u);
}

TEST_F(ConformityTest, CoveredRowsShareThePrediction) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  FeatureSet key = {fig2_.income, fig2_.credit};
  std::sort(key.begin(), key.end());
  // Agreeing on Income=3-4K & Credit=poor: x0, x2, x3 — all denied.
  EXPECT_EQ(checker.CoveredRows(x0, fig2_.denied, key),
            (std::vector<size_t>{0, 2, 3}));
}

TEST_F(ConformityTest, FullFeatureSetSeparatesDistinctInstances) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  FeatureSet all = {fig2_.gender, fig2_.income, fig2_.credit,
                    fig2_.dependent};
  std::sort(all.begin(), all.end());
  EXPECT_EQ(checker.CountViolators(x0, fig2_.denied, all), 0u);
}

TEST(ConformityEdgeTest, EmptyContext) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  Dataset empty(schema);
  ConformityChecker checker(&empty);
  Instance x0 = {0};
  EXPECT_EQ(checker.CountViolators(x0, 0, {}), 0u);
  EXPECT_DOUBLE_EQ(checker.Precision(x0, 0, {}), 1.0);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, 0, {}, 1.0));
}

TEST(ConformityEdgeTest, UnseenValueHasNoAgreeingRows) {
  testing::Fig2Context fig2;
  ConformityChecker checker(&fig2.context);
  Instance alien = fig2.context.instance(0);
  alien[fig2.income] = 999;  // value never interned in the context
  EXPECT_TRUE(checker.AgreeingRows(alien, {fig2.income}).empty());
  EXPECT_EQ(checker.CountViolators(alien, fig2.denied, {fig2.income}), 0u);
}

TEST(ConformityEdgeTest, ConflictingDuplicatesNeverConformant) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  Dataset context(schema);
  context.Add({0}, 0);
  context.Add({0}, 1);  // exact duplicate, different prediction
  ConformityChecker checker(&context);
  Instance x0 = {0};
  EXPECT_EQ(checker.CountViolators(x0, 0, {f}), 1u);
  EXPECT_FALSE(checker.IsAlphaConformant(x0, 0, {f}, 1.0));
  EXPECT_TRUE(checker.IsAlphaConformant(x0, 0, {f}, 0.5));
}

TEST(ConformityEdgeTest, AlphaZeroToleratesEveryViolator) {
  // alpha = 0 puts the whole context in the violator budget, so ANY key —
  // including the empty one — is conformant. The algorithms reject
  // alpha = 0 at their API boundary, but the checker's formulas must stay
  // well-defined there (the sweep code evaluates the full curve).
  testing::Fig2Context fig2;
  ConformityChecker checker(&fig2.context);
  EXPECT_EQ(checker.ViolatorBudget(0.0), fig2.context.size());
  const Instance& x0 = fig2.context.instance(0);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, fig2.denied, {}, 0.0));
  FeatureSet all = {fig2.gender, fig2.income, fig2.credit, fig2.dependent};
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(checker.IsAlphaConformant(x0, fig2.denied, all, 0.0));
}

TEST(ConformityEdgeTest, EmptyContextEveryAlpha) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  Dataset empty(schema);
  ConformityChecker checker(&empty);
  Instance x0 = {0};
  for (double alpha : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(checker.ViolatorBudget(alpha), 0u) << alpha;
    EXPECT_TRUE(checker.IsAlphaConformant(x0, 0, {f}, alpha)) << alpha;
  }
  EXPECT_TRUE(checker.CoveredRows(x0, 0, {}).empty());
}

TEST(ConformityEdgeTest, FullAttributeKeyCountsOnlyConflictingDuplicates) {
  // The key covering every attribute is the most conformant key that
  // exists: only exact duplicates of x0 with a different prediction can
  // still violate it. Checked against the brute-force oracle on a noisy
  // random context (duplicates guaranteed by the tiny domain).
  Dataset context = testing::RandomContext(500, 3, 2, 77, 0.3);
  ConformityChecker checker(&context);
  FeatureSet all = {0, 1, 2};
  for (size_t row = 0; row < context.size(); row += 25) {
    const Instance& x0 = context.instance(row);
    const Label y0 = context.label(row);
    EXPECT_EQ(checker.CountViolators(x0, y0, all),
              OracleViolators(context, x0, y0, all))
        << "row " << row;
    // And the full key's violator count is a lower bound for every subkey.
    EXPECT_LE(checker.CountViolators(x0, y0, all),
              checker.CountViolators(x0, y0, {0, 1}));
  }
}

TEST(ConformityEdgeTest, RandomQueriesMatchBruteForceOracle) {
  for (uint64_t seed : {41u, 42u}) {
    Dataset context = testing::RandomContext(300, 6, 3, seed);
    ConformityChecker checker(&context);
    Rng rng(seed + 7);
    for (int q = 0; q < 60; ++q) {
      Instance x0 = context.instance(rng.Uniform(context.size()));
      if (rng.Bernoulli(0.25)) {
        x0[rng.Uniform(x0.size())] = static_cast<ValueId>(rng.Uniform(3));
      }
      const Label y0 = static_cast<Label>(rng.Uniform(2));
      FeatureSet e;
      for (FeatureId f = 0; f < 6; ++f) {
        if (rng.Bernoulli(0.4)) e.push_back(f);
      }
      EXPECT_EQ(checker.CountViolators(x0, y0, e),
                OracleViolators(context, x0, y0, e))
          << "seed " << seed << " query " << q;
    }
  }
}

TEST(ConformityEdgeTest, EnumeratedMinimalKeysAreConformantAndMinimal) {
  // Cross-check against the hitting-set enumerator: every minimal key it
  // returns must be 1-conformant per the checker, and dropping any single
  // feature from it must break conformance (that is what minimal means).
  testing::Fig2Context fig2;
  ConformityChecker checker(&fig2.context);
  KeyEnumerator::Options options;
  auto keys = KeyEnumerator::EnumerateMinimalKeys(fig2.context, 0, options);
  ASSERT_TRUE(keys.ok());
  ASSERT_FALSE(keys->empty());
  const Instance& x0 = fig2.context.instance(0);
  for (const FeatureSet& key : *keys) {
    EXPECT_TRUE(checker.IsAlphaConformant(x0, fig2.denied, key, 1.0));
    for (FeatureId drop : key) {
      FeatureSet smaller;
      for (FeatureId f : key) {
        if (f != drop) smaller.push_back(f);
      }
      EXPECT_FALSE(checker.IsAlphaConformant(x0, fig2.denied, smaller, 1.0))
          << "dropping feature " << drop << " kept the key conformant";
    }
  }
}

}  // namespace
}  // namespace cce
