#include "core/conformity.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cce {
namespace {

class ConformityTest : public ::testing::Test {
 protected:
  testing::Fig2Context fig2_;
};

TEST_F(ConformityTest, EmptyExplanationAgreesWithEveryRow) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  EXPECT_EQ(checker.AgreeingRows(x0, {}).size(), 7u);
}

TEST_F(ConformityTest, AgreeingRowsForCredit) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  // Credit = poor matches x0..x4.
  std::vector<size_t> rows = checker.AgreeingRows(x0, {fig2_.credit});
  EXPECT_EQ(rows, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST_F(ConformityTest, ViolatorsOfEmptyExplanation) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  // x1, x5, x6 are approved.
  EXPECT_EQ(checker.CountViolators(x0, fig2_.denied, {}), 3u);
}

TEST_F(ConformityTest, PaperKeyHasNoViolators) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  FeatureSet key = {fig2_.income, fig2_.credit};
  std::sort(key.begin(), key.end());
  EXPECT_EQ(checker.CountViolators(x0, fig2_.denied, key), 0u);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, fig2_.denied, key, 1.0));
  EXPECT_DOUBLE_EQ(checker.Precision(x0, fig2_.denied, key), 1.0);
}

TEST_F(ConformityTest, CreditAloneIsSixSeventhsConformant) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  FeatureSet credit_only = {fig2_.credit};
  EXPECT_EQ(checker.CountViolators(x0, fig2_.denied, credit_only), 1u);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, fig2_.denied, credit_only,
                                        6.0 / 7.0));
  EXPECT_FALSE(checker.IsAlphaConformant(x0, fig2_.denied, credit_only,
                                         1.0));
  EXPECT_NEAR(checker.Precision(x0, fig2_.denied, credit_only), 6.0 / 7.0,
              1e-12);
}

TEST_F(ConformityTest, ViolatorBudget) {
  ConformityChecker checker(&fig2_.context);
  EXPECT_EQ(checker.ViolatorBudget(1.0), 0u);
  EXPECT_EQ(checker.ViolatorBudget(6.0 / 7.0), 1u);
  EXPECT_EQ(checker.ViolatorBudget(0.5), 3u);
}

TEST_F(ConformityTest, CoveredRowsShareThePrediction) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  FeatureSet key = {fig2_.income, fig2_.credit};
  std::sort(key.begin(), key.end());
  // Agreeing on Income=3-4K & Credit=poor: x0, x2, x3 — all denied.
  EXPECT_EQ(checker.CoveredRows(x0, fig2_.denied, key),
            (std::vector<size_t>{0, 2, 3}));
}

TEST_F(ConformityTest, FullFeatureSetSeparatesDistinctInstances) {
  ConformityChecker checker(&fig2_.context);
  const Instance& x0 = fig2_.context.instance(0);
  FeatureSet all = {fig2_.gender, fig2_.income, fig2_.credit,
                    fig2_.dependent};
  std::sort(all.begin(), all.end());
  EXPECT_EQ(checker.CountViolators(x0, fig2_.denied, all), 0u);
}

TEST(ConformityEdgeTest, EmptyContext) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  Dataset empty(schema);
  ConformityChecker checker(&empty);
  Instance x0 = {0};
  EXPECT_EQ(checker.CountViolators(x0, 0, {}), 0u);
  EXPECT_DOUBLE_EQ(checker.Precision(x0, 0, {}), 1.0);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, 0, {}, 1.0));
}

TEST(ConformityEdgeTest, UnseenValueHasNoAgreeingRows) {
  testing::Fig2Context fig2;
  ConformityChecker checker(&fig2.context);
  Instance alien = fig2.context.instance(0);
  alien[fig2.income] = 999;  // value never interned in the context
  EXPECT_TRUE(checker.AgreeingRows(alien, {fig2.income}).empty());
  EXPECT_EQ(checker.CountViolators(alien, fig2.denied, {fig2.income}), 0u);
}

TEST(ConformityEdgeTest, ConflictingDuplicatesNeverConformant) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  Dataset context(schema);
  context.Add({0}, 0);
  context.Add({0}, 1);  // exact duplicate, different prediction
  ConformityChecker checker(&context);
  Instance x0 = {0};
  EXPECT_EQ(checker.CountViolators(x0, 0, {f}), 1u);
  EXPECT_FALSE(checker.IsAlphaConformant(x0, 0, {f}, 1.0));
  EXPECT_TRUE(checker.IsAlphaConformant(x0, 0, {f}, 0.5));
}

}  // namespace
}  // namespace cce
