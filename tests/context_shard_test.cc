#include "serving/context_shard.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ContextShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = std::make_unique<Dataset>(
        cce::testing::RandomContext(100, 4, 2, 31, /*noise=*/0.0));
  }

  std::string MakeDir(const std::string& tag) {
    const std::string dir = ::testing::TempDir() + "/cce_shard_" + tag;
    std::remove((dir + "/context.wal").c_str());
    std::remove((dir + "/context.snapshot").c_str());
    CCE_CHECK_OK(io::Env::Default()->CreateDir(dir));
    return dir;
  }

  ContextShard::Options ShardOptions(const std::string& dir,
                                     io::Env* env = nullptr) {
    ContextShard::Options options;
    options.wal_path = dir + "/context.wal";
    options.snapshot_path = dir + "/context.snapshot";
    options.env = env;
    options.compact_threshold_bytes = 0;  // tests compact explicitly
    return options;
  }

  std::unique_ptr<Dataset> data_;
};

TEST_F(ContextShardTest, RecordRecoverRoundTrip) {
  const std::string dir = MakeDir("roundtrip");
  std::atomic<uint64_t> seq{0};
  {
    ContextShard shard(data_->schema_ptr(), ShardOptions(dir), {});
    CCE_CHECK_OK(shard.Recover(&seq));
    for (size_t i = 0; i < 20; ++i) {
      CCE_CHECK_OK(shard.Record(data_->instance(i), data_->label(i), &seq));
    }
    EXPECT_EQ(shard.total_recorded(), 20u);
    EXPECT_EQ(shard.window_size(), 20u);
    EXPECT_EQ(shard.front_seq(), 0u);
  }
  std::atomic<uint64_t> seq2{0};
  ContextShard revived(data_->schema_ptr(), ShardOptions(dir), {});
  CCE_CHECK_OK(revived.Recover(&seq2));
  EXPECT_EQ(revived.state(), ContextShard::State::kActive);
  EXPECT_EQ(revived.total_recorded(), 20u);
  std::vector<ContextShard::Row> rows;
  revived.SnapshotInto(&rows);
  ASSERT_EQ(rows.size(), 20u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].x, data_->instance(i));
    EXPECT_EQ(rows[i].y, data_->label(i));
    EXPECT_EQ(rows[i].seq, i) << "replay order assigns fresh global seqs";
  }
}

TEST_F(ContextShardTest, TornCompactionDoesNotDuplicateRows) {
  const std::string dir = MakeDir("torn_compaction");
  std::atomic<uint64_t> seq{0};
  std::string pre_compaction_wal;
  {
    ContextShard shard(data_->schema_ptr(), ShardOptions(dir), {});
    CCE_CHECK_OK(shard.Recover(&seq));
    for (size_t i = 0; i < 12; ++i) {
      CCE_CHECK_OK(shard.Record(data_->instance(i), data_->label(i), &seq));
    }
    pre_compaction_wal = ReadFileBytes(dir + "/context.wal");
    CCE_CHECK_OK(shard.Compact());
  }
  // Reconstruct the crash window between the snapshot rename and the WAL
  // reset: the snapshot says "covers 12" while the log still holds those
  // 12 frames.
  WriteFileBytes(dir + "/context.wal", pre_compaction_wal);

  std::atomic<uint64_t> seq2{0};
  ContextShard revived(data_->schema_ptr(), ShardOptions(dir), {});
  CCE_CHECK_OK(revived.Recover(&seq2));
  EXPECT_EQ(revived.state(), ContextShard::State::kActive);
  EXPECT_EQ(revived.total_recorded(), 12u)
      << "frames the snapshot already covers must not be double-counted";
  std::vector<ContextShard::Row> rows;
  revived.SnapshotInto(&rows);
  ASSERT_EQ(rows.size(), 12u) << "no duplicated rows after torn compaction";
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].x, data_->instance(i));
  }
}

TEST_F(ContextShardTest, UnreadableFilesQuarantineNotFail) {
  const std::string dir = MakeDir("quarantine");
  std::atomic<uint64_t> seq{0};
  {
    ContextShard shard(data_->schema_ptr(), ShardOptions(dir), {});
    CCE_CHECK_OK(shard.Recover(&seq));
    for (size_t i = 0; i < 8; ++i) {
      CCE_CHECK_OK(shard.Record(data_->instance(i), data_->label(i), &seq));
    }
  }
  io::FaultInjectingEnv fault(io::Env::Default());
  fault.FailNextRead();  // EIO on the first recovery read
  ContextShard revived(data_->schema_ptr(), ShardOptions(dir, &fault), {});
  // I/O damage must not fail recovery — it quarantines instead.
  CCE_CHECK_OK(revived.Recover(&seq));
  EXPECT_EQ(revived.state(), ContextShard::State::kQuarantined);
  EXPECT_FALSE(revived.quarantine_reason().empty());
  EXPECT_EQ(revived.window_size(), 0u);

  Status refused = revived.Record(data_->instance(0), data_->label(0), &seq);
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.message().find("RepairShard"), std::string::npos);
}

TEST_F(ContextShardTest, CorruptSnapshotQuarantinesAndRepairRestores) {
  const std::string dir = MakeDir("repair");
  std::atomic<uint64_t> seq{0};
  {
    ContextShard shard(data_->schema_ptr(), ShardOptions(dir), {});
    CCE_CHECK_OK(shard.Recover(&seq));
    for (size_t i = 0; i < 8; ++i) {
      CCE_CHECK_OK(shard.Record(data_->instance(i), data_->label(i), &seq));
    }
    CCE_CHECK_OK(shard.Compact());
  }
  WriteFileBytes(dir + "/context.snapshot", "CCESNAP 1\ncovers zero\n");

  ContextShard revived(data_->schema_ptr(), ShardOptions(dir), {});
  CCE_CHECK_OK(revived.Recover(&seq));
  ASSERT_EQ(revived.state(), ContextShard::State::kQuarantined);

  EXPECT_EQ(revived.Repair().code(), StatusCode::kOk);
  EXPECT_EQ(revived.state(), ContextShard::State::kActive);
  EXPECT_TRUE(revived.quarantine_reason().empty());
  EXPECT_EQ(revived.total_recorded(), 0u) << "repair starts a fresh "
                                             "generation";
  CCE_CHECK_OK(revived.Record(data_->instance(0), data_->label(0), &seq));
  EXPECT_EQ(revived.total_recorded(), 1u);
  // Repairing a healthy shard is an error.
  EXPECT_EQ(revived.Repair().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ContextShardTest, FailedFsyncPoisonsThenCompactionHeals) {
  const std::string dir = MakeDir("fsyncgate");
  io::FaultInjectingEnv fault(io::Env::Default());
  std::atomic<uint64_t> seq{0};
  ContextShard shard(data_->schema_ptr(), ShardOptions(dir, &fault), {});
  CCE_CHECK_OK(shard.Recover(&seq));
  for (size_t i = 0; i < 5; ++i) {
    CCE_CHECK_OK(shard.Record(data_->instance(i), data_->label(i), &seq));
  }

  fault.FailNextSync();
  Status not_durable =
      shard.Record(data_->instance(5), data_->label(5), &seq);
  // With sync_every=1 the failed fsync surfaces through the append itself.
  EXPECT_EQ(not_durable.code(), StatusCode::kIoError);
  EXPECT_EQ(shard.state(), ContextShard::State::kReadOnly);
  EXPECT_TRUE(shard.wal_poisoned());
  EXPECT_EQ(shard.total_recorded(), 5u)
      << "a record that may not be on disk must not count as recorded";

  // The next Record first rewrites the log via compaction, then succeeds.
  CCE_CHECK_OK(shard.Record(data_->instance(5), data_->label(5), &seq));
  EXPECT_EQ(shard.state(), ContextShard::State::kActive);
  EXPECT_FALSE(shard.wal_poisoned());
  EXPECT_EQ(shard.total_recorded(), 6u);

  // And the healed generation recovers everything.
  std::atomic<uint64_t> seq2{0};
  ContextShard revived(data_->schema_ptr(), ShardOptions(dir), {});
  CCE_CHECK_OK(revived.Recover(&seq2));
  EXPECT_EQ(revived.total_recorded(), 6u);
}

TEST_F(ContextShardTest, FailedSnapshotSaveLeavesPreviousGenerationReadable) {
  const std::string dir = MakeDir("enospc");
  io::FaultInjectingEnv fault(io::Env::Default());
  std::atomic<uint64_t> seq{0};
  ContextShard shard(data_->schema_ptr(), ShardOptions(dir, &fault), {});
  CCE_CHECK_OK(shard.Recover(&seq));
  for (size_t i = 0; i < 10; ++i) {
    CCE_CHECK_OK(shard.Record(data_->instance(i), data_->label(i), &seq));
  }
  CCE_CHECK_OK(shard.Compact());  // snapshot covers 10, fresh log
  for (size_t i = 10; i < 15; ++i) {
    CCE_CHECK_OK(shard.Record(data_->instance(i), data_->label(i), &seq));
  }

  // ENOSPC during the snapshot rewrite: compaction fails, but the
  // previous snapshot and the current log generation stay intact.
  fault.ExhaustSpaceAfter(4);
  EXPECT_FALSE(shard.Compact().ok());
  fault.ReplenishSpace();
  EXPECT_EQ(shard.state(), ContextShard::State::kActive)
      << "a failed compaction is not a durability failure";

  std::atomic<uint64_t> seq2{0};
  ContextShard revived(data_->schema_ptr(), ShardOptions(dir), {});
  CCE_CHECK_OK(revived.Recover(&seq2));
  EXPECT_EQ(revived.state(), ContextShard::State::kActive);
  EXPECT_EQ(revived.total_recorded(), 15u)
      << "every record from before the failed compaction is recovered";
  std::vector<ContextShard::Row> rows;
  revived.SnapshotInto(&rows);
  ASSERT_EQ(rows.size(), 15u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].x, data_->instance(i));
  }
}

TEST_F(ContextShardTest, InMemoryShardNeedsNoFiles) {
  std::atomic<uint64_t> seq{0};
  ContextShard shard(data_->schema_ptr(), ContextShard::Options{}, {});
  CCE_CHECK_OK(shard.Recover(&seq));
  for (size_t i = 0; i < 4; ++i) {
    CCE_CHECK_OK(shard.Record(data_->instance(i), data_->label(i), &seq));
  }
  EXPECT_EQ(shard.window_size(), 4u);
  EXPECT_FALSE(shard.wal_poisoned());
  EXPECT_TRUE(shard.PopFront());
  EXPECT_EQ(shard.window_size(), 3u);
  EXPECT_EQ(shard.front_seq(), 1u);
}

TEST_F(ContextShardTest, ShardForIsStableAndInRange) {
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    for (size_t i = 0; i < data_->size(); ++i) {
      const size_t first = ContextShard::ShardFor(data_->instance(i),
                                                  num_shards);
      EXPECT_LT(first, num_shards);
      EXPECT_EQ(first, ContextShard::ShardFor(data_->instance(i),
                                              num_shards));
    }
  }
  // With several shards, a varied dataset must not all hash to one shard.
  std::vector<size_t> hits(4, 0);
  for (size_t i = 0; i < data_->size(); ++i) {
    ++hits[ContextShard::ShardFor(data_->instance(i), 4)];
  }
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 0u), 0)
      << "FNV-1a routing left a shard empty on 100 varied instances";
}

}  // namespace
}  // namespace cce::serving
