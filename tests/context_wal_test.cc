#include "io/context_wal.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "io/fault_env.h"

namespace cce::io {
namespace {

using RecordList = std::vector<std::pair<Instance, Label>>;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Opens `path` collecting every salvaged record; recovery must never fail.
RecordList Recover(const std::string& path,
                   ContextWal::RecoveryStats* stats = nullptr,
                   std::unique_ptr<ContextWal>* wal_out = nullptr) {
  RecordList records;
  auto collect = [&records](uint64_t, const Instance& x, Label y) {
    records.emplace_back(x, y);
    return Status::Ok();
  };
  auto wal = ContextWal::Open(path, {}, collect, stats);
  CCE_CHECK_OK(wal.status());
  if (wal_out != nullptr) *wal_out = std::move(wal).value();
  return records;
}

Instance MakeInstance(size_t i) {
  return {static_cast<ValueId>(i), static_cast<ValueId>(2 * i + 1),
          static_cast<ValueId>(100 + i)};
}

/// Writes `count` records into a fresh log at `path` and returns them.
RecordList BuildLog(const std::string& path, size_t count,
                    size_t sync_every = 1) {
  std::remove(path.c_str());
  ContextWal::Options options;
  options.sync_every = sync_every;
  auto wal = ContextWal::Open(path, options, nullptr, nullptr);
  CCE_CHECK_OK(wal.status());
  RecordList records;
  for (size_t i = 0; i < count; ++i) {
    records.emplace_back(MakeInstance(i), static_cast<Label>(i % 3));
    CCE_CHECK_OK(
        (*wal)->Append(records.back().first, records.back().second, i));
  }
  return records;
}

TEST(ContextWalTest, AppendReplayRoundTrip) {
  const std::string path = ::testing::TempDir() + "/wal_roundtrip.wal";
  RecordList written = BuildLog(path, 10);
  ContextWal::RecoveryStats stats;
  RecordList replayed = Recover(path, &stats);
  EXPECT_EQ(replayed, written);
  EXPECT_EQ(stats.records_recovered, 10u);
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(stats.bytes_discarded, 0u);
  std::remove(path.c_str());
}

TEST(ContextWalTest, FreshLogIsEmpty) {
  const std::string path = ::testing::TempDir() + "/wal_fresh.wal";
  std::remove(path.c_str());
  ContextWal::RecoveryStats stats;
  std::unique_ptr<ContextWal> wal;
  RecordList replayed = Recover(path, &stats, &wal);
  EXPECT_TRUE(replayed.empty());
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_GT(wal->size_bytes(), 0u) << "header must be on disk";
  std::remove(path.c_str());
}

TEST(ContextWalTest, SyncPolicyControlsFsyncCadence) {
  const std::string path = ::testing::TempDir() + "/wal_sync.wal";
  for (size_t sync_every : {size_t{1}, size_t{4}, size_t{0}}) {
    std::remove(path.c_str());
    ContextWal::Options options;
    options.sync_every = sync_every;
    auto wal = ContextWal::Open(path, options, nullptr, nullptr);
    CCE_CHECK_OK(wal.status());
    for (size_t i = 0; i < 8; ++i) {
      CCE_CHECK_OK((*wal)->Append(MakeInstance(i), 0, i));
    }
    // +1: opening a fresh log syncs the generation header once, under
    // every policy — the generation start itself must be durable.
    const uint64_t expected =
        1 + (sync_every == 0 ? 0u : 8u / static_cast<uint64_t>(sync_every));
    EXPECT_EQ((*wal)->fsyncs(), expected) << "sync_every=" << sync_every;
    CCE_CHECK_OK((*wal)->Sync());
    EXPECT_EQ((*wal)->fsyncs(), expected + 1) << "on-demand Sync";
  }
  std::remove(path.c_str());
}

TEST(ContextWalTest, ResetStartsANewGenerationWithTheGivenBase) {
  const std::string path = ::testing::TempDir() + "/wal_reset.wal";
  BuildLog(path, 6);
  std::unique_ptr<ContextWal> wal;
  Recover(path, nullptr, &wal);
  CCE_CHECK_OK(wal->Reset(6));
  EXPECT_EQ(wal->base_recorded(), 6u);
  CCE_CHECK_OK(wal->Append(MakeInstance(99), 1, 6));
  wal.reset();

  ContextWal::RecoveryStats stats;
  RecordList replayed = Recover(path, &stats);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].first, MakeInstance(99));
  EXPECT_EQ(stats.base_recorded, 6u);
  EXPECT_EQ(stats.records_dropped, 0u);
  std::remove(path.c_str());
}

TEST(ContextWalTest, AppendAfterRecoveryContinuesTheChain) {
  const std::string path = ::testing::TempDir() + "/wal_continue.wal";
  RecordList written = BuildLog(path, 5);
  {
    std::unique_ptr<ContextWal> wal;
    RecordList replayed = Recover(path, nullptr, &wal);
    EXPECT_EQ(replayed, written);
    written.emplace_back(MakeInstance(50), 2);
    CCE_CHECK_OK(
        wal->Append(written.back().first, written.back().second, 50));
  }
  EXPECT_EQ(Recover(path), written);
  std::remove(path.c_str());
}

/// Corruption-injection harness: every truncation point of a sample log
/// must salvage exactly the records whose frames are fully intact —
/// recovery never fails, and no partial frame is ever surfaced.
TEST(ContextWalCorruptionTest, EveryTruncationPointSalvagesTheIntactPrefix) {
  const std::string path = ::testing::TempDir() + "/wal_trunc_src.wal";
  const std::string victim = ::testing::TempDir() + "/wal_trunc.wal";
  const size_t kRecords = 8;
  RecordList written = BuildLog(path, kRecords);
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 24u);
  const size_t frame_size = (bytes.size() - 24) / kRecords;

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteFileBytes(victim, bytes.substr(0, cut));
    ContextWal::RecoveryStats stats;
    RecordList replayed = Recover(victim, &stats);

    // Salvaged = the number of complete frames before the cut.
    const size_t expected =
        cut < 24 ? 0 : std::min(kRecords, (cut - 24) / frame_size);
    ASSERT_EQ(replayed.size(), expected) << "cut at byte " << cut;
    for (size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(replayed[i], written[i]) << "cut at byte " << cut;
    }
    if (cut < bytes.size() && expected < kRecords &&
        (cut < 24 ? cut > 0 : (cut - 24) % frame_size != 0)) {
      EXPECT_GE(stats.records_dropped, 1u)
          << "a torn tail must be reported, cut at byte " << cut;
    }
    // The salvage truncation leaves a log that recovers identically.
    EXPECT_EQ(Recover(victim).size(), expected) << "cut at byte " << cut;
  }
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

/// Every single-bit flip must be caught: recovery returns OK with a strict
/// prefix of the original records and never accepts a mutated record.
TEST(ContextWalCorruptionTest, EverySingleBitFlipIsRejectedNotResurrected) {
  const std::string path = ::testing::TempDir() + "/wal_flip_src.wal";
  const std::string victim = ::testing::TempDir() + "/wal_flip.wal";
  const size_t kRecords = 6;
  RecordList written = BuildLog(path, kRecords);
  const std::string bytes = ReadFileBytes(path);

  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      WriteFileBytes(victim, flipped);
      ContextWal::RecoveryStats stats;
      RecordList replayed = Recover(victim, &stats);

      ASSERT_LT(replayed.size(), written.size())
          << "flip at byte " << byte << " bit " << bit
          << " went undetected";
      for (size_t i = 0; i < replayed.size(); ++i) {
        ASSERT_EQ(replayed[i], written[i])
            << "corrupt record surfaced after flip at byte " << byte;
      }
      EXPECT_GE(stats.records_dropped, 1u)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

/// A duplicated tail block is checksum-valid but out of sequence: recovery
/// must keep the original records and drop the replayed copy.
TEST(ContextWalCorruptionTest, DuplicatedTailBlockIsDropped) {
  const std::string path = ::testing::TempDir() + "/wal_dup.wal";
  const size_t kRecords = 5;
  RecordList written = BuildLog(path, kRecords);
  const std::string bytes = ReadFileBytes(path);
  const size_t frame_size = (bytes.size() - 24) / kRecords;
  const std::string last_frame = bytes.substr(bytes.size() - frame_size);
  WriteFileBytes(path, bytes + last_frame);

  ContextWal::RecoveryStats stats;
  RecordList replayed = Recover(path, &stats);
  EXPECT_EQ(replayed, written);
  EXPECT_GE(stats.records_dropped, 1u);
  EXPECT_EQ(stats.bytes_discarded, frame_size);
  std::remove(path.c_str());
}

/// Garbage instead of a log (wrong magic, random bytes) restarts cleanly.
TEST(ContextWalCorruptionTest, ForeignFileRestartsTheLog) {
  const std::string path = ::testing::TempDir() + "/wal_foreign.wal";
  WriteFileBytes(path, "this is not a wal at all, not even close\n");
  ContextWal::RecoveryStats stats;
  std::unique_ptr<ContextWal> wal;
  RecordList replayed = Recover(path, &stats, &wal);
  EXPECT_TRUE(replayed.empty());
  EXPECT_GE(stats.records_dropped, 1u);
  EXPECT_GT(stats.bytes_discarded, 0u);
  // The restarted log is fully functional.
  CCE_CHECK_OK(wal->Append(MakeInstance(1), 0, 0));
  wal.reset();
  EXPECT_EQ(Recover(path).size(), 1u);
  std::remove(path.c_str());
}

/// The fsyncgate discipline: after a failed fsync the kernel may have
/// dropped the dirty pages, so the log must refuse to accept (and claim
/// durability for) anything more until it is rewritten from scratch.
TEST(ContextWalPoisonTest, FailedFsyncPoisonsUntilReset) {
  const std::string path = ::testing::TempDir() + "/wal_poison.wal";
  std::remove(path.c_str());
  FaultInjectingEnv fault(Env::Default());
  ContextWal::Options options;
  options.env = &fault;
  auto wal = ContextWal::Open(path, options, nullptr, nullptr);
  CCE_CHECK_OK(wal.status());
  CCE_CHECK_OK((*wal)->Append(MakeInstance(0), 0, 0));

  fault.FailNextSync();
  // The frame lands but the cadence fsync fails: the append must not
  // report OK, and the log is poisoned from here on.
  EXPECT_EQ((*wal)->Append(MakeInstance(1), 0, 1).code(),
            StatusCode::kIoError);
  ASSERT_TRUE((*wal)->poisoned());

  // No append, no sync, no retry: everything fails fast while poisoned.
  Status refused = (*wal)->Append(MakeInstance(2), 0, 2);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.message().find("poisoned"), std::string::npos);
  EXPECT_EQ((*wal)->Sync().code(), StatusCode::kFailedPrecondition);

  // Reset rewrites the log on a fresh handle and clears the poisoning.
  CCE_CHECK_OK((*wal)->Reset(1));
  EXPECT_FALSE((*wal)->poisoned());
  CCE_CHECK_OK((*wal)->Append(MakeInstance(3), 1, 3));
  wal->reset();

  ContextWal::RecoveryStats stats;
  RecordList replayed = Recover(path, &stats);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].first, MakeInstance(3));
  EXPECT_EQ(stats.base_recorded, 1u);
  std::remove(path.c_str());
}

/// A failed append rolls the file back to the previous frame boundary; if
/// that rollback truncation *also* fails, a torn frame may be on disk and
/// the log poisons itself rather than appending after garbage.
TEST(ContextWalPoisonTest, FailedRollbackAfterTornAppendPoisons) {
  const std::string path = ::testing::TempDir() + "/wal_rollback.wal";
  std::remove(path.c_str());
  FaultInjectingEnv fault(Env::Default());
  ContextWal::Options options;
  options.env = &fault;
  auto wal = ContextWal::Open(path, options, nullptr, nullptr);
  CCE_CHECK_OK(wal.status());
  CCE_CHECK_OK((*wal)->Append(MakeInstance(0), 0, 0));

  fault.TearNextAppend(/*keep_bytes=*/5);
  fault.FailNextTruncate();  // the rollback fails too
  EXPECT_FALSE((*wal)->Append(MakeInstance(1), 0, 1).ok());
  EXPECT_TRUE((*wal)->poisoned());
  EXPECT_EQ((*wal)->Append(MakeInstance(2), 0, 2).code(),
            StatusCode::kFailedPrecondition);

  // Recovery still salvages the intact prefix behind the torn frame.
  wal->reset();
  ContextWal::RecoveryStats stats;
  RecordList replayed = Recover(path, &stats);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].first, MakeInstance(0));
  EXPECT_GE(stats.records_dropped, 1u);
  std::remove(path.c_str());
}

/// A failed append whose rollback *succeeds* leaves a clean, unpoisoned
/// log: the next append lands on the previous frame boundary.
TEST(ContextWalPoisonTest, SuccessfulRollbackKeepsTheLogClean) {
  const std::string path = ::testing::TempDir() + "/wal_clean_rollback.wal";
  std::remove(path.c_str());
  FaultInjectingEnv fault(Env::Default());
  ContextWal::Options options;
  options.env = &fault;
  auto wal = ContextWal::Open(path, options, nullptr, nullptr);
  CCE_CHECK_OK(wal.status());
  CCE_CHECK_OK((*wal)->Append(MakeInstance(0), 0, 0));
  const uint64_t size_before = (*wal)->size_bytes();

  fault.TearNextAppend(/*keep_bytes=*/3);
  EXPECT_FALSE((*wal)->Append(MakeInstance(1), 0, 1).ok());
  EXPECT_FALSE((*wal)->poisoned());
  EXPECT_EQ((*wal)->size_bytes(), size_before) << "rolled back";
  CCE_CHECK_OK((*wal)->Append(MakeInstance(2), 1, 2));
  wal->reset();

  RecordList replayed = Recover(path);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].first, MakeInstance(0));
  EXPECT_EQ(replayed[1].first, MakeInstance(2));
  std::remove(path.c_str());
}

TEST(ContextWalTest, OversizedInstanceIsRejected) {
  const std::string path = ::testing::TempDir() + "/wal_oversize.wal";
  std::remove(path.c_str());
  std::unique_ptr<ContextWal> wal;
  Recover(path, nullptr, &wal);
  Instance huge((1u << 24) / 4 + 1, 0);
  EXPECT_EQ(wal->Append(huge, 0, 0).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

/// Sequence numbers are caller-supplied and sparse (a sharded owner logs
/// only its own slice of the global order): gaps round-trip verbatim, and
/// a non-increasing sequence is rejected before touching the file.
TEST(ContextWalTest, SparseSequencesRoundTripAndStayMonotonic) {
  const std::string path = ::testing::TempDir() + "/wal_sparse.wal";
  std::remove(path.c_str());
  {
    auto wal = ContextWal::Open(path, {}, nullptr, nullptr);
    CCE_CHECK_OK(wal.status());
    CCE_CHECK_OK((*wal)->Append(MakeInstance(0), 0, 5));
    CCE_CHECK_OK((*wal)->Append(MakeInstance(1), 1, 9));
    CCE_CHECK_OK((*wal)->Append(MakeInstance(2), 2, 1000));
    EXPECT_EQ((*wal)->Append(MakeInstance(3), 0, 1000).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ((*wal)->Append(MakeInstance(3), 0, 999).code(),
              StatusCode::kInvalidArgument);
    CCE_CHECK_OK((*wal)->Append(MakeInstance(3), 0, 1001));
  }
  std::vector<uint64_t> seqs;
  auto collect = [&seqs](uint64_t seq, const Instance&, Label) {
    seqs.push_back(seq);
    return Status::Ok();
  };
  auto wal = ContextWal::Open(path, {}, collect, nullptr);
  CCE_CHECK_OK(wal.status());
  EXPECT_EQ(seqs, (std::vector<uint64_t>{5, 9, 1000, 1001}));
  // The recovered writer continues the monotonic chain.
  EXPECT_EQ((*wal)->Append(MakeInstance(4), 0, 7).code(),
            StatusCode::kInvalidArgument);
  CCE_CHECK_OK((*wal)->Append(MakeInstance(4), 0, 4096));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cce::io
