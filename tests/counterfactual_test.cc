#include "core/counterfactual.h"

#include <set>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cce {
namespace {

TEST(CounterfactualTest, ValidatesArguments) {
  testing::Fig2Context fig2;
  EXPECT_EQ(CounterfactualFinder::Find(fig2.context, 99, {})
                .status()
                .code(),
            StatusCode::kOutOfRange);
  CounterfactualFinder::Options bad;
  bad.max_witnesses = 0;
  EXPECT_FALSE(CounterfactualFinder::Find(fig2.context, 0, bad).ok());
  EXPECT_FALSE(CounterfactualFinder::FindForInstance(fig2.context,
                                                     Instance{0}, 0, {})
                   .ok());
}

TEST(CounterfactualTest, Fig2ClosestWitnessForX0) {
  // x0 is denied; the closest approved instances are x1 (differs only on
  // Income) and x6 (differs only on Credit) — both at distance 1.
  testing::Fig2Context fig2;
  auto witnesses = CounterfactualFinder::Find(fig2.context, 0, {});
  ASSERT_TRUE(witnesses.ok());
  ASSERT_GE(witnesses->size(), 2u);
  EXPECT_EQ((*witnesses)[0].changed_features.size(), 1u);
  EXPECT_EQ((*witnesses)[1].changed_features.size(), 1u);
  std::set<FeatureId> singles = {(*witnesses)[0].changed_features[0],
                                 (*witnesses)[1].changed_features[0]};
  EXPECT_TRUE(singles.count(fig2.income));
  EXPECT_TRUE(singles.count(fig2.credit));
  for (const auto& w : *witnesses) {
    EXPECT_EQ(w.witness_label, fig2.approved);
    EXPECT_NE(fig2.context.label(w.witness_row), fig2.denied);
  }
}

TEST(CounterfactualTest, WitnessesAreSortedByDistanceAndDistinct) {
  Dataset context = testing::RandomContext(300, 6, 3, 71);
  CounterfactualFinder::Options options;
  options.max_witnesses = 5;
  auto witnesses = CounterfactualFinder::Find(context, 0, options);
  ASSERT_TRUE(witnesses.ok());
  ASSERT_FALSE(witnesses->empty());
  std::set<FeatureSet> seen;
  size_t previous = 0;
  for (const auto& w : *witnesses) {
    EXPECT_GE(w.changed_features.size(), previous);
    previous = w.changed_features.size();
    EXPECT_TRUE(seen.insert(w.changed_features).second)
        << "duplicate change set";
    // The change set is exactly the disagreement set of the witness.
    const Instance& x0 = context.instance(0);
    for (FeatureId f = 0; f < context.num_features(); ++f) {
      bool differs =
          context.value(w.witness_row, f) != x0[f];
      EXPECT_EQ(differs, FeatureSetContains(w.changed_features, f));
    }
  }
}

TEST(CounterfactualTest, SingleClassContextHasNoWitness) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "u");
  schema->InternValue(f, "v");
  schema->InternLabel("only");
  Dataset context(schema);
  context.Add({0}, 0);
  context.Add({1}, 0);
  EXPECT_EQ(CounterfactualFinder::Find(context, 0, {}).status().code(),
            StatusCode::kNotFound);
}

TEST(CounterfactualTest, DuplicateWitnessDistanceZero) {
  // A conflicting duplicate is a distance-0 counterfactual: the context
  // proves the prediction is not a function of the features at all.
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  Dataset context(schema);
  context.Add({0}, 0);
  context.Add({0}, 1);
  auto witnesses = CounterfactualFinder::Find(context, 0, {});
  ASSERT_TRUE(witnesses.ok());
  ASSERT_EQ(witnesses->size(), 1u);
  EXPECT_TRUE((*witnesses)[0].changed_features.empty());
}

}  // namespace
}  // namespace cce
