#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "serving/context_shard.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

/// Kill-and-recover torture loop over a multi-shard durable proxy with a
/// seeded fault injector (torn writes, EIO, failed fsyncs, short reads) in
/// the I/O path. Invariants checked every iteration:
///
///   1. Create() never fails — I/O damage quarantines shards, it does not
///      kill the proxy.
///   2. Every record that was fsync-acknowledged (Record returned OK under
///      sync_every=1) is recovered, unless its shard was quarantined.
///   3. Surviving shards keep serving Record and Explain.
///   4. Explanations over a quarantine-degraded context say so.
///
/// Iterations default to 25 (tier-1 budget); `scripts/check.sh SUITE=crash`
/// exports CCE_CRASH_ITERS=200 for the full torture gate (ASan-clean).

struct OracleRow {
  Instance x;
  Label y = 0;
  bool operator==(const OracleRow& other) const {
    return x == other.x && y == other.y;
  }
};

/// True when `expected` is a subsequence of `actual` (order preserved;
/// resurrected rows — appended but not acknowledged before a fault — may
/// interleave).
bool IsSubsequence(const std::vector<OracleRow>& expected,
                   const std::vector<OracleRow>& actual) {
  size_t matched = 0;
  for (const OracleRow& row : actual) {
    if (matched < expected.size() && row == expected[matched]) ++matched;
  }
  return matched == expected.size();
}

size_t IterationBudget() {
  const char* raw = std::getenv("CCE_CRASH_ITERS");
  if (raw == nullptr) return 25;
  const long parsed = std::strtol(raw, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : 25;
}

TEST(CrashTortureTest, KillRecoverLoopNeverLosesAcknowledgedRecords) {
  const size_t kShards = 4;
  const size_t kIterations = IterationBudget();
  const std::string dir = ::testing::TempDir() + "/cce_crash_torture";
  // Start from a clean slate: remove any files a previous run left.
  {
    std::vector<std::string> names;
    if (io::Env::Default()->ListDir(dir, &names).ok()) {
      for (const std::string& name : names) {
        (void)io::Env::Default()->RemoveFile(dir + "/" + name);
      }
    }
  }

  Dataset data = cce::testing::RandomContext(300, 4, 2, 5, /*noise=*/0.1);
  Rng rng(20260807);
  // What must survive: per shard, the rows acknowledged as durable.
  std::vector<std::vector<OracleRow>> oracle(kShards);
  size_t quarantines_seen = 0;
  size_t repairs_done = 0;

  const uint64_t base_seed = cce::testing::FaultScheduleSeed(1000);
  for (size_t iter = 0; iter < kIterations; ++iter) {
    io::FaultInjectingEnv::Options fault_options;
    fault_options.seed = base_seed + iter;
    if (iter % 4 != 3) {  // every 4th iteration runs fault-free
      fault_options.write_error_probability = 0.02;
      fault_options.torn_write_probability = 0.01;
      fault_options.sync_error_probability = 0.01;
      // No short_read_probability here: a short read of a WAL is
      // indistinguishable from a torn tail, so salvage (correctly) drops
      // the suffix — that would fail the oracle without being a bug. Full
      // read errors quarantine instead, which the oracle excuses.
      fault_options.read_error_probability = 0.02;
    }
    io::FaultInjectingEnv fault(io::Env::Default(), fault_options);

    ExplainableProxy::Options options;
    options.monitor_drift = false;
    options.shards = kShards;
    options.durability.dir = dir;
    options.durability.sync_every = 1;
    options.durability.compact_threshold_bytes = 16 * 1024;
    options.durability.env = &fault;

    // Invariant 1: recovery is fail-soft, Create never fails.
    auto created = ExplainableProxy::Create(data.schema_ptr(), nullptr,
                                            options);
    ASSERT_TRUE(created.ok())
        << "iteration " << iter << " (CCE_FAULT_SEED="
        << fault_options.seed << "): " << created.status().ToString();
    ExplainableProxy& proxy = **created;

    // Invariant 2: acknowledged records of non-quarantined shards are back.
    HealthSnapshot health = proxy.Health();
    ASSERT_EQ(health.shards.size(), kShards);
    std::vector<std::vector<OracleRow>> recovered(kShards);
    Context merged = proxy.ContextSnapshot();
    for (size_t row = 0; row < merged.size(); ++row) {
      const size_t shard =
          ContextShard::ShardFor(merged.instance(row), kShards);
      recovered[shard].push_back(
          OracleRow{merged.instance(row), merged.label(row)});
    }
    for (size_t shard = 0; shard < kShards; ++shard) {
      if (health.shards[shard].state == ContextShard::State::kQuarantined) {
        ++quarantines_seen;
        oracle[shard].clear();  // quarantine abandons the generation
        continue;
      }
      ASSERT_TRUE(IsSubsequence(oracle[shard], recovered[shard]))
          << "iteration " << iter << " (CCE_FAULT_SEED="
          << fault_options.seed << ") shard " << shard << " lost "
          << "acknowledged records (" << oracle[shard].size()
          << " expected, " << recovered[shard].size() << " recovered)";
      // Re-baseline on what is actually in the window so resurrected rows
      // (durable but unacknowledged) are tracked from here on.
      oracle[shard] = std::move(recovered[shard]);
    }

    // Invariant 4: a degraded context is reported, and Explain flags it.
    EXPECT_EQ(health.degraded_context, health.shards_quarantined > 0);

    // Repair about half of the quarantined shards; the rest must keep
    // refusing writes while everything else serves.
    for (size_t shard = 0; shard < kShards; ++shard) {
      if (health.shards[shard].state == ContextShard::State::kQuarantined &&
          rng.Bernoulli(0.5)) {
        Status repaired = proxy.RepairShard(shard);
        EXPECT_TRUE(repaired.ok()) << repaired.ToString();
        if (repaired.ok()) ++repairs_done;
      }
    }
    health = proxy.Health();

    // Invariant 3: record through the faulty env until the kill point.
    const size_t kill_after = 8 + rng.Uniform(24);
    for (size_t i = 0; i < kill_after; ++i) {
      const size_t row = rng.Uniform(data.size());
      const Instance& x = data.instance(row);
      const Label y = data.label(row);
      Status recorded = proxy.Record(x, y);
      if (recorded.ok()) {
        oracle[ContextShard::ShardFor(x, kShards)].push_back(
            OracleRow{x, y});
      } else {
        // Only the fault vocabulary is acceptable: shard unavailable
        // (quarantined/read-only/failed fsync) or an injected I/O error.
        ASSERT_TRUE(recorded.code() == StatusCode::kUnavailable ||
                    recorded.code() == StatusCode::kIoError)
            << recorded.ToString();
      }
    }

    Context context = proxy.ContextSnapshot();
    if (context.size() > 0) {
      auto key = proxy.Explain(context.instance(0), context.label(0));
      ASSERT_TRUE(key.ok()) << key.status().ToString();
      if (proxy.Health().shards_quarantined > 0) {
        EXPECT_TRUE(key->degraded)
            << "explanations over an incomplete context must say so";
      }
    }
    // The proxy is dropped here with no clean shutdown — the kill point.
  }

  // The loop must have exercised real recovery traffic, and with injected
  // read faults some quarantines are expected over enough iterations; do
  // not hard-assert them for small tier-1 budgets.
  if (kIterations >= 200) {
    EXPECT_GT(quarantines_seen, 0u)
        << "200 faulty recoveries should quarantine at least once";
    EXPECT_GT(repairs_done, 0u);
  }
}

}  // namespace
}  // namespace cce::serving
