#include "common/crc32c.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace cce::crc32c {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The classic CRC-32C check value (RFC 3720 / Castagnoli literature).
  EXPECT_EQ(Value("123456789", 9), 0xE3069283u);

  unsigned char zeros[32];
  std::memset(zeros, 0x00, sizeof(zeros));
  EXPECT_EQ(Value(zeros, sizeof(zeros)), 0x8A9136AAu);

  unsigned char ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(Value(ones, sizeof(ones)), 0x62A8AB43u);

  unsigned char ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(Value(ascending, sizeof(ascending)), 0x46DD794Eu);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Value("", 0), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShotAtEverySplitPoint) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Value(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Value(data.data(), split);
    crc = Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlip) {
  // The WAL's corruption model: CRC-32C must catch any single flipped bit.
  Rng rng(7);
  std::vector<unsigned char> data(64);
  for (auto& b : data) b = static_cast<unsigned char>(rng.Uniform(256));
  const uint32_t clean = Value(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<unsigned char>(1u << bit);
      EXPECT_NE(Value(data.data(), data.size()), clean)
          << "missed flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<unsigned char>(1u << bit);
    }
  }
}

TEST(Crc32cTest, MaskRoundTripsAndChangesTheValue) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t crc = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(Unmask(Mask(crc)), crc);
    EXPECT_NE(Mask(crc), crc) << "mask must not be the identity";
  }
}

}  // namespace
}  // namespace cce::crc32c
