// Robustness fuzzing for the CSV parser: random byte soup must never
// crash, and structurally valid random tables must round-trip.

#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/random.h"
#include "core/types.h"

namespace cce {
namespace {

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  const char alphabet[] = "ab,\"\n\r \\x";
  for (int trial = 0; trial < 200; ++trial) {
    std::string soup;
    size_t length = rng.Uniform(80);
    for (size_t i = 0; i < length; ++i) {
      soup.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    Result<CsvTable> table = ParseCsv(soup);  // ok() or error, no crash
    if (table.ok()) {
      // Any successfully parsed table must be rectangular.
      for (const auto& row : table->rows) {
        EXPECT_EQ(row.size(), table->header.size());
      }
    }
  }
}

TEST_P(CsvFuzzTest, RandomTablesRoundTrip) {
  Rng rng(GetParam() + 1000);
  const char cell_alphabet[] = "abc,\"\n d";
  for (int trial = 0; trial < 50; ++trial) {
    CsvTable table;
    size_t columns = 1 + rng.Uniform(5);
    size_t rows = rng.Uniform(6);
    for (size_t c = 0; c < columns; ++c) {
      table.header.push_back("col" + std::to_string(c));
    }
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < columns; ++c) {
        std::string cell;
        size_t length = rng.Uniform(8);
        for (size_t i = 0; i < length; ++i) {
          cell.push_back(
              cell_alphabet[rng.Uniform(sizeof(cell_alphabet) - 1)]);
        }
        row.push_back(std::move(cell));
      }
      table.rows.push_back(std::move(row));
    }
    auto reparsed = ParseCsv(WriteCsv(table));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed->header, table.header);
    EXPECT_EQ(reparsed->rows, table.rows);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Range<uint64_t>(0, 8));

TEST(FeatureSetOpsTest, InsertKeepsSortedUnique) {
  FeatureSet set;
  FeatureSetInsert(&set, 5);
  FeatureSetInsert(&set, 1);
  FeatureSetInsert(&set, 5);
  FeatureSetInsert(&set, 3);
  EXPECT_EQ(set, (FeatureSet{1, 3, 5}));
  EXPECT_TRUE(FeatureSetContains(set, 3));
  EXPECT_FALSE(FeatureSetContains(set, 2));
}

TEST(FeatureSetOpsTest, SubsetChecks) {
  FeatureSet small = {1, 3};
  FeatureSet big = {1, 2, 3};
  EXPECT_TRUE(FeatureSetIsSubset(small, big));
  EXPECT_FALSE(FeatureSetIsSubset(big, small));
  EXPECT_TRUE(FeatureSetIsSubset({}, small));
  EXPECT_TRUE(FeatureSetIsSubset(small, small));
}

TEST(FeatureSetOpsTest, ToStringHandlesUnknownIds) {
  std::vector<std::string> names = {"A", "B"};
  EXPECT_EQ(FeatureSetToString({0, 1}, names), "{A, B}");
  EXPECT_EQ(FeatureSetToString({0, 7}, names), "{A, A7}");
  EXPECT_EQ(FeatureSetToString({}, names), "{}");
}

}  // namespace
}  // namespace cce
