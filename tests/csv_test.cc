#include "common/csv.h"

#include <gtest/gtest.h>

namespace cce {
namespace {

TEST(CsvTest, ParsesSimpleTable) {
  auto table = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, HandlesMissingTrailingNewline) {
  auto table = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvTest, HandlesCrlf) {
  auto table = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "1");
}

TEST(CsvTest, QuotedFieldsWithCommasAndNewlines) {
  auto table = ParseCsv("name,notes\nalice,\"hi, there\nsecond line\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "hi, there\nsecond line");
}

TEST(CsvTest, EscapedQuotes) {
  auto table = ParseCsv("a\n\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "say \"hi\"");
}

TEST(CsvTest, EmptyFields) {
  auto table = ParseCsv("a,b,c\n,,\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto table = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, HeaderOnlyIsValid) {
  auto table = ParseCsv("a,b\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->rows.empty());
}

TEST(CsvTest, ColumnIndexLookup) {
  auto table = ParseCsv("x,y,z\n1,2,3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ColumnIndex("y"), 1);
  EXPECT_EQ(table->ColumnIndex("missing"), -1);
}

TEST(CsvTest, WriteRoundTrip) {
  CsvTable table;
  table.header = {"a", "notes"};
  table.rows = {{"1", "plain"},
                {"2", "needs, quoting"},
                {"3", "has \"quotes\""},
                {"4", "multi\nline"}};
  auto reparsed = ParseCsv(WriteCsv(table));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->header, table.header);
  EXPECT_EQ(reparsed->rows, table.rows);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto result = ReadCsvFile("/nonexistent/path.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace cce
