#include "core/dataset.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cce {
namespace {

TEST(DatasetTest, AddAndAccess) {
  testing::Fig2Context fig2;
  const Dataset& d = fig2.context;
  EXPECT_EQ(d.size(), 7u);
  EXPECT_EQ(d.num_features(), 4u);
  EXPECT_EQ(d.label(0), fig2.denied);
  EXPECT_EQ(d.label(1), fig2.approved);
  // x0 and x3 are identical.
  EXPECT_EQ(d.instance(0), d.instance(3));
  EXPECT_NE(d.instance(0), d.instance(1));
}

TEST(DatasetTest, SetLabel) {
  testing::Fig2Context fig2;
  fig2.context.set_label(0, fig2.approved);
  EXPECT_EQ(fig2.context.label(0), fig2.approved);
}

TEST(DatasetTest, SubsetPreservesOrder) {
  testing::Fig2Context fig2;
  Dataset sub = fig2.context.Subset({5, 1, 0});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.instance(0), fig2.context.instance(5));
  EXPECT_EQ(sub.instance(2), fig2.context.instance(0));
  EXPECT_EQ(sub.label(1), fig2.context.label(1));
}

TEST(DatasetTest, PrefixClampsToSize) {
  testing::Fig2Context fig2;
  EXPECT_EQ(fig2.context.Prefix(3).size(), 3u);
  EXPECT_EQ(fig2.context.Prefix(100).size(), 7u);
  EXPECT_EQ(fig2.context.Prefix(0).size(), 0u);
}

TEST(DatasetTest, SplitPartitionsAllRows) {
  Dataset d = testing::RandomContext(100, 4, 3, 5);
  Rng rng(1);
  auto [train, test] = d.Split(0.7, &rng);
  EXPECT_EQ(train.size(), 70u);
  EXPECT_EQ(test.size(), 30u);
}

TEST(DatasetTest, SplitExtremes) {
  Dataset d = testing::RandomContext(10, 2, 2, 5);
  Rng rng(1);
  auto [all_train, empty_test] = d.Split(1.0, &rng);
  EXPECT_EQ(all_train.size(), 10u);
  EXPECT_TRUE(empty_test.empty());
}

TEST(DatasetTest, LabelAgreement) {
  testing::Fig2Context fig2;
  std::vector<Label> reference = fig2.context.labels();
  EXPECT_DOUBLE_EQ(fig2.context.LabelAgreement(reference), 1.0);
  reference[0] = fig2.approved;
  EXPECT_NEAR(fig2.context.LabelAgreement(reference), 6.0 / 7.0, 1e-12);
}

TEST(DatasetTest, SchemaSharedAcrossSubsets) {
  testing::Fig2Context fig2;
  Dataset sub = fig2.context.Subset({0});
  EXPECT_EQ(&sub.schema(), &fig2.context.schema());
}

}  // namespace
}  // namespace cce
