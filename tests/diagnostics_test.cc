#include "core/diagnostics.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cce {
namespace {

TEST(DiagnosticsTest, RejectsEmptyContext) {
  testing::Fig2Context fig2;
  Dataset empty(fig2.schema);
  EXPECT_FALSE(DiagnoseContext(empty).ok());
}

TEST(DiagnosticsTest, Fig2ContextIsMostlyHealthy) {
  testing::Fig2Context fig2;
  auto d = DiagnoseContext(fig2.context);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->instances, 7u);
  EXPECT_EQ(d->features, 4u);
  EXPECT_EQ(d->conflicting_groups, 0u);
  // x0 and x3 are identical with identical predictions.
  EXPECT_EQ(d->redundant_duplicates, 1u);
  EXPECT_NEAR(d->majority_label_share, 4.0 / 7.0, 1e-12);
  EXPECT_TRUE(d->constant_features.empty());
  // Only the small-context warning applies.
  ASSERT_EQ(d->warnings.size(), 1u);
  EXPECT_NE(d->warnings[0].find("only 7 instances"), std::string::npos);
}

TEST(DiagnosticsTest, DetectsConflictingGroups) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "u");
  schema->InternValue(f, "v");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  Dataset context(schema);
  context.Add({0}, 0);
  context.Add({0}, 1);  // conflict
  context.Add({0}, 0);  // same group
  context.Add({1}, 1);
  auto d = DiagnoseContext(context);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->conflicting_groups, 1u);
  EXPECT_EQ(d->conflicting_instances, 3u);
  EXPECT_FALSE(d->healthy());
  bool mentions_alpha = false;
  for (const auto& w : d->warnings) {
    mentions_alpha |= w.find("alpha") != std::string::npos;
  }
  EXPECT_TRUE(mentions_alpha);
}

TEST(DiagnosticsTest, DetectsSingleClassAndConstantFeatures) {
  auto schema = std::make_shared<Schema>();
  FeatureId varying = schema->AddFeature("varying");
  schema->InternValue(varying, "u");
  schema->InternValue(varying, "v");
  FeatureId constant = schema->AddFeature("constant");
  schema->InternValue(constant, "only");
  schema->InternLabel("one");
  Dataset context(schema);
  for (int i = 0; i < 40; ++i) {
    context.Add({static_cast<ValueId>(i % 2), 0}, 0);
  }
  auto d = DiagnoseContext(context);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->majority_label_share, 1.0);
  ASSERT_EQ(d->constant_features.size(), 1u);
  EXPECT_EQ(d->constant_features[0], constant);
  EXPECT_GE(d->warnings.size(), 2u);  // single-class + constant feature
}

TEST(DiagnosticsTest, LargeCleanContextIsHealthy) {
  Dataset context = testing::RandomContext(500, 5, 3, 44, /*noise=*/0.0);
  auto d = DiagnoseContext(context);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->conflicting_groups, 0u);
  EXPECT_TRUE(d->healthy())
      << (d->warnings.empty() ? std::string() : d->warnings[0]);
}

TEST(DiagnosticsTest, NoisyContextReportsConflicts) {
  // 15% label noise over a small domain guarantees conflicting duplicate
  // groups in a 3000-row context (2 features x 9 combinations).
  Dataset context = testing::RandomContext(3000, 2, 3, 45, /*noise=*/0.15);
  auto d = DiagnoseContext(context);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d->conflicting_groups, 0u);
  EXPECT_FALSE(d->healthy());
}

}  // namespace
}  // namespace cce
