#include "sat/dimacs.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sat/solver.h"

namespace cce::sat {
namespace {

TEST(DimacsTest, WritesCanonicalForm) {
  CnfFormula f;
  Var a = f.NewVar();
  Var b = f.NewVar();
  f.AddBinary(Pos(a), Neg(b));
  f.AddUnit(Pos(b));
  EXPECT_EQ(ToDimacsString(f), "p cnf 2 2\n1 -2 0\n2 0\n");
}

TEST(DimacsTest, ParsesWithCommentsAndMultiLineClauses) {
  auto f = ParseDimacs(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2\n"
      "3 0\n"
      "c trailing comment\n"
      "-1 0\n");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->num_vars(), 3);
  ASSERT_EQ(f->clauses().size(), 2u);
  EXPECT_EQ(f->clauses()[0].size(), 3u);  // clause spans two lines
  EXPECT_EQ(f->clauses()[1].size(), 1u);
}

TEST(DimacsTest, RoundTripPreservesSatisfiability) {
  Rng rng(3);
  CnfFormula original;
  for (int v = 0; v < 10; ++v) original.NewVar();
  for (int c = 0; c < 40; ++c) {
    Clause clause;
    for (int k = 0; k < 3; ++k) {
      Var v = static_cast<Var>(rng.Uniform(10));
      clause.push_back(rng.Bernoulli(0.5) ? Neg(v) : Pos(v));
    }
    original.AddClause(clause);
  }
  auto reparsed = ParseDimacs(ToDimacsString(original));
  ASSERT_TRUE(reparsed.ok());
  Solver solver_a(original);
  Solver solver_b(*reparsed);
  EXPECT_EQ(solver_a.Solve(), solver_b.Solve());
}

TEST(DimacsTest, RejectsMalformedInputs) {
  EXPECT_FALSE(ParseDimacs("").ok());
  EXPECT_FALSE(ParseDimacs("1 2 0\n").ok());           // clause before p
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n3 0\n").ok());  // var out of range
  EXPECT_FALSE(ParseDimacs("p cnf 2 2\n1 0\n").ok());  // count mismatch
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n1 2\n").ok());  // unterminated
  EXPECT_FALSE(
      ParseDimacs("p cnf 2 1\n1 0\np cnf 2 1\n1 0\n").ok());  // dup p
}

}  // namespace
}  // namespace cce::sat
