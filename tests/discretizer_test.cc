#include "core/discretizer.h"

#include <limits>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace cce {
namespace {

TEST(DiscretizerTest, EquiWidthBucketCount) {
  Discretizer d = Discretizer::EquiWidth(0.0, 10.0, 5);
  EXPECT_EQ(d.num_buckets(), 5u);
}

TEST(DiscretizerTest, EquiWidthAssignsInOrder) {
  Discretizer d = Discretizer::EquiWidth(0.0, 10.0, 5);
  EXPECT_EQ(d.Bucket(0.5), 0u);
  EXPECT_EQ(d.Bucket(2.5), 1u);
  EXPECT_EQ(d.Bucket(9.9), 4u);
}

TEST(DiscretizerTest, BoundaryGoesToUpperBucket) {
  Discretizer d = Discretizer::EquiWidth(0.0, 10.0, 5);
  // Buckets are [lo, hi): the cut value belongs to the bucket above.
  EXPECT_EQ(d.Bucket(2.0), 1u);
  EXPECT_EQ(d.Bucket(8.0), 4u);
}

TEST(DiscretizerTest, OutOfRangeClamps) {
  Discretizer d = Discretizer::EquiWidth(0.0, 10.0, 5);
  EXPECT_EQ(d.Bucket(-100.0), 0u);
  EXPECT_EQ(d.Bucket(100.0), 4u);
}

TEST(DiscretizerTest, SingleBucket) {
  Discretizer d = Discretizer::EquiWidth(0.0, 1.0, 1);
  EXPECT_EQ(d.num_buckets(), 1u);
  EXPECT_EQ(d.Bucket(0.5), 0u);
  EXPECT_EQ(d.Bucket(-5.0), 0u);
}

TEST(DiscretizerTest, WithCutsRespectsCutPoints) {
  Discretizer d = Discretizer::WithCuts({1.0, 5.0, 20.0});
  EXPECT_EQ(d.num_buckets(), 4u);
  EXPECT_EQ(d.Bucket(0.0), 0u);
  EXPECT_EQ(d.Bucket(3.0), 1u);
  EXPECT_EQ(d.Bucket(10.0), 2u);
  EXPECT_EQ(d.Bucket(100.0), 3u);
}

TEST(DiscretizerTest, BucketNamesAreDistinct) {
  Discretizer d = Discretizer::EquiWidth(0.0, 10.0, 10);
  std::set<std::string> names;
  for (ValueId b = 0; b < d.num_buckets(); ++b) {
    names.insert(d.BucketName(b));
  }
  EXPECT_EQ(names.size(), 10u);
}

TEST(DiscretizerTest, MidpointRoundTrips) {
  Discretizer d = Discretizer::EquiWidth(0.0, 10.0, 5);
  for (ValueId b = 0; b < d.num_buckets(); ++b) {
    EXPECT_EQ(d.Bucket(d.BucketMidpoint(b)), b);
  }
}

TEST(DiscretizerTest, TryBucketRejectsNonFiniteValues) {
  Discretizer d = Discretizer::EquiWidth(0.0, 10.0, 5);
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  for (double poisoned : {kNan, kInf, -kInf}) {
    auto bucket = d.TryBucket(poisoned);
    ASSERT_FALSE(bucket.ok()) << poisoned;
    EXPECT_EQ(bucket.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(DiscretizerTest, TryBucketMatchesBucketOnFiniteValues) {
  Discretizer d = Discretizer::EquiWidth(0.0, 10.0, 5);
  for (double v : {-100.0, 0.0, 0.5, 2.0, 9.9, 100.0}) {
    auto bucket = d.TryBucket(v);
    ASSERT_TRUE(bucket.ok()) << v;
    EXPECT_EQ(*bucket, d.Bucket(v)) << v;
  }
}

TEST(DiscretizerTest, MoreBucketsRefinePartition) {
  // The #-bucket knob: refining buckets never merges distinct coarse
  // buckets' midpoints.
  Discretizer coarse = Discretizer::EquiWidth(0.0, 20.0, 10);
  Discretizer fine = Discretizer::EquiWidth(0.0, 20.0, 20);
  EXPECT_EQ(fine.num_buckets(), 20u);
  EXPECT_LT(coarse.Bucket(3.0), coarse.Bucket(11.0));
  EXPECT_LT(fine.Bucket(3.0), fine.Bucket(11.0));
}

}  // namespace
}  // namespace cce
