#include "data/drift.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cce::data {
namespace {

TEST(DriftTest, TailNoiseLeavesHeadUntouched) {
  Dataset clean = cce::testing::RandomContext(100, 4, 3, 1);
  Rng rng(2);
  Dataset noisy = InjectTailNoise(clean, 0.4, 1.0, &rng);
  ASSERT_EQ(noisy.size(), clean.size());
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(noisy.instance(i), clean.instance(i)) << "row " << i;
  }
}

TEST(DriftTest, TailNoisePerturbsTail) {
  Dataset clean = cce::testing::RandomContext(100, 6, 4, 3);
  Rng rng(2);
  Dataset noisy = InjectTailNoise(clean, 0.4, 1.0, &rng);
  size_t changed = 0;
  for (size_t i = 60; i < 100; ++i) {
    changed += noisy.instance(i) != clean.instance(i);
  }
  EXPECT_GT(changed, 30u);
}

TEST(DriftTest, ZeroRateIsIdentity) {
  Dataset clean = cce::testing::RandomContext(50, 4, 3, 4);
  Rng rng(2);
  Dataset noisy = InjectTailNoise(clean, 1.0, 0.0, &rng);
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(noisy.instance(i), clean.instance(i));
  }
}

TEST(DriftTest, LabelsPreserved) {
  Dataset clean = cce::testing::RandomContext(50, 4, 3, 5);
  Rng rng(2);
  Dataset noisy = InjectTailNoise(clean, 0.5, 1.0, &rng);
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(noisy.label(i), clean.label(i));
  }
}

TEST(DriftTest, SplitPhasesPartitionsEvenly) {
  Dataset data = cce::testing::RandomContext(103, 3, 2, 6);
  std::vector<Dataset> phases = SplitPhases(data, 5);
  ASSERT_EQ(phases.size(), 5u);
  size_t total = 0;
  for (size_t p = 0; p < 5; ++p) {
    total += phases[p].size();
    if (p < 4) EXPECT_EQ(phases[p].size(), 20u);
  }
  EXPECT_EQ(total, data.size());
  EXPECT_EQ(phases[4].size(), 23u);  // remainder in the last phase
  // First phase holds the first rows.
  EXPECT_EQ(phases[0].instance(0), data.instance(0));
  EXPECT_EQ(phases[1].instance(0), data.instance(20));
}

TEST(DriftTest, SinglePhaseIsWholeDataset) {
  Dataset data = cce::testing::RandomContext(10, 2, 2, 7);
  std::vector<Dataset> phases = SplitPhases(data, 1);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].size(), data.size());
}

}  // namespace
}  // namespace cce::data
