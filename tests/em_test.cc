#include <string>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "em/datasets.h"
#include "em/features.h"
#include "em/matcher.h"
#include "em/records.h"
#include "explain/certa.h"

namespace cce::em {
namespace {

TEST(RecordsTest, PerturbTextKeepsMostTokens) {
  Rng rng(1);
  DirtyOptions options;
  std::string original = "adobe photoshop professional edition 2007";
  int total_kept = 0;
  for (int i = 0; i < 50; ++i) {
    std::string perturbed = PerturbText(original, options, &rng);
    EXPECT_FALSE(perturbed.empty());
    total_kept += static_cast<int>(Split(perturbed, ' ').size());
  }
  // On average most tokens survive.
  EXPECT_GT(total_kept, 50 * 3);
}

TEST(RecordsTest, PerturbNumberStaysClose) {
  Rng rng(2);
  DirtyOptions options;
  for (int i = 0; i < 50; ++i) {
    std::string out = PerturbNumber("100", options, &rng);
    double v = std::stod(out);
    EXPECT_GT(v, 90.0);
    EXPECT_LT(v, 110.0);
  }
}

TEST(RecordsTest, PerturbNumberNonNumericUnchanged) {
  Rng rng(3);
  DirtyOptions options;
  EXPECT_EQ(PerturbNumber("abc", options, &rng), "abc");
}

TEST(EmDatasetsTest, PaperShapes) {
  struct Expected {
    const char* name;
    size_t pairs;
    size_t matches;
    size_t attributes;
  };
  const Expected expected[] = {{"A-G", 11460, 1167, 3},
                               {"D-A", 12363, 2220, 4},
                               {"D-G", 28707, 5347, 4},
                               {"W-A", 10242, 962, 5}};
  for (const auto& e : expected) {
    auto task = GenerateEmByName(e.name, 1);
    ASSERT_TRUE(task.ok()) << e.name;
    EXPECT_EQ(task->pairs.size(), e.pairs) << e.name;
    EXPECT_EQ(task->attributes.size(), e.attributes) << e.name;
    size_t matches = 0;
    for (const RecordPair& pair : task->pairs) matches += pair.is_match;
    EXPECT_EQ(matches, e.matches) << e.name;
  }
}

TEST(EmDatasetsTest, UnknownNameRejected) {
  EXPECT_FALSE(GenerateEmByName("X-Y", 1).ok());
}

TEST(EmDatasetsTest, PairOverrideShrinks) {
  auto task = GenerateEmByName("A-G", 1, 500);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->pairs.size(), 500u);
}

TEST(FeaturesTest, MatchPairsScoreHigherSimilarity) {
  EmGeneratorOptions options;
  options.pairs = 2000;
  EmTask task = GenerateAmazonGoogle(options);
  PairFeatureExtractor extractor(task, {});
  double match_sim = 0.0;
  double nonmatch_sim = 0.0;
  size_t match_n = 0;
  size_t nonmatch_n = 0;
  for (const RecordPair& pair : task.pairs) {
    double sim = extractor.AttributeSimilarity(pair, 0);  // title
    if (pair.is_match) {
      match_sim += sim;
      ++match_n;
    } else {
      nonmatch_sim += sim;
      ++nonmatch_n;
    }
  }
  ASSERT_GT(match_n, 0u);
  ASSERT_GT(nonmatch_n, 0u);
  EXPECT_GT(match_sim / match_n, nonmatch_sim / nonmatch_n + 0.2);
}

TEST(FeaturesTest, EncodeAllShapes) {
  EmGeneratorOptions options;
  options.pairs = 300;
  EmTask task = GenerateDblpAcm(options);
  PairFeatureExtractor extractor(task, {});
  Dataset encoded = extractor.EncodeAll(task);
  EXPECT_EQ(encoded.size(), 300u);
  EXPECT_EQ(encoded.num_features(), 4u);
  EXPECT_EQ(encoded.schema().num_labels(), 2u);
}

TEST(FeaturesTest, SimilarityBucketsRespectKnob) {
  EmGeneratorOptions options;
  options.pairs = 50;
  EmTask task = GenerateWalmartAmazon(options);
  PairFeatureExtractor::Options extractor_options;
  extractor_options.similarity_buckets = 5;
  PairFeatureExtractor extractor(task, extractor_options);
  EXPECT_EQ(extractor.schema()->DomainSize(0), 5u);
}

TEST(MatcherTest, LearnsToMatch) {
  EmGeneratorOptions options;
  options.pairs = 4000;
  EmTask task = GenerateAmazonGoogle(options);
  PairFeatureExtractor extractor(task, {});
  Dataset encoded = extractor.EncodeAll(task);
  Rng rng(4);
  auto [train, test] = encoded.Split(0.7, &rng);
  auto matcher = SimilarityMatcher::Train(train, {});
  ASSERT_TRUE(matcher.ok());
  EXPECT_GT((*matcher)->Accuracy(test), 0.9);
}

TEST(MatcherTest, CertaExplainsMatcherDecisions) {
  EmGeneratorOptions options;
  options.pairs = 1200;
  EmTask task = GenerateWalmartAmazon(options);
  PairFeatureExtractor extractor(task, {});
  Dataset encoded = extractor.EncodeAll(task);
  auto matcher = SimilarityMatcher::Train(encoded, {});
  ASSERT_TRUE(matcher.ok());
  explain::Certa::Options certa_options;
  certa_options.samples_per_feature = 40;
  certa_options.samples_per_pair = 10;
  explain::Certa certa(matcher->get(), &encoded, certa_options);
  auto scores = certa.ImportanceScores(encoded.instance(0));
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), 5u);
  double total = 0.0;
  for (double s : *scores) {
    EXPECT_GE(s, 0.0);
    total += s;
  }
  EXPECT_GT(total, 0.0);  // something must be salient
  auto explanation = certa.ExplainFeatures(encoded.instance(0), 2);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->size(), 2u);
}

TEST(MatcherTest, CertaConstantModelGivesZeroSaliency) {
  // A single-class reference makes every prediction identical; CERTA
  // must degrade gracefully.
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a_sim");
  schema->InternValue(f, "low");
  schema->InternValue(f, "high");
  schema->InternLabel("NoMatch");
  schema->InternLabel("Match");
  Dataset reference(schema);
  for (int i = 0; i < 10; ++i) {
    reference.Add({static_cast<ValueId>(i % 2)}, 1);
  }
  auto matcher = SimilarityMatcher::Train(reference, {});
  ASSERT_TRUE(matcher.ok());
  explain::Certa certa(matcher->get(), &reference, {});
  auto scores = certa.ImportanceScores(reference.instance(0));
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ((*scores)[0], 0.0);
}

}  // namespace
}  // namespace cce::em
