#include "core/enumerate.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/conformity.h"
#include "core/optimal.h"
#include "core/srk.h"
#include "tests/test_util.h"

namespace cce {
namespace {

TEST(KeyEnumeratorTest, ValidatesArguments) {
  testing::Fig2Context fig2;
  EXPECT_EQ(
      KeyEnumerator::EnumerateMinimalKeys(fig2.context, 99, {})
          .status()
          .code(),
      StatusCode::kOutOfRange);
  EXPECT_FALSE(KeyEnumerator::EnumerateMinimalKeysForInstance(
                   fig2.context, Instance{0}, 0, {})
                   .ok());
}

TEST(KeyEnumeratorTest, Fig2AllMinimalKeysForX0) {
  // Violators of x0: x1 (differs on Income), x5 (Credit, Dependent),
  // x6 (Credit). Minimal hitting sets of {{Income},{Credit,Dependent},
  // {Credit}} are {Income, Credit} and {Income, Dependent}... Dependent
  // does not hit {Credit}, so the only minimal keys are
  // {Income, Credit}.
  testing::Fig2Context fig2;
  auto keys = KeyEnumerator::EnumerateMinimalKeys(fig2.context, 0, {});
  ASSERT_TRUE(keys.ok());
  FeatureSet expected = {fig2.income, fig2.credit};
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(keys->size(), 1u);
  EXPECT_EQ((*keys)[0], expected);
}

TEST(KeyEnumeratorTest, EveryEnumeratedKeyIsAMinimalKey) {
  for (uint64_t seed : {31u, 32u, 33u, 34u}) {
    Dataset context = testing::RandomContext(120, 6, 3, seed,
                                             /*noise=*/0.0);
    ConformityChecker checker(&context);
    auto keys = KeyEnumerator::EnumerateMinimalKeys(context, 0, {});
    ASSERT_TRUE(keys.ok());
    ASSERT_FALSE(keys->empty());
    const Instance& x0 = context.instance(0);
    Label y0 = context.label(0);
    for (const FeatureSet& key : *keys) {
      EXPECT_TRUE(checker.IsAlphaConformant(x0, y0, key, 1.0));
      for (FeatureId drop : key) {
        FeatureSet smaller;
        for (FeatureId f : key) {
          if (f != drop) smaller.push_back(f);
        }
        EXPECT_FALSE(checker.IsAlphaConformant(x0, y0, smaller, 1.0))
            << "seed " << seed;
      }
    }
  }
}

TEST(KeyEnumeratorTest, SmallestEnumeratedKeyMatchesOptimal) {
  for (uint64_t seed : {41u, 42u, 43u}) {
    Dataset context = testing::RandomContext(100, 7, 3, seed,
                                             /*noise=*/0.0);
    auto keys = KeyEnumerator::EnumerateMinimalKeys(context, 0, {});
    auto optimal = OptimalKeyFinder::FindForRow(context, 0, {});
    ASSERT_TRUE(keys.ok());
    ASSERT_TRUE(optimal.ok());
    ASSERT_FALSE(keys->empty());
    EXPECT_EQ(keys->front().size(), optimal->key.size());
    // And the SRK key is always a superset of SOME minimal key... not
    // necessarily; but its size is at least the minimum.
    auto greedy = Srk::Explain(context, 0, {});
    ASSERT_TRUE(greedy.ok());
    EXPECT_GE(greedy->key.size(), keys->front().size());
  }
}

TEST(KeyEnumeratorTest, BruteForceCrossCheckOnTinyContexts) {
  // Enumerate all subsets and keep the minimal conformant ones; compare.
  for (uint64_t seed : {51u, 52u, 53u, 54u, 55u}) {
    Dataset context = testing::RandomContext(40, 5, 2, seed,
                                             /*noise=*/0.0);
    ConformityChecker checker(&context);
    const Instance& x0 = context.instance(0);
    Label y0 = context.label(0);
    std::vector<FeatureSet> expected;
    for (uint32_t mask = 0; mask < 32; ++mask) {
      FeatureSet e;
      for (FeatureId f = 0; f < 5; ++f) {
        if (mask & (1u << f)) e.push_back(f);
      }
      if (!checker.IsAlphaConformant(x0, y0, e, 1.0)) continue;
      bool minimal = true;
      for (FeatureId drop : e) {
        FeatureSet smaller;
        for (FeatureId f : e) {
          if (f != drop) smaller.push_back(f);
        }
        if (checker.IsAlphaConformant(x0, y0, smaller, 1.0)) {
          minimal = false;
          break;
        }
      }
      if (minimal) expected.push_back(e);
    }
    std::sort(expected.begin(), expected.end(),
              [](const FeatureSet& a, const FeatureSet& b) {
                if (a.size() != b.size()) return a.size() < b.size();
                return a < b;
              });
    auto keys = KeyEnumerator::EnumerateMinimalKeys(context, 0, {});
    ASSERT_TRUE(keys.ok());
    EXPECT_EQ(*keys, expected) << "seed " << seed;
  }
}

TEST(KeyEnumeratorTest, ConflictingDuplicateFails) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  Dataset context(schema);
  context.Add({0}, 0);
  context.Add({0}, 1);
  EXPECT_EQ(KeyEnumerator::EnumerateMinimalKeys(context, 0, {})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(KeyEnumeratorTest, MaxKeysCapsOutput) {
  Dataset context = testing::RandomContext(200, 8, 2, 61, /*noise=*/0.0);
  KeyEnumerator::Options options;
  options.max_keys = 2;
  auto keys = KeyEnumerator::EnumerateMinimalKeys(context, 0, options);
  ASSERT_TRUE(keys.ok());
  EXPECT_LE(keys->size(), 2u);
}

}  // namespace
}  // namespace cce
