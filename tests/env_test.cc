#include "io/env.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "io/fault_env.h"

namespace cce::io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string MustRead(Env* env, const std::string& path) {
  std::string content;
  CCE_CHECK_OK(env->ReadFileToString(path, &content));
  return content;
}

TEST(PosixEnvTest, AppendableFileAccumulates) {
  Env* env = Env::Default();
  const std::string path = TempPath("env_append.bin");
  std::remove(path.c_str());
  {
    auto file = env->NewAppendableFile(path);
    CCE_CHECK_OK(file.status());
    CCE_CHECK_OK((*file)->Append("one"));
    CCE_CHECK_OK((*file)->Append("-two"));
    CCE_CHECK_OK((*file)->Sync());
    CCE_CHECK_OK((*file)->Close());
  }
  EXPECT_EQ(MustRead(env, path), "one-two");
  // Reopening appendable continues at the end.
  {
    auto file = env->NewAppendableFile(path);
    CCE_CHECK_OK(file.status());
    CCE_CHECK_OK((*file)->Append("-three"));
    CCE_CHECK_OK((*file)->Close());
  }
  EXPECT_EQ(MustRead(env, path), "one-two-three");
  CCE_CHECK_OK(env->RemoveFile(path));
}

TEST(PosixEnvTest, TruncatedFileStartsEmpty) {
  Env* env = Env::Default();
  const std::string path = TempPath("env_trunc.bin");
  {
    auto file = env->NewAppendableFile(path);
    CCE_CHECK_OK(file.status());
    CCE_CHECK_OK((*file)->Append("leftover"));
    CCE_CHECK_OK((*file)->Close());
  }
  {
    auto file = env->NewTruncatedFile(path);
    CCE_CHECK_OK(file.status());
    CCE_CHECK_OK((*file)->Append("fresh"));
    CCE_CHECK_OK((*file)->Close());
  }
  EXPECT_EQ(MustRead(env, path), "fresh");
  CCE_CHECK_OK(env->RemoveFile(path));
}

TEST(PosixEnvTest, TruncateCutsAndRepositions) {
  Env* env = Env::Default();
  const std::string path = TempPath("env_cut.bin");
  auto file = env->NewTruncatedFile(path);
  CCE_CHECK_OK(file.status());
  CCE_CHECK_OK((*file)->Append("0123456789"));
  CCE_CHECK_OK((*file)->Truncate(4));
  // The next write must land at the new end, not leave a hole at byte 10.
  CCE_CHECK_OK((*file)->Append("X"));
  CCE_CHECK_OK((*file)->Close());
  EXPECT_EQ(MustRead(env, path), "0123X");
  CCE_CHECK_OK(env->RemoveFile(path));
}

TEST(PosixEnvTest, ReadMissingFileIsNotFound) {
  Env* env = Env::Default();
  std::string content;
  EXPECT_EQ(env->ReadFileToString(TempPath("env_no_such_file"), &content)
                .code(),
            StatusCode::kNotFound);
}

TEST(PosixEnvTest, RenameReplacesAndListDirSeesIt) {
  Env* env = Env::Default();
  const std::string dir = TempPath("env_listdir");
  CCE_CHECK_OK(env->CreateDir(dir));
  {
    auto file = env->NewTruncatedFile(dir + "/a.src");
    CCE_CHECK_OK(file.status());
    CCE_CHECK_OK((*file)->Append("payload"));
    CCE_CHECK_OK((*file)->Close());
  }
  CCE_CHECK_OK(env->RenameFile(dir + "/a.src", dir + "/a.dst"));
  EXPECT_FALSE(env->FileExists(dir + "/a.src"));
  EXPECT_TRUE(env->FileExists(dir + "/a.dst"));
  std::vector<std::string> names;
  CCE_CHECK_OK(env->ListDir(dir, &names));
  EXPECT_NE(std::find(names.begin(), names.end(), "a.dst"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "."), names.end());
  CCE_CHECK_OK(env->RemoveFile(dir + "/a.dst"));
}

TEST(FaultEnvTest, ArmedAppendFailureFiresOnceThenClears) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fault_append.bin");
  std::remove(path.c_str());
  auto file = env.NewTruncatedFile(path);
  CCE_CHECK_OK(file.status());
  env.FailNextAppend();
  EXPECT_EQ((*file)->Append("doomed").code(), StatusCode::kIoError);
  CCE_CHECK_OK((*file)->Append("fine"));
  CCE_CHECK_OK((*file)->Close());
  std::string content;
  CCE_CHECK_OK(env.ReadFileToString(path, &content));
  EXPECT_EQ(content, "fine");
  EXPECT_EQ(env.stats().append_errors, 1u);
  std::remove(path.c_str());
}

TEST(FaultEnvTest, TornAppendLandsThePrefix) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fault_torn.bin");
  std::remove(path.c_str());
  auto file = env.NewTruncatedFile(path);
  CCE_CHECK_OK(file.status());
  env.TearNextAppend(/*keep_bytes=*/3);
  EXPECT_FALSE((*file)->Append("ABCDEFGH").ok());
  CCE_CHECK_OK((*file)->Close());
  std::string content;
  CCE_CHECK_OK(env.ReadFileToString(path, &content));
  EXPECT_EQ(content, "ABC") << "the torn prefix must be on disk, like a "
                               "real crash mid-write";
  EXPECT_EQ(env.stats().torn_appends, 1u);
  std::remove(path.c_str());
}

TEST(FaultEnvTest, SpaceBudgetGivesEnospcWithPartialLanding) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fault_enospc.bin");
  std::remove(path.c_str());
  auto file = env.NewTruncatedFile(path);
  CCE_CHECK_OK(file.status());
  env.ExhaustSpaceAfter(5);
  CCE_CHECK_OK((*file)->Append("1234"));  // 4 bytes, 1 left
  Status full = (*file)->Append("5678");
  EXPECT_EQ(full.code(), StatusCode::kIoError);
  EXPECT_NE(full.message().find("ENOSPC"), std::string::npos);
  EXPECT_EQ(env.stats().space_exhausted_errors, 1u);
  // After the operator frees space, writes flow again.
  env.ReplenishSpace();
  CCE_CHECK_OK((*file)->Append("ok"));
  CCE_CHECK_OK((*file)->Close());
  std::remove(path.c_str());
}

TEST(FaultEnvTest, ArmedSyncAndTruncateFailuresFire) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fault_sync.bin");
  std::remove(path.c_str());
  auto file = env.NewTruncatedFile(path);
  CCE_CHECK_OK(file.status());
  CCE_CHECK_OK((*file)->Append("data"));
  env.FailNextSync();
  EXPECT_EQ((*file)->Sync().code(), StatusCode::kIoError);
  CCE_CHECK_OK((*file)->Sync());
  env.FailNextTruncate();
  EXPECT_EQ((*file)->Truncate(1).code(), StatusCode::kIoError);
  CCE_CHECK_OK((*file)->Truncate(1));
  CCE_CHECK_OK((*file)->Close());
  EXPECT_EQ(env.stats().sync_errors, 1u);
  EXPECT_EQ(env.stats().truncate_errors, 1u);
  std::remove(path.c_str());
}

TEST(FaultEnvTest, ReadFaultsAndShortReads) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fault_read.bin");
  {
    auto file = env.NewTruncatedFile(path);
    CCE_CHECK_OK(file.status());
    CCE_CHECK_OK((*file)->Append("0123456789"));
    CCE_CHECK_OK((*file)->Close());
  }
  std::string content;
  env.FailNextRead();
  EXPECT_EQ(env.ReadFileToString(path, &content).code(),
            StatusCode::kIoError);
  env.ShortenNextRead(/*drop_bytes=*/4);
  CCE_CHECK_OK(env.ReadFileToString(path, &content));
  EXPECT_EQ(content, "012345") << "a short read drops the suffix";
  CCE_CHECK_OK(env.ReadFileToString(path, &content));
  EXPECT_EQ(content, "0123456789");
  EXPECT_EQ(env.stats().read_errors, 1u);
  EXPECT_EQ(env.stats().short_reads, 1u);
  std::remove(path.c_str());
}

TEST(FaultEnvTest, DisabledEnvPassesEverythingThrough) {
  FaultInjectingEnv env(Env::Default());
  env.FailNextAppend();
  env.FailNextSync();
  env.set_enabled(false);
  const std::string path = TempPath("fault_disabled.bin");
  std::remove(path.c_str());
  auto file = env.NewTruncatedFile(path);
  CCE_CHECK_OK(file.status());
  CCE_CHECK_OK((*file)->Append("clean"));
  CCE_CHECK_OK((*file)->Sync());
  CCE_CHECK_OK((*file)->Close());
  std::remove(path.c_str());
}

TEST(FaultEnvTest, SeededProbabilisticScheduleIsDeterministic) {
  // Two envs with the same seed must fail the same operations — the crash
  // torture suite depends on reproducible schedules.
  FaultInjectingEnv::Options options;
  options.seed = 1234;
  options.write_error_probability = 0.3;
  std::vector<bool> first, second;
  for (int run = 0; run < 2; ++run) {
    FaultInjectingEnv env(Env::Default(), options);
    const std::string path = TempPath("fault_seeded.bin");
    std::remove(path.c_str());
    auto file = env.NewTruncatedFile(path);
    CCE_CHECK_OK(file.status());
    std::vector<bool>& outcomes = run == 0 ? first : second;
    for (int i = 0; i < 50; ++i) {
      outcomes.push_back((*file)->Append("x").ok());
    }
    (void)(*file)->Close();
    std::remove(path.c_str());
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0)
      << "p=0.3 over 50 appends should fail at least once";
}

}  // namespace
}  // namespace cce::io
