#include "ml/eval.h"

#include <gtest/gtest.h>

#include "ml/gbdt.h"
#include "tests/test_util.h"

namespace cce::ml {
namespace {

TEST(AucTest, PerfectRankingIsOne) {
  auto auc = AreaUnderRoc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 1.0);
}

TEST(AucTest, InvertedRankingIsZero) {
  auto auc = AreaUnderRoc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 0.0);
}

TEST(AucTest, AllTiedIsHalf) {
  auto auc = AreaUnderRoc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 0.5);
}

TEST(AucTest, KnownPartialOrdering) {
  // Scores: neg {0.1, 0.6}, pos {0.4, 0.8}. Pairs won: (0.4>0.1),
  // (0.8>0.1), (0.8>0.6) = 3 of 4 -> 0.75.
  auto auc = AreaUnderRoc({0.1, 0.4, 0.6, 0.8}, {0, 1, 0, 1});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 0.75);
}

TEST(AucTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(AreaUnderRoc({0.1}, {0, 1}).ok());
  EXPECT_FALSE(AreaUnderRoc({0.1, 0.2}, {0, 0}).ok());
  EXPECT_FALSE(AreaUnderRoc({0.1, 0.2}, {1, 1}).ok());
  EXPECT_FALSE(AreaUnderRoc({0.1, 0.2}, {0, 2}).ok());
}

TEST(EvaluateBinaryTest, PerfectModelOnCleanData) {
  Dataset data = cce::testing::RandomContext(800, 4, 3, 21, /*noise=*/0.0);
  Gbdt::Options options;
  options.num_trees = 60;
  auto model = Gbdt::Train(data, options);
  ASSERT_TRUE(model.ok());
  auto report = EvaluateBinary(**model, data);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->accuracy, 0.97);
  EXPECT_GT(report->auc, 0.99);
  EXPECT_GT(report->f1, 0.95);
  EXPECT_EQ(report->true_positives + report->true_negatives +
                report->false_positives + report->false_negatives,
            data.size());
}

TEST(EvaluateBinaryTest, ConfusionCountsConsistent) {
  Dataset data = cce::testing::RandomContext(400, 4, 3, 22, /*noise=*/0.2);
  auto model = Gbdt::Train(data, {});
  ASSERT_TRUE(model.ok());
  auto report = EvaluateBinary(**model, data);
  ASSERT_TRUE(report.ok());
  double recomputed_accuracy =
      static_cast<double>(report->true_positives +
                          report->true_negatives) /
      static_cast<double>(data.size());
  EXPECT_DOUBLE_EQ(report->accuracy, recomputed_accuracy);
  EXPECT_GE(report->precision, 0.0);
  EXPECT_LE(report->precision, 1.0);
  EXPECT_GE(report->recall, 0.0);
  EXPECT_LE(report->recall, 1.0);
}

TEST(EvaluateBinaryTest, RejectsEmptyAndNonBinary) {
  Dataset data = cce::testing::RandomContext(10, 2, 2, 23);
  Dataset empty(data.schema_ptr());
  auto model = Gbdt::Train(data, {});
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(EvaluateBinary(**model, empty).ok());
}

}  // namespace
}  // namespace cce::ml
