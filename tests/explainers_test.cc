#include <gtest/gtest.h>

#include "common/logging.h"
#include "explain/anchor.h"
#include "explain/gam.h"
#include "explain/kernel_shap.h"
#include "explain/lime.h"
#include "explain/linalg.h"
#include "ml/gbdt.h"
#include "tests/test_util.h"

namespace cce::explain {
namespace {

// Shared fixture: a model whose label depends only on features 0 and 1.
class ExplainersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = std::make_unique<Dataset>(
        cce::testing::RandomContext(1200, 5, 3, 42, /*noise=*/0.0));
    ml::Gbdt::Options options;
    options.num_trees = 50;
    auto model = ml::Gbdt::Train(*data_, options);
    CCE_CHECK_OK(model.status());
    model_ = std::move(model).value();
    CCE_CHECK(model_->Accuracy(*data_) > 0.95);
  }

  // The informative features are 0 and 1 by construction of RandomContext.
  void ExpectInformativeFeaturesRanked(ImportanceExplainer* explainer) {
    int hits = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      auto scores = explainer->ImportanceScores(data_->instance(t));
      ASSERT_TRUE(scores.ok());
      std::vector<FeatureId> order = RankByImportance(*scores);
      // The top-2 features should be {0, 1} for most instances.
      bool top2 = (order[0] <= 1) && (order[1] <= 1);
      hits += top2;
    }
    EXPECT_GE(hits, trials - 3);
  }

  std::unique_ptr<Dataset> data_;
  std::unique_ptr<ml::Gbdt> model_;
};

TEST_F(ExplainersTest, LimeFindsInformativeFeatures) {
  Lime lime(model_.get(), data_.get(), {});
  ExpectInformativeFeaturesRanked(&lime);
}

TEST_F(ExplainersTest, LimeSizeMatchedExplanation) {
  Lime lime(model_.get(), data_.get(), {});
  auto explanation = lime.ExplainFeatures(data_->instance(0), 2);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->size(), 2u);
}

TEST_F(ExplainersTest, ShapFindsInformativeFeatures) {
  KernelShap shap(model_.get(), data_.get(), {});
  ExpectInformativeFeaturesRanked(&shap);
}

TEST_F(ExplainersTest, ShapEfficiencyRoughlyHolds) {
  // Sum of Shapley values should roughly track f(x) - E[f] (soft
  // constraint in our sampling formulation).
  KernelShap::Options options;
  options.num_coalitions = 600;
  KernelShap shap(model_.get(), data_.get(), options);
  const Instance& x = data_->instance(3);
  auto scores = shap.ImportanceScores(x);
  ASSERT_TRUE(scores.ok());
  double sum = 0.0;
  for (double s : *scores) sum += s;
  double fx = model_->Score(x);
  double mean = 0.0;
  for (size_t i = 0; i < 200; ++i) {
    mean += model_->Score(data_->instance(i));
  }
  mean /= 200.0;
  EXPECT_NEAR(sum, fx - mean, std::abs(fx - mean) * 0.8 + 1.5);
}

TEST_F(ExplainersTest, GamFindsInformativeFeatures) {
  auto gam = Gam::Fit(model_.get(), data_.get(), {});
  ASSERT_TRUE(gam.ok());
  ExpectInformativeFeaturesRanked(gam->get());
}

TEST_F(ExplainersTest, GamSurrogateTracksModel) {
  auto gam = Gam::Fit(model_.get(), data_.get(), {});
  ASSERT_TRUE(gam.ok());
  // Note: the target concept (XOR-like on two features) is not additive,
  // so the surrogate cannot be perfect; it must still beat chance.
  int agree = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const Instance& x = data_->instance(t);
    bool gam_positive = (*gam)->SurrogateProbability(x) > 0.5;
    bool model_positive = model_->Predict(x) == 1;
    agree += (gam_positive == model_positive);
  }
  EXPECT_GT(agree, trials * 45 / 100);
}

TEST_F(ExplainersTest, AnchorReachesPrecisionThreshold) {
  Anchor anchor(model_.get(), data_.get(), {});
  auto explanation = anchor.ExplainFeatures(data_->instance(0), 0);
  ASSERT_TRUE(explanation.ok());
  EXPECT_FALSE(explanation->empty());
  double precision =
      anchor.EstimatePrecision(data_->instance(0), *explanation, 400);
  EXPECT_GT(precision, 0.85);
}

TEST_F(ExplainersTest, AnchorSizeMatchedMode) {
  Anchor anchor(model_.get(), data_.get(), {});
  auto explanation = anchor.ExplainFeatures(data_->instance(1), 2);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->size(), 2u);
}

TEST_F(ExplainersTest, AnchorFullAnchorHasPerfectPrecision) {
  Anchor anchor(model_.get(), data_.get(), {});
  FeatureSet all = {0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(
      anchor.EstimatePrecision(data_->instance(0), all, 100), 1.0);
}

TEST_F(ExplainersTest, ExplainerNames) {
  Lime lime(model_.get(), data_.get(), {});
  KernelShap shap(model_.get(), data_.get(), {});
  Anchor anchor(model_.get(), data_.get(), {});
  EXPECT_EQ(lime.name(), "LIME");
  EXPECT_EQ(shap.name(), "SHAP");
  EXPECT_EQ(anchor.name(), "Anchor");
}

TEST(RankByImportanceTest, OrdersByAbsoluteValue) {
  std::vector<double> scores = {0.1, -0.9, 0.5, 0.0};
  std::vector<FeatureId> order = RankByImportance(scores);
  EXPECT_EQ(order, (std::vector<FeatureId>{1, 2, 0, 3}));
}

TEST(LinalgTest, SolvesDiagonalSystem) {
  auto x = SolveSpd({{2.0, 0.0}, {0.0, 4.0}}, {2.0, 8.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LinalgTest, SolvesGeneralSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
  auto x = SolveSpd({{4.0, 2.0}, {2.0, 3.0}}, {10.0, 8.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.75, 1e-12);
  EXPECT_NEAR((*x)[1], 1.5, 1e-12);
}

TEST(LinalgTest, RejectsNonSpd) {
  EXPECT_FALSE(SolveSpd({{0.0, 0.0}, {0.0, 0.0}}, {1.0, 1.0}).ok());
  EXPECT_FALSE(SolveSpd({}, {}).ok());
}

TEST(LinalgTest, RidgeRecoversLinearCoefficients) {
  // y = 3 x0 - 2 x1 with plenty of rows and tiny ridge.
  Rng rng(9);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  std::vector<double> weights;
  for (int i = 0; i < 200; ++i) {
    double x0 = rng.UniformDouble();
    double x1 = rng.UniformDouble();
    rows.push_back({x0, x1});
    targets.push_back(3.0 * x0 - 2.0 * x1);
    weights.push_back(1.0);
  }
  auto beta = SolveWeightedRidge(rows, targets, weights, 1e-9);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 3.0, 1e-5);
  EXPECT_NEAR((*beta)[1], -2.0, 1e-5);
}

TEST(LinalgTest, RidgeShrinksTowardZero) {
  std::vector<std::vector<double>> rows = {{1.0}, {1.0}};
  std::vector<double> targets = {1.0, 1.0};
  std::vector<double> weights = {1.0, 1.0};
  auto small = SolveWeightedRidge(rows, targets, weights, 1e-9);
  auto large = SolveWeightedRidge(rows, targets, weights, 100.0);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_NEAR((*small)[0], 1.0, 1e-6);
  EXPECT_LT((*large)[0], 0.1);
}

TEST(LinalgTest, RejectsInconsistentShapes) {
  EXPECT_FALSE(SolveWeightedRidge({{1.0}}, {1.0, 2.0}, {1.0}, 0.1).ok());
  EXPECT_FALSE(SolveWeightedRidge({}, {}, {}, 0.1).ok());
}

}  // namespace
}  // namespace cce::explain
