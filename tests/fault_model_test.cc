#include "serving/fault_model.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

/// Trivial deterministic backend: predicts parity of the first feature.
class ParityModel : public Model {
 public:
  Label Predict(const Instance& x) const override {
    return static_cast<Label>(x.empty() ? 0 : x[0] % 2);
  }
};

Instance SomeInstance() { return Instance{1, 2, 0}; }

std::vector<StatusCode> Schedule(const FaultInjectingModel::Options& options,
                                 size_t calls) {
  ParityModel base;
  FaultInjectingModel model(&base, options);
  std::vector<StatusCode> outcomes;
  outcomes.reserve(calls);
  for (size_t i = 0; i < calls; ++i) {
    outcomes.push_back(model.Predict(SomeInstance()).status().code());
  }
  return outcomes;
}

TEST(FaultModelTest, HealthyPassThroughMatchesWrappedModel) {
  ParityModel base;
  FaultInjectingModel model(&base, {});
  for (ValueId v = 0; v < 6; ++v) {
    Instance x{v, 0, 0};
    auto served = model.Predict(x);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(*served, base.Predict(x));
  }
  EXPECT_EQ(model.stats().calls, 6u);
  EXPECT_EQ(model.stats().successes, 6u);
  EXPECT_EQ(model.stats().transient_failures, 0u);
}

TEST(FaultModelTest, SchedulesAreDeterministicInTheSeed) {
  FaultInjectingModel::Options options;
  options.failure_rate = 0.3;
  options.transient_fraction = 0.7;
  options.latency_spike_rate = 0.1;
  options.seed = 7;
  std::vector<StatusCode> first = Schedule(options, 500);
  std::vector<StatusCode> second = Schedule(options, 500);
  EXPECT_EQ(first, second);

  options.seed = 8;
  EXPECT_NE(Schedule(options, 500), first) << "seed must drive the schedule";
}

TEST(FaultModelTest, FailureRateIsRoughlyRespected) {
  FaultInjectingModel::Options options;
  options.failure_rate = 0.3;
  options.seed = 11;
  ParityModel base;
  FaultInjectingModel model(&base, options);
  constexpr size_t kCalls = 2000;
  for (size_t i = 0; i < kCalls; ++i) model.Predict(SomeInstance());
  const double observed =
      static_cast<double>(model.stats().transient_failures) / kCalls;
  EXPECT_NEAR(observed, 0.3, 0.05);
  EXPECT_EQ(model.stats().permanent_failures, 0u)
      << "default transient_fraction=1 must never inject permanent faults";
}

TEST(FaultModelTest, TransientAndPermanentErrorsHaveDistinctCodes) {
  FaultInjectingModel::Options options;
  options.failure_rate = 1.0;
  options.transient_fraction = 0.0;
  ParityModel base;
  FaultInjectingModel model(&base, options);
  auto served = model.Predict(SomeInstance());
  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kInternal);
  EXPECT_FALSE(served.status().IsRetryable());

  options.transient_fraction = 1.0;
  FaultInjectingModel transient(&base, options);
  auto transient_served = transient.Predict(SomeInstance());
  ASSERT_FALSE(transient_served.ok());
  EXPECT_EQ(transient_served.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(transient_served.status().IsRetryable());
}

TEST(FaultModelTest, BurstsProduceCorrelatedRunsOfFailures) {
  FaultInjectingModel::Options options;
  options.failure_rate = 0.05;
  options.burst_length = 4;
  options.seed = 3;
  std::vector<StatusCode> outcomes = Schedule(options, 3000);
  // Every maximal run of failures is a whole number of bursts.
  size_t run = 0, failures = 0;
  for (StatusCode code : outcomes) {
    if (code != StatusCode::kOk) {
      ++run;
      ++failures;
    } else if (run > 0) {
      EXPECT_EQ(run % 4, 0u) << "failure runs must be whole bursts";
      run = 0;
    }
  }
  EXPECT_GT(failures, 0u);
}

TEST(FaultModelTest, FailForeverModelsAHardOutage) {
  ParityModel base;
  FaultInjectingModel::Options options;
  options.fail_forever = true;
  FaultInjectingModel model(&base, options);
  for (int i = 0; i < 50; ++i) {
    auto served = model.Predict(SomeInstance());
    ASSERT_FALSE(served.ok());
    EXPECT_EQ(served.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(model.stats().transient_failures, 50u);
  EXPECT_EQ(model.stats().successes, 0u);
}

TEST(FaultModelTest, LatencySpikesGoThroughTheInjectedSleep) {
  ParityModel base;
  FaultInjectingModel::Options options;
  options.latency_spike_rate = 0.5;
  options.latency_spike = std::chrono::milliseconds(17);
  std::vector<std::chrono::milliseconds> slept;
  FaultInjectingModel model(
      &base, options,
      [&slept](std::chrono::milliseconds d) { slept.push_back(d); });
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(model.Predict(SomeInstance()).ok());
  }
  EXPECT_EQ(model.stats().latency_spikes, slept.size());
  EXPECT_GT(slept.size(), 20u);
  for (auto d : slept) EXPECT_EQ(d, std::chrono::milliseconds(17));
}

}  // namespace
}  // namespace cce::serving
