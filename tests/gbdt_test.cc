#include "ml/gbdt.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cce::ml {
namespace {

TEST(GbdtTest, RejectsBadOptions) {
  Dataset data = cce::testing::RandomContext(50, 3, 2, 1);
  Gbdt::Options options;
  options.num_trees = 0;
  EXPECT_FALSE(Gbdt::Train(data, options).ok());
  options = Gbdt::Options();
  options.subsample = 0.0;
  EXPECT_FALSE(Gbdt::Train(data, options).ok());
  Dataset empty(data.schema_ptr());
  EXPECT_FALSE(Gbdt::Train(empty, Gbdt::Options()).ok());
}

TEST(GbdtTest, RejectsNonBinaryLabels) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  schema->InternLabel("l2");
  Dataset data(schema);
  data.Add({0}, 2);
  EXPECT_FALSE(Gbdt::Train(data, Gbdt::Options()).ok());
}

TEST(GbdtTest, LearnsDeterministicFunction) {
  // Labels are a noise-free function of features 0 and 1.
  Dataset data = cce::testing::RandomContext(1500, 5, 3, 2, /*noise=*/0.0);
  Rng rng(1);
  auto [train, test] = data.Split(0.7, &rng);
  Gbdt::Options options;
  options.num_trees = 60;
  options.max_depth = 4;
  auto model = Gbdt::Train(train, options);
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->Accuracy(test), 0.95);
}

TEST(GbdtTest, HandlesNoisyLabels) {
  Dataset data = cce::testing::RandomContext(1500, 5, 3, 3, /*noise=*/0.1);
  Rng rng(1);
  auto [train, test] = data.Split(0.7, &rng);
  auto model = Gbdt::Train(train, Gbdt::Options());
  ASSERT_TRUE(model.ok());
  // Bayes accuracy is 0.9; the model should land well above chance.
  EXPECT_GT((*model)->Accuracy(test), 0.8);
}

TEST(GbdtTest, MarginConsistentWithPrediction) {
  Dataset data = cce::testing::RandomContext(400, 4, 3, 4);
  auto model = Gbdt::Train(data, Gbdt::Options());
  ASSERT_TRUE(model.ok());
  for (size_t i = 0; i < 50; ++i) {
    const Instance& x = data.instance(i);
    Label y = (*model)->Predict(x);
    double margin = (*model)->Margin(x);
    EXPECT_EQ(y, margin > 0.0 ? 1u : 0u);
    double p = (*model)->Probability(x);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    EXPECT_EQ(p > 0.5, margin > 0.0);
  }
}

TEST(GbdtTest, SingleClassTrainingPredictsThatClass) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "u");
  schema->InternValue(f, "v");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  Dataset data(schema);
  for (int i = 0; i < 20; ++i) data.Add({static_cast<ValueId>(i % 2)}, 1);
  auto model = Gbdt::Train(data, Gbdt::Options());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->Predict({0}), 1u);
  EXPECT_EQ((*model)->Predict({1}), 1u);
}

TEST(GbdtTest, SubsamplingStillLearns) {
  Dataset data = cce::testing::RandomContext(1000, 4, 3, 5, /*noise=*/0.0);
  Gbdt::Options options;
  options.subsample = 0.5;
  options.num_trees = 80;
  auto model = Gbdt::Train(data, options);
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->Accuracy(data), 0.9);
}

TEST(GbdtTest, MakeContextUsesModelPredictions) {
  Dataset data = cce::testing::RandomContext(200, 4, 3, 6);
  auto model = Gbdt::Train(data, Gbdt::Options());
  ASSERT_TRUE(model.ok());
  Dataset context = (*model)->MakeContext(data);
  ASSERT_EQ(context.size(), data.size());
  for (size_t i = 0; i < context.size(); ++i) {
    EXPECT_EQ(context.label(i), (*model)->Predict(data.instance(i)));
    EXPECT_EQ(context.instance(i), data.instance(i));
  }
}

TEST(GbdtTest, UsedFeaturesWithinSchema) {
  Dataset data = cce::testing::RandomContext(500, 6, 3, 7, /*noise=*/0.0);
  auto model = Gbdt::Train(data, Gbdt::Options());
  ASSERT_TRUE(model.ok());
  std::vector<FeatureId> used = (*model)->UsedFeatures();
  EXPECT_FALSE(used.empty());
  for (FeatureId f : used) EXPECT_LT(f, 6u);
  // Features 0 and 1 determine the label; the model should use them.
  EXPECT_TRUE(std::binary_search(used.begin(), used.end(), 0u));
  EXPECT_TRUE(std::binary_search(used.begin(), used.end(), 1u));
}

TEST(GbdtTest, DeterministicGivenSeed) {
  Dataset data = cce::testing::RandomContext(300, 4, 3, 8);
  Gbdt::Options options;
  options.subsample = 0.7;
  options.seed = 99;
  auto a = Gbdt::Train(data, options);
  auto b = Gbdt::Train(data, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)->Margin(data.instance(i)),
                     (*b)->Margin(data.instance(i)));
  }
}

}  // namespace
}  // namespace cce::ml
