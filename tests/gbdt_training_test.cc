// Training-control features of the GBDT: column subsampling and
// early stopping (split out from gbdt_test.cc, which covers the learner's
// core behaviour).

#include <gtest/gtest.h>

#include "ml/gbdt.h"
#include "tests/test_util.h"

namespace cce::ml {
namespace {

TEST(GbdtTrainingTest, ColsampleValidation) {
  Dataset data = cce::testing::RandomContext(100, 4, 3, 1);
  Gbdt::Options options;
  options.colsample = 0.0;
  EXPECT_FALSE(Gbdt::Train(data, options).ok());
  options.colsample = 1.5;
  EXPECT_FALSE(Gbdt::Train(data, options).ok());
}

TEST(GbdtTrainingTest, ColsampleStillLearns) {
  Dataset data = cce::testing::RandomContext(1200, 6, 3, 2, /*noise=*/0.0);
  Gbdt::Options options;
  options.colsample = 0.5;
  options.num_trees = 80;
  auto model = Gbdt::Train(data, options);
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->Accuracy(data), 0.9);
}

TEST(GbdtTrainingTest, ColsampleOneMatchesBaseline) {
  Dataset data = cce::testing::RandomContext(300, 4, 3, 3);
  Gbdt::Options options;
  options.colsample = 1.0;
  auto a = Gbdt::Train(data, options);
  auto b = Gbdt::Train(data, Gbdt::Options());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ((*a)->Margin(data.instance(i)),
                     (*b)->Margin(data.instance(i)));
  }
}

TEST(GbdtTrainingTest, EarlyStoppingRequiresValidation) {
  Dataset data = cce::testing::RandomContext(100, 4, 3, 4);
  Gbdt::Options options;
  options.early_stopping_rounds = 5;
  EXPECT_FALSE(Gbdt::Train(data, options).ok());
  Dataset empty(data.schema_ptr());
  EXPECT_FALSE(Gbdt::TrainWithValidation(data, empty, options).ok());
}

TEST(GbdtTrainingTest, EarlyStoppingTruncatesNoisyFits) {
  // Very noisy labels: validation loss bottoms out early, so the stopped
  // ensemble must be (much) smaller than the full budget.
  Dataset data = cce::testing::RandomContext(1200, 5, 3, 5, /*noise=*/0.35);
  Rng rng(1);
  auto [train, validation] = data.Split(0.7, &rng);
  Gbdt::Options options;
  options.num_trees = 200;
  options.max_depth = 6;
  options.learning_rate = 0.4;
  options.early_stopping_rounds = 5;
  auto stopped = Gbdt::TrainWithValidation(train, validation, options);
  ASSERT_TRUE(stopped.ok());
  EXPECT_LT((*stopped)->trees().size(), 200u);
  EXPECT_GT((*stopped)->trees().size(), 0u);
}

TEST(GbdtTrainingTest, EarlyStoppingDoesNotHurtCleanFits) {
  Dataset data = cce::testing::RandomContext(1200, 5, 3, 6, /*noise=*/0.0);
  Rng rng(1);
  auto [train, validation] = data.Split(0.7, &rng);
  Gbdt::Options options;
  options.num_trees = 80;
  options.early_stopping_rounds = 15;
  auto model = Gbdt::TrainWithValidation(train, validation, options);
  ASSERT_TRUE(model.ok());
  EXPECT_GT((*model)->Accuracy(validation), 0.93);
}

TEST(GbdtTrainingTest, StoppedModelGeneralizesAtLeastAsWellAsFull) {
  // The point of early stopping: on noisy data the truncated ensemble's
  // held-out accuracy is within noise of (usually above) the over-fitted
  // full ensemble's.
  Dataset data = cce::testing::RandomContext(2000, 5, 3, 7, /*noise=*/0.3);
  Rng rng(2);
  auto [train_all, test] = data.Split(0.7, &rng);
  Rng rng2(3);
  auto [train, validation] = train_all.Split(0.8, &rng2);
  Gbdt::Options overfit;
  overfit.num_trees = 150;
  overfit.max_depth = 6;
  overfit.learning_rate = 0.4;
  auto full = Gbdt::Train(train, overfit);
  ASSERT_TRUE(full.ok());
  Gbdt::Options stopped_options = overfit;
  stopped_options.early_stopping_rounds = 8;
  auto stopped = Gbdt::TrainWithValidation(train, validation,
                                           stopped_options);
  ASSERT_TRUE(stopped.ok());
  EXPECT_GE((*stopped)->Accuracy(test) + 0.03, (*full)->Accuracy(test));
}

}  // namespace
}  // namespace cce::ml
