// Schema-level contracts of the synthetic dataset generators: the feature
// names, domain shapes, and knob behaviours the benches and examples rely
// on. Split out from generators_test.cc, which covers the statistical
// behaviour.

#include <set>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace cce::data {
namespace {

TEST(GeneratorSchemaTest, LoanFeatureNamesMatchTheCaseStudy) {
  Dataset loan = GenerateLoan({});
  const char* expected[] = {"Gender",    "Married",    "Dependents",
                            "Education", "SelfEmployed", "Income",
                            "CoIncome",  "Credit",     "LoanAmount",
                            "LoanTerm",  "Area"};
  ASSERT_EQ(loan.num_features(), 11u);
  for (FeatureId f = 0; f < 11; ++f) {
    EXPECT_EQ(loan.schema().FeatureName(f), expected[f]);
  }
  EXPECT_TRUE(loan.schema().LookupLabel("Denied").ok());
  EXPECT_TRUE(loan.schema().LookupLabel("Approved").ok());
}

TEST(GeneratorSchemaTest, LoanCategoricalDomains) {
  Dataset loan = GenerateLoan({});
  const Schema& s = loan.schema();
  EXPECT_EQ(s.DomainSize(*s.FeatureIndex("Gender")), 2u);
  EXPECT_EQ(s.DomainSize(*s.FeatureIndex("Credit")), 2u);
  EXPECT_EQ(s.DomainSize(*s.FeatureIndex("Dependents")), 4u);
  EXPECT_EQ(s.DomainSize(*s.FeatureIndex("LoanTerm")), 4u);
  EXPECT_EQ(s.DomainSize(*s.FeatureIndex("Area")), 3u);
  EXPECT_TRUE(s.LookupValue(*s.FeatureIndex("Credit"), "good").ok());
  EXPECT_TRUE(s.LookupValue(*s.FeatureIndex("Credit"), "poor").ok());
}

TEST(GeneratorSchemaTest, AdultBucketKnobResizesNumericDomains) {
  for (int buckets : {8, 12, 16}) {
    AdultOptions options;
    options.rows = 50;
    options.numeric_buckets = buckets;
    Dataset adult = GenerateAdult(options);
    const Schema& s = adult.schema();
    EXPECT_EQ(s.DomainSize(*s.FeatureIndex("Age")),
              static_cast<size_t>(buckets));
    EXPECT_EQ(s.DomainSize(*s.FeatureIndex("HoursPerWeek")),
              static_cast<size_t>(buckets));
    EXPECT_EQ(s.DomainSize(*s.FeatureIndex("CapitalGain")),
              static_cast<size_t>(buckets));
  }
}

TEST(GeneratorSchemaTest, EveryValueIdWithinDomain) {
  for (const std::string& name : GeneralDatasetNames()) {
    auto dataset = GenerateByName(name, 7, 500);
    ASSERT_TRUE(dataset.ok());
    for (size_t row = 0; row < dataset->size(); ++row) {
      for (FeatureId f = 0; f < dataset->num_features(); ++f) {
        EXPECT_LT(dataset->value(row, f), dataset->schema().DomainSize(f))
            << name << " row " << row << " feature " << f;
      }
      EXPECT_LT(dataset->label(row), dataset->schema().num_labels());
    }
  }
}

TEST(GeneratorSchemaTest, AllFeaturesTakeMultipleValues) {
  // Degenerate single-valued features would be dead weight for every
  // algorithm; the generators must produce live domains.
  for (const std::string& name : GeneralDatasetNames()) {
    auto dataset = GenerateByName(name, 9, 2000);
    ASSERT_TRUE(dataset.ok());
    for (FeatureId f = 0; f < dataset->num_features(); ++f) {
      std::set<ValueId> seen;
      for (size_t row = 0; row < dataset->size(); ++row) {
        seen.insert(dataset->value(row, f));
      }
      EXPECT_GE(seen.size(), 2u)
          << name << " feature " << dataset->schema().FeatureName(f);
    }
  }
}

TEST(GeneratorSchemaTest, GermanHas21FeaturesWithUniqueNames) {
  Dataset german = GenerateGerman({});
  std::set<std::string> names;
  for (FeatureId f = 0; f < german.num_features(); ++f) {
    names.insert(german.schema().FeatureName(f));
  }
  EXPECT_EQ(names.size(), 21u);
}

}  // namespace
}  // namespace cce::data
