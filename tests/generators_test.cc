#include "data/generators.h"

#include <gtest/gtest.h>

#include "ml/gbdt.h"

namespace cce::data {
namespace {

TEST(GeneratorsTest, LoanMatchesPaperShape) {
  LoanOptions options;
  Dataset loan = GenerateLoan(options);
  EXPECT_EQ(loan.size(), 614u);
  EXPECT_EQ(loan.num_features(), 11u);
  EXPECT_EQ(loan.schema().num_labels(), 2u);
}

TEST(GeneratorsTest, PaperShapesForAllDatasets) {
  struct Expected {
    const char* name;
    size_t rows;
    size_t features;
  };
  const Expected expected[] = {{"Adult", 32526, 14},
                               {"German", 1000, 21},
                               {"Compas", 6172, 11},
                               {"Loan", 614, 11},
                               {"Recid", 6340, 15}};
  for (const auto& e : expected) {
    auto dataset = GenerateByName(e.name, 1);
    ASSERT_TRUE(dataset.ok()) << e.name;
    EXPECT_EQ(dataset->size(), e.rows) << e.name;
    EXPECT_EQ(dataset->num_features(), e.features) << e.name;
  }
}

TEST(GeneratorsTest, RowOverrideShrinksDataset) {
  auto dataset = GenerateByName("Adult", 1, 500);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->size(), 500u);
}

TEST(GeneratorsTest, UnknownNameRejected) {
  EXPECT_EQ(GenerateByName("Mnist", 1).status().code(),
            StatusCode::kNotFound);
}

TEST(GeneratorsTest, DeterministicPerSeed) {
  LoanOptions options;
  options.seed = 7;
  Dataset a = GenerateLoan(options);
  Dataset b = GenerateLoan(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.instance(i), b.instance(i));
    EXPECT_EQ(a.label(i), b.label(i));
  }
  options.seed = 8;
  Dataset c = GenerateLoan(options);
  size_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff += a.instance(i) != c.instance(i);
  EXPECT_GT(diff, a.size() / 2);
}

TEST(GeneratorsTest, BothClassesPresentEverywhere) {
  for (const std::string& name : GeneralDatasetNames()) {
    auto dataset = GenerateByName(name, 3, 1000);
    ASSERT_TRUE(dataset.ok());
    size_t positives = 0;
    for (size_t i = 0; i < dataset->size(); ++i) {
      positives += dataset->label(i);
    }
    double rate = static_cast<double>(positives) /
                  static_cast<double>(dataset->size());
    EXPECT_GT(rate, 0.08) << name;
    EXPECT_LT(rate, 0.92) << name;
  }
}

TEST(GeneratorsTest, LoanBucketKnobChangesLoanAmountDomain) {
  LoanOptions coarse;
  coarse.loan_amount_buckets = 10;
  LoanOptions fine;
  fine.loan_amount_buckets = 20;
  Dataset a = GenerateLoan(coarse);
  Dataset b = GenerateLoan(fine);
  FeatureId f = *a.schema().FeatureIndex("LoanAmount");
  EXPECT_EQ(a.schema().DomainSize(f), 10u);
  EXPECT_EQ(b.schema().DomainSize(*b.schema().FeatureIndex("LoanAmount")),
            20u);
}

TEST(GeneratorsTest, LabelsAreLearnable) {
  // The labelling functions must be learnable from the features — the
  // precondition for every downstream experiment. Tested on subsampled
  // versions to keep the suite fast.
  for (const std::string& name : GeneralDatasetNames()) {
    auto dataset = GenerateByName(name, 5, 2000);
    ASSERT_TRUE(dataset.ok());
    Rng rng(2);
    auto [train, test] = dataset->Split(0.7, &rng);
    ml::Gbdt::Options options;
    options.num_trees = 40;
    auto model = ml::Gbdt::Train(train, options);
    ASSERT_TRUE(model.ok()) << name;
    double accuracy = (*model)->Accuracy(test);
    EXPECT_GT(accuracy, 0.7) << name << " accuracy " << accuracy;
  }
}

TEST(GeneratorsTest, FeatureAssociationsExist) {
  // Loan: married applicants should report higher co-income on average —
  // the kind of association relative keys exploit (paper benefit (b)).
  LoanOptions options;
  options.rows = 5000;
  Dataset loan = GenerateLoan(options);
  FeatureId married = *loan.schema().FeatureIndex("Married");
  FeatureId coincome = *loan.schema().FeatureIndex("CoIncome");
  double married_co = 0.0;
  double single_co = 0.0;
  size_t married_n = 0;
  size_t single_n = 0;
  for (size_t i = 0; i < loan.size(); ++i) {
    if (loan.value(i, married) == 1) {
      married_co += loan.value(i, coincome);
      ++married_n;
    } else {
      single_co += loan.value(i, coincome);
      ++single_n;
    }
  }
  ASSERT_GT(married_n, 0u);
  ASSERT_GT(single_n, 0u);
  EXPECT_GT(married_co / married_n, single_co / single_n + 0.3);
}

}  // namespace
}  // namespace cce::data
