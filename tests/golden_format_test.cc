// Golden-format stability: the serialization formats are versioned
// ("CCEDATASET v1" / "CCEGBDT v1"); these byte-exact goldens pin the
// writer so a format change cannot land silently — bump the version string
// and the goldens together.

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "io/serialize.h"
#include "ml/tree.h"

namespace cce::io {
namespace {

TEST(GoldenFormatTest, DatasetV1ByteLayout) {
  auto schema = std::make_shared<Schema>();
  FeatureId color = schema->AddFeature("color");
  schema->InternValue(color, "red");
  schema->InternValue(color, "blue");
  FeatureId size = schema->AddFeature("size");
  schema->InternValue(size, "small");
  schema->InternLabel("no");
  schema->InternLabel("yes");
  Dataset dataset(schema);
  dataset.Add({0, 0}, 1);
  dataset.Add({1, 0}, 0);

  std::stringstream out;
  CCE_CHECK_OK(SaveDataset(dataset, &out));
  EXPECT_EQ(out.str(),
            "CCEDATASET v1\n"
            "features 2\n"
            "feature 2 color\n"
            "red\n"
            "blue\n"
            "feature 1 size\n"
            "small\n"
            "labels 2\n"
            "no\n"
            "yes\n"
            "rows 2\n"
            "0 0 1\n"
            "1 0 0\n");
}

TEST(GoldenFormatTest, GbdtV1ByteLayout) {
  std::vector<ml::TreeNode> nodes(3);
  nodes[0].is_leaf = false;
  nodes[0].feature = 1;
  nodes[0].threshold = 2;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].value = 0.5;
  nodes[2].value = -0.25;
  auto tree = ml::RegressionTree::FromNodes(std::move(nodes));
  ASSERT_TRUE(tree.ok());
  std::vector<ml::RegressionTree> trees;
  trees.push_back(std::move(tree).value());
  auto model = ml::Gbdt::FromParts(0.125, std::move(trees));

  std::stringstream out;
  CCE_CHECK_OK(SaveGbdt(*model, &out));
  EXPECT_EQ(out.str(),
            "CCEGBDT v1\n"
            "base_score 0.125\n"
            "trees 1\n"
            "tree 3\n"
            "0 1 2 1 2 0\n"
            "1 0 0 -1 -1 0.5\n"
            "1 0 0 -1 -1 -0.25\n");
}

TEST(GoldenFormatTest, GoldenInputsStillLoad) {
  // The exact golden strings above must parse back (forward-compat check
  // for readers of archived v1 files).
  std::stringstream dataset_in(
      "CCEDATASET v1\nfeatures 1\nfeature 2 a\nu\nv\nlabels 1\nl\n"
      "rows 1\n1 0\n");
  auto dataset = LoadDataset(&dataset_in);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->value(0, 0), 1u);

  std::stringstream model_in(
      "CCEGBDT v1\nbase_score -1.5\ntrees 1\ntree 1\n1 0 0 -1 -1 2\n");
  auto model = LoadGbdt(&model_in);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ((*model)->Margin({0}), -1.5 + 2.0);
}

}  // namespace
}  // namespace cce::io
