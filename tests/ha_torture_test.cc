#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "serving/context_shard.h"
#include "serving/proxy.h"
#include "serving/replica_proxy.h"
#include "serving/replication.h"
#include "serving/serving_group.h"
#include "serving/supervisor.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

/// HA torture for the self-healing serving group: every iteration builds a
/// fresh leader + shipper + replica + group + supervisor over the same
/// directories (randomized kill-and-recover — nothing gets a clean
/// shutdown), with *independent* seeded fault schedules on the leader I/O
/// path and the replica catch-up path. Invariants:
///
///   1. No Create() ever fails and no group call crashes — damage
///      quarantines and degrades, it never kills the group.
///   2. The group keeps answering Explains whenever any backend holds a
///      non-empty view; a failure is only acceptable when both backends
///      are genuinely empty or broken, and then it is a clean status.
///   3. A non-degraded answer is never wrong: on fault-free iterations,
///      when its view_seq equals the leader's published sequence
///      (quiescent check), the key is bit-identical to the leader's own
///      Explain. (Mid-fault, a torn write can leave leader memory ahead
///      of the durable log at the same watermark, so equality is only
///      the contract once I/O is clean — same as replica_torture_test.)
///   4. With faults off, a fresh stack converges back to
///      GroupHealth::fully_healthy with ZERO manual repair calls — every
///      RepairShard/ForceResync/evict/readmit comes from the supervisor.
///
/// Iterations default to 25 (tier-1 budget); `SUITE=ha scripts/check.sh`
/// exports CCE_HA_ITERS=200 for the full ASan gate. Replay a CI failure
/// with CCE_FAULT_SEED=<seed>.

size_t IterationBudget() {
  const char* raw = std::getenv("CCE_HA_ITERS");
  if (raw == nullptr) return 25;
  const long parsed = std::strtol(raw, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : 25;
}

void WipeDir(const std::string& dir) {
  std::vector<std::string> names;
  if (io::Env::Default()->ListDir(dir, &names).ok()) {
    for (const std::string& entry : names) {
      (void)io::Env::Default()->RemoveFile(dir + "/" + entry);
    }
  }
}

/// Supervisor tuned for tick-driven torture: act on the first confirmed
/// fault, no wall-clock waits, no rate limit (determinism beats realism
/// here — the rate limiter has its own test).
Supervisor::Options TortureSupervisor() {
  Supervisor::Options options;
  options.observe_threshold = 1;
  options.repair_attempts = 2;
  options.park_ticks = 2;
  options.lag_budget_seq = 1u << 20;  // lag is expected mid-torture
  options.repair_backoff.initial_backoff = std::chrono::milliseconds(0);
  options.repair_backoff.max_backoff = std::chrono::milliseconds(0);
  options.action_rate.refill_per_sec = 0.0;  // unlimited
  return options;
}

TEST(HaTortureTest, GroupSurvivesDualFaultsAndSelfHeals) {
  const size_t kShards = 4;
  const size_t kIterations = IterationBudget();
  const std::string leader_dir = ::testing::TempDir() + "/ha_torture_leader";
  const std::string ship_dir = ::testing::TempDir() + "/ha_torture_ship";
  WipeDir(leader_dir);
  WipeDir(ship_dir);

  Dataset data = cce::testing::RandomContext(300, 4, 2, 31, /*noise=*/0.1);
  Rng rng(20260807);
  const uint64_t base_seed = cce::testing::FaultScheduleSeed(7000);

  size_t served = 0;
  size_t degraded_serves = 0;
  size_t hedges_fired = 0;
  size_t supervisor_actions = 0;

  for (size_t iter = 0; iter < kIterations; ++iter) {
    const uint64_t leader_seed = base_seed + 2 * iter;
    const uint64_t follower_seed = base_seed + 2 * iter + 1;
    io::FaultInjectingEnv::Options leader_faults;
    leader_faults.seed = leader_seed;
    io::FaultInjectingEnv::Options follower_faults;
    follower_faults.seed = follower_seed;
    if (iter % 4 != 3) {  // every 4th iteration runs fault-free
      leader_faults.write_error_probability = 0.02;
      leader_faults.torn_write_probability = 0.02;
      leader_faults.sync_error_probability = 0.01;
      leader_faults.read_error_probability = 0.01;
      follower_faults.read_error_probability = 0.03;
      follower_faults.short_read_probability = 0.02;
    }
    io::FaultInjectingEnv leader_env(io::Env::Default(), leader_faults);
    io::FaultInjectingEnv follower_env(io::Env::Default(), follower_faults);

    ExplainableProxy::Options leader_options;
    leader_options.monitor_drift = false;
    leader_options.shards = kShards;
    leader_options.durability.dir = leader_dir;
    leader_options.durability.sync_every = 1;
    leader_options.durability.compact_threshold_bytes = 8 * 1024;
    leader_options.durability.env = &leader_env;
    auto leader_or =
        ExplainableProxy::Create(data.schema_ptr(), nullptr, leader_options);
    ASSERT_TRUE(leader_or.ok())
        << "iteration " << iter << " (CCE_FAULT_SEED=" << leader_seed
        << "): " << leader_or.status().ToString();
    ExplainableProxy& leader = **leader_or;

    ShardLogShipper::Options ship_options;
    ship_options.source_dir = leader_dir;
    ship_options.ship_dir = ship_dir;
    ship_options.shards = kShards;
    ship_options.env = &leader_env;
    ShardLogShipper shipper(ship_options);

    ReplicaProxy::Options replica_options;
    replica_options.ship_dir = ship_dir;
    replica_options.env = &follower_env;
    auto replica_or =
        ReplicaProxy::Create(data.schema_ptr(), replica_options);
    ASSERT_TRUE(replica_or.ok())
        << "iteration " << iter << " (CCE_FAULT_SEED=" << follower_seed
        << "): " << replica_or.status().ToString();
    ReplicaProxy& replica = **replica_or;

    ServingGroup::Options group_options;
    group_options.hedge_min_delay = std::chrono::milliseconds(0);
    group_options.hedge_max_delay = std::chrono::milliseconds(2);
    auto group_or =
        ServingGroup::Create(&leader, {&replica}, group_options);
    ASSERT_TRUE(group_or.ok()) << group_or.status().ToString();
    ServingGroup& group = **group_or;
    Supervisor supervisor(&group, TortureSupervisor());

    const size_t rounds = 2 + rng.Uniform(4);
    for (size_t round = 0; round < rounds; ++round) {
      // Writes through the group land on the leader; injected I/O
      // failures must surface as clean backend errors.
      const size_t burst = 4 + rng.Uniform(12);
      for (size_t i = 0; i < burst; ++i) {
        const size_t row = rng.Uniform(data.size());
        Status recorded = group.Record(data.instance(row), data.label(row));
        if (!recorded.ok()) {
          ASSERT_TRUE(recorded.code() == StatusCode::kUnavailable ||
                      recorded.code() == StatusCode::kIoError)
              << recorded.ToString();
        }
      }
      // Replication machinery (normally background loops, driven here so
      // the schedule is deterministic). These are NOT repair calls.
      Status shipped = shipper.Ship(leader.PublishedSequence());
      if (!shipped.ok()) {
        ASSERT_EQ(shipped.code(), StatusCode::kIoError)
            << shipped.ToString();
      }
      CCE_CHECK_OK(replica.CatchUp());
      supervisor.TickOnce();

      // Invariants 2 + 3 on routed, hedged Explains.
      const bool leader_has_rows = leader.ContextSnapshot().size() > 0;
      const bool replica_has_rows = replica.published_seq() > 0;
      for (size_t probe = 0; probe < 3; ++probe) {
        const size_t row = rng.Uniform(data.size());
        auto result = group.Explain(data.instance(row), data.label(row));
        if (!result.ok()) {
          EXPECT_FALSE(leader_has_rows || replica_has_rows)
              << "iteration " << iter << " round " << round
              << " (CCE_FAULT_SEED=" << leader_seed
              << "): the group went dark while a backend held rows: "
              << result.status().ToString();
          EXPECT_TRUE(result.status().code() == StatusCode::kUnavailable ||
                      result.status().code() ==
                          StatusCode::kFailedPrecondition)
              << result.status().ToString();
          continue;
        }
        ++served;
        if (result->key.degraded) ++degraded_serves;
        if (iter % 4 == 3 && !result->key.degraded &&
            result->view_seq == leader.PublishedSequence()) {
          // Quiescent bit-identity check: same published sequence, same
          // key — wherever the answer was routed or hedged from. Only on
          // fault-free iterations: a torn write can leave the leader's
          // memory ahead of its durable log at the same watermark, and
          // the replica replays the log (replica_torture_test pins the
          // same contract — bit-identity holds once I/O is clean).
          auto expected = leader.Explain(data.instance(row), data.label(row));
          if (expected.ok() && !expected->degraded) {
            EXPECT_EQ(result->key.key, expected->key)
                << "iteration " << iter << " backend " << result->backend;
            EXPECT_EQ(result->key.pick_order, expected->pick_order);
            EXPECT_EQ(result->key.achieved_alpha, expected->achieved_alpha);
            EXPECT_EQ(result->key.satisfied, expected->satisfied);
          }
        }
      }
    }
    ServingGroup::GroupHealth group_health = group.Health();
    hedges_fired += group_health.hedges;
    supervisor_actions +=
        group.registry()
            .GetCounter("cce_supervisor_repair_shards_total", "")
            ->Value() +
        group.registry()
            .GetCounter("cce_supervisor_force_resyncs_total", "")
            ->Value();
    // Everything dropped here with no clean shutdown — the kill point.
  }
  EXPECT_GT(served, 0u) << "the torture never exercised a served Explain";

  // Invariant 4: faults off, a fresh stack must converge to fully-healthy
  // routing with zero manual repair calls — the supervisor does it all.
  ExplainableProxy::Options leader_options;
  leader_options.monitor_drift = false;
  leader_options.shards = kShards;
  leader_options.durability.dir = leader_dir;
  leader_options.durability.sync_every = 1;
  auto leader_or =
      ExplainableProxy::Create(data.schema_ptr(), nullptr, leader_options);
  ASSERT_TRUE(leader_or.ok()) << leader_or.status().ToString();
  ExplainableProxy& leader = **leader_or;
  ShardLogShipper::Options ship_options;
  ship_options.source_dir = leader_dir;
  ship_options.ship_dir = ship_dir;
  ship_options.shards = kShards;
  ShardLogShipper shipper(ship_options);
  ReplicaProxy::Options replica_options;
  replica_options.ship_dir = ship_dir;
  auto replica_or = ReplicaProxy::Create(data.schema_ptr(), replica_options);
  ASSERT_TRUE(replica_or.ok()) << replica_or.status().ToString();
  ReplicaProxy& replica = **replica_or;
  ServingGroup::Options group_options;
  auto group_or = ServingGroup::Create(&leader, {&replica}, group_options);
  ASSERT_TRUE(group_or.ok()) << group_or.status().ToString();
  ServingGroup& group = **group_or;
  Supervisor supervisor(&group, TortureSupervisor());

  bool converged = false;
  for (size_t round = 0; round < 200 && !converged; ++round) {
    supervisor.TickOnce();
    const size_t row = round % data.size();
    Status recorded = group.Record(data.instance(row), data.label(row));
    if (!recorded.ok()) {
      ASSERT_EQ(recorded.code(), StatusCode::kUnavailable)
          << recorded.ToString();
    }
    CCE_CHECK_OK(shipper.Ship(leader.PublishedSequence()));
    CCE_CHECK_OK(replica.CatchUp());
    converged = group.Health().fully_healthy;
  }
  ASSERT_TRUE(converged)
      << "the group never self-healed to fully-healthy routing";

  auto final_key = group.Explain(data.instance(0), data.label(0));
  ASSERT_TRUE(final_key.ok()) << final_key.status().ToString();
  EXPECT_FALSE(final_key->key.degraded);
  auto expected = leader.Explain(data.instance(0), data.label(0));
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  EXPECT_EQ(final_key->key.key, expected->key);

  if (kIterations >= 200) {
    // Over a full gate budget the machinery must actually have fired.
    EXPECT_GT(supervisor_actions, 0u)
        << "200 faulty iterations never triggered a supervised repair";
    EXPECT_GT(degraded_serves + hedges_fired, 0u);
  }
}

}  // namespace
}  // namespace cce::serving
