#include "explain/ids.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "tests/test_util.h"

namespace cce::explain {
namespace {

TEST(IdsTest, RejectsBadInputs) {
  cce::testing::Fig2Context fig2;
  Dataset empty(fig2.schema);
  EXPECT_FALSE(Ids::Summarize(empty, {}).ok());
  Ids::Options options;
  options.max_antecedent = 0;
  EXPECT_FALSE(Ids::Summarize(fig2.context, options).ok());
}

TEST(IdsTest, RuleMatching) {
  cce::testing::Fig2Context fig2;
  IdsRule rule;
  rule.antecedent = {{fig2.credit, 0}};  // Credit = poor
  EXPECT_TRUE(rule.Matches(fig2.context.instance(0)));
  EXPECT_FALSE(rule.Matches(fig2.context.instance(5)));
}

TEST(IdsTest, RuleToStringRendersPredicates) {
  cce::testing::Fig2Context fig2;
  IdsRule rule;
  rule.antecedent = {{fig2.credit, 0}, {fig2.income, 0}};
  rule.consequent = fig2.denied;
  std::string text = rule.ToString(*fig2.schema);
  EXPECT_NE(text.find("Credit='poor'"), std::string::npos);
  EXPECT_NE(text.find("THEN Denied"), std::string::npos);
}

TEST(IdsTest, SelectedRulesAreAccurate) {
  Dataset data = cce::testing::RandomContext(800, 5, 3, 70, /*noise=*/0.0);
  Ids::Options options;
  options.max_rules = 8;
  auto ids = Ids::Summarize(data, options);
  ASSERT_TRUE(ids.ok());
  EXPECT_LE(ids->rules().size(), 8u);
  EXPECT_FALSE(ids->rules().empty());
  for (const IdsRule& rule : ids->rules()) {
    EXPECT_GE(rule.precision, 0.55);
    EXPECT_GT(rule.coverage, 0u);
  }
}

TEST(IdsTest, SmallRuleSetsMissInstances) {
  // The Section 7.2 failure mode: a small global summary does not cover
  // every instance.
  data::LoanOptions loan_options;
  Dataset loan = data::GenerateLoan(loan_options);
  Ids::Options options;
  options.max_rules = 8;
  auto ids = Ids::Summarize(loan, options);
  ASSERT_TRUE(ids.ok());
  // An instance is *explained* only when some covering rule also predicts
  // its label; a small global summary leaves instances unexplained.
  size_t unexplained = 0;
  for (size_t row = 0; row < loan.size(); ++row) {
    int rule = ids->CoveringRule(loan.instance(row));
    if (rule < 0 ||
        ids->rules()[static_cast<size_t>(rule)].consequent !=
            loan.label(row)) {
      ++unexplained;
    }
  }
  EXPECT_GT(unexplained, 0u);
}

TEST(IdsTest, UnrestrictedModeMinesManyMoreRules) {
  data::LoanOptions loan_options;
  Dataset loan = data::GenerateLoan(loan_options);
  Ids::Options restricted;
  restricted.max_rules = 8;
  Ids::Options unrestricted;
  unrestricted.max_rules = 0;
  unrestricted.min_support = 0.005;
  auto small = Ids::Summarize(loan, restricted);
  auto large = Ids::Summarize(loan, unrestricted);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->rules().size(), 10 * small->rules().size());
}

TEST(IdsTest, GreedySelectionPrefersCoverage) {
  auto ids = Ids::Summarize(
      cce::testing::RandomContext(500, 4, 3, 71, /*noise=*/0.0), {});
  ASSERT_TRUE(ids.ok());
  // The selected set must cover a decent share of the dataset.
  Dataset data = cce::testing::RandomContext(500, 4, 3, 71, /*noise=*/0.0);
  size_t covered = 0;
  for (size_t row = 0; row < data.size(); ++row) {
    if (ids->CoveringRule(data.instance(row)) >= 0) ++covered;
  }
  EXPECT_GT(covered, data.size() / 4);
}

}  // namespace
}  // namespace cce::explain
