#include "core/importance.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "tests/test_util.h"

namespace cce {
namespace {

TEST(ContextShapleyTest, ValidatesArguments) {
  testing::Fig2Context fig2;
  ContextShapley::Options bad;
  bad.permutations = 0;
  EXPECT_FALSE(ContextShapley::ComputeForRow(fig2.context, 0, bad).ok());
  EXPECT_FALSE(
      ContextShapley::Compute(fig2.context, Instance{0}, 0, {}).ok());
  EXPECT_EQ(
      ContextShapley::ComputeForRow(fig2.context, 99, {}).status().code(),
      StatusCode::kOutOfRange);
}

TEST(ContextShapleyTest, EfficiencyAxiomExact) {
  // With 4 features the computation is exact: values must sum to
  // v(all) - v(empty) = conformity gain of the full feature set.
  testing::Fig2Context fig2;
  auto shapley = ContextShapley::ComputeForRow(fig2.context, 0, {});
  ASSERT_TRUE(shapley.ok());
  double sum = std::accumulate(shapley->begin(), shapley->end(), 0.0);
  // v(empty) = 1 - 3/7 (three approved rows agree vacuously); v(all) = 1.
  EXPECT_NEAR(sum, 3.0 / 7.0, 1e-12);
}

TEST(ContextShapleyTest, KeyFeaturesDominates) {
  // For Fig. 2's x0 the relative key is {Income, Credit}; those two
  // features must carry the highest importance.
  testing::Fig2Context fig2;
  auto shapley = ContextShapley::ComputeForRow(fig2.context, 0, {});
  ASSERT_TRUE(shapley.ok());
  double income = (*shapley)[fig2.income];
  double credit = (*shapley)[fig2.credit];
  double gender = (*shapley)[fig2.gender];
  EXPECT_GT(credit, gender);
  EXPECT_GT(income, gender);
  // Credit alone removes 2 of 3 violators: it should rank highest.
  EXPECT_GE(credit, income);
}

TEST(ContextShapleyTest, NullFeatureGetsZero) {
  // A feature with a single-value domain can never separate instances.
  auto schema = std::make_shared<Schema>();
  FeatureId informative = schema->AddFeature("a");
  schema->InternValue(informative, "u");
  schema->InternValue(informative, "v");
  FeatureId constant = schema->AddFeature("b");
  schema->InternValue(constant, "only");
  schema->InternLabel("neg");
  schema->InternLabel("pos");
  Dataset context(schema);
  context.Add({0, 0}, 0);
  context.Add({1, 0}, 1);
  context.Add({0, 0}, 0);
  auto shapley = ContextShapley::ComputeForRow(context, 0, {});
  ASSERT_TRUE(shapley.ok());
  EXPECT_NEAR((*shapley)[constant], 0.0, 1e-12);
  EXPECT_GT((*shapley)[informative], 0.0);
}

TEST(ContextShapleyTest, SymmetryAxiomExact) {
  // Two clones of the same separating feature must get equal values.
  auto schema = std::make_shared<Schema>();
  FeatureId a = schema->AddFeature("a");
  FeatureId b = schema->AddFeature("b");
  for (FeatureId f : {a, b}) {
    schema->InternValue(f, "u");
    schema->InternValue(f, "v");
  }
  schema->InternLabel("neg");
  schema->InternLabel("pos");
  Dataset context(schema);
  context.Add({0, 0}, 0);
  context.Add({1, 1}, 1);  // differs from x0 on both clones
  auto shapley = ContextShapley::ComputeForRow(context, 0, {});
  ASSERT_TRUE(shapley.ok());
  EXPECT_NEAR((*shapley)[a], (*shapley)[b], 1e-12);
}

TEST(ContextShapleyTest, SampledApproximatesExact) {
  Dataset context = testing::RandomContext(150, 6, 3, 71, /*noise=*/0.0);
  ContextShapley::Options exact_options;
  exact_options.exact_limit = 720;  // 6! enumerable
  auto exact = ContextShapley::ComputeForRow(context, 0, exact_options);
  ASSERT_TRUE(exact.ok());
  ContextShapley::Options sampled_options;
  sampled_options.exact_limit = 0;  // force sampling
  sampled_options.permutations = 4000;
  auto sampled = ContextShapley::ComputeForRow(context, 0,
                                               sampled_options);
  ASSERT_TRUE(sampled.ok());
  for (size_t f = 0; f < 6; ++f) {
    EXPECT_NEAR((*sampled)[f], (*exact)[f], 0.03) << "feature " << f;
  }
}

TEST(OnlineContextShapleyTest, ValidatesArguments) {
  testing::Fig2Context fig2;
  OnlineContextShapley::Options bad;
  bad.window_size = 0;
  EXPECT_FALSE(OnlineContextShapley::Create(
                   fig2.schema, fig2.context.instance(0), fig2.denied, bad)
                   .ok());
  EXPECT_FALSE(
      OnlineContextShapley::Create(nullptr, fig2.context.instance(0),
                                   fig2.denied, {})
          .ok());
}

TEST(OnlineContextShapleyTest, TracksWindowContents) {
  testing::Fig2Context fig2;
  OnlineContextShapley::Options options;
  options.refresh_every = 1;  // refresh after every arrival
  auto online = OnlineContextShapley::Create(
      fig2.schema, fig2.context.instance(0), fig2.denied, options);
  ASSERT_TRUE(online.ok());
  for (size_t row = 1; row < fig2.context.size(); ++row) {
    CCE_CHECK_OK((*online)->Observe(fig2.context.instance(row),
                                    fig2.context.label(row)));
  }
  // After the full stream the window equals the Fig. 2 context minus x0;
  // compare against the batch computation on the same rows.
  std::vector<size_t> rows = {1, 2, 3, 4, 5, 6};
  Dataset arrived = fig2.context.Subset(rows);
  auto batch = ContextShapley::Compute(arrived, fig2.context.instance(0),
                                       fig2.denied, {});
  ASSERT_TRUE(batch.ok());
  for (size_t f = 0; f < 4; ++f) {
    EXPECT_NEAR((*online)->importances()[f], (*batch)[f], 1e-12);
  }
}

TEST(OnlineContextShapleyTest, ImportanceShiftsUnderDrift) {
  // Stream where feature 0 decides labels first, then feature 1 does: the
  // windowed importances must shift accordingly.
  auto schema = std::make_shared<Schema>();
  FeatureId a = schema->AddFeature("a");
  FeatureId b = schema->AddFeature("b");
  for (FeatureId f : {a, b}) {
    schema->InternValue(f, "u");
    schema->InternValue(f, "v");
  }
  schema->InternLabel("neg");
  schema->InternLabel("pos");

  OnlineContextShapley::Options options;
  options.window_size = 64;
  options.refresh_every = 16;
  Instance x0 = {0, 0};
  auto online = OnlineContextShapley::Create(schema, x0, 0, options);
  ASSERT_TRUE(online.ok());

  Rng rng(5);
  // Phase 1: label = feature a.
  for (int i = 0; i < 128; ++i) {
    ValueId va = static_cast<ValueId>(rng.Uniform(2));
    ValueId vb = static_cast<ValueId>(rng.Uniform(2));
    CCE_CHECK_OK((*online)->Observe({va, vb}, va));
  }
  double a_phase1 = (*online)->importances()[a];
  double b_phase1 = (*online)->importances()[b];
  EXPECT_GT(a_phase1, b_phase1);
  // Phase 2: label = feature b; after the window turns over, b dominates.
  for (int i = 0; i < 128; ++i) {
    ValueId va = static_cast<ValueId>(rng.Uniform(2));
    ValueId vb = static_cast<ValueId>(rng.Uniform(2));
    CCE_CHECK_OK((*online)->Observe({va, vb}, vb));
  }
  double a_phase2 = (*online)->importances()[a];
  double b_phase2 = (*online)->importances()[b];
  EXPECT_GT(b_phase2, a_phase2);
}

}  // namespace
}  // namespace cce
