#include "explain/kl_bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace cce::explain {
namespace {

TEST(KlBernoulliTest, ZeroAtEquality) {
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(KlBernoulli(p, p), 0.0, 1e-9) << p;
  }
}

TEST(KlBernoulliTest, PositiveAndIncreasingAwayFromP) {
  EXPECT_GT(KlBernoulli(0.5, 0.6), 0.0);
  EXPECT_GT(KlBernoulli(0.5, 0.7), KlBernoulli(0.5, 0.6));
  EXPECT_GT(KlBernoulli(0.5, 0.3), KlBernoulli(0.5, 0.4));
}

TEST(KlBernoulliTest, KnownValue) {
  // KL(0.5 || 0.25) = 0.5 ln 2 + 0.5 ln(2/3).
  EXPECT_NEAR(KlBernoulli(0.5, 0.25),
              0.5 * std::log(2.0) + 0.5 * std::log(2.0 / 3.0), 1e-9);
}

TEST(KlBoundsTest, BracketsTheEstimate) {
  for (double p_hat : {0.0, 0.2, 0.5, 0.95, 1.0}) {
    for (size_t n : {5u, 50u, 500u}) {
      double beta = LucbBeta(n, 0.05);
      double upper = KlUpperBound(p_hat, n, beta);
      double lower = KlLowerBound(p_hat, n, beta);
      EXPECT_LE(lower, p_hat + 1e-9);
      EXPECT_GE(upper, p_hat - 1e-9);
      EXPECT_GE(lower, 0.0);
      EXPECT_LE(upper, 1.0);
    }
  }
}

TEST(KlBoundsTest, TightenWithSamples) {
  double beta = std::log(1.0 / 0.05);
  double wide = KlUpperBound(0.8, 10, beta) - KlLowerBound(0.8, 10, beta);
  double narrow =
      KlUpperBound(0.8, 1000, beta) - KlLowerBound(0.8, 1000, beta);
  EXPECT_LT(narrow, wide);
  EXPECT_LT(narrow, 0.1);
}

TEST(KlBoundsTest, DegenerateSampleCounts) {
  EXPECT_DOUBLE_EQ(KlUpperBound(0.5, 0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(KlLowerBound(0.5, 0, 1.0), 0.0);
}

TEST(KlBoundsTest, CoverageSimulation) {
  // Empirical coverage check: the KL lower bound at delta = 0.1 must
  // undershoot the true proportion in well over 90% of trials.
  Rng rng(17);
  const double truth = 0.9;
  const size_t n = 200;
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) hits += rng.Bernoulli(truth);
    double p_hat = static_cast<double>(hits) / n;
    double lcb = KlLowerBound(p_hat, n, LucbBeta(n, 0.1));
    covered += (lcb <= truth);
  }
  EXPECT_GT(covered, trials * 92 / 100);
}

TEST(KlBoundsTest, TighterThanHoeffdingNearOne) {
  // The reason Anchor uses KL bounds: near p = 1 the KL interval is much
  // tighter than Hoeffding's sqrt(log(2/delta) / 2n).
  const size_t n = 100;
  const double delta = 0.05;
  double hoeffding = std::sqrt(std::log(2.0 / delta) / (2.0 * n));
  double kl_halfwidth =
      0.98 - KlLowerBound(0.98, n, std::log(1.0 / delta));
  EXPECT_LT(kl_halfwidth, hoeffding / 2.0);
}

}  // namespace
}  // namespace cce::explain
