#include "data/loader.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace cce::data {
namespace {

CsvTable MixedTable() {
  auto table = ParseCsv(
      "age,color,score,label\n"
      "25,red,1.5,yes\n"
      "35,blue,2.5,no\n"
      "45,red,3.5,yes\n"
      "55,green,4.5,no\n");
  CCE_CHECK(table.ok());
  return *table;
}

TEST(LoaderTest, RequiresLabelColumn) {
  LoadOptions options;
  EXPECT_FALSE(LoadCsvDataset(MixedTable(), options).ok());
  options.label_column = "missing";
  EXPECT_EQ(LoadCsvDataset(MixedTable(), options).status().code(),
            StatusCode::kNotFound);
}

TEST(LoaderTest, BuildsSchemaWithAutoTyping) {
  LoadOptions options;
  options.label_column = "label";
  options.numeric_buckets = 4;
  auto dataset = LoadCsvDataset(MixedTable(), options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->size(), 4u);
  EXPECT_EQ(dataset->num_features(), 3u);
  // age and score become bucketed numerics (+1 missing marker bucket),
  // color a 3-value categorical.
  FeatureId age = *dataset->schema().FeatureIndex("age");
  FeatureId color = *dataset->schema().FeatureIndex("color");
  EXPECT_EQ(dataset->schema().DomainSize(age), 5u);
  EXPECT_EQ(dataset->schema().DomainSize(color), 3u);
  EXPECT_EQ(dataset->schema().num_labels(), 2u);
}

TEST(LoaderTest, NumericOrderingPreserved) {
  LoadOptions options;
  options.label_column = "label";
  options.numeric_buckets = 4;
  auto dataset = LoadCsvDataset(MixedTable(), options);
  ASSERT_TRUE(dataset.ok());
  FeatureId age = *dataset->schema().FeatureIndex("age");
  // Rows are sorted by age in the fixture: bucket ids must be
  // non-decreasing.
  for (size_t i = 1; i < dataset->size(); ++i) {
    EXPECT_LE(dataset->value(i - 1, age), dataset->value(i, age));
  }
  EXPECT_LT(dataset->value(0, age), dataset->value(3, age));
}

TEST(LoaderTest, MissingMarkersBecomeCategory) {
  auto table = ParseCsv(
      "x,label\n"
      "1,a\n"
      "?,b\n"
      "3,a\n");
  ASSERT_TRUE(table.ok());
  LoadOptions options;
  options.label_column = "label";
  auto dataset = LoadCsvDataset(*table, options);
  ASSERT_TRUE(dataset.ok());
  FeatureId x = *dataset->schema().FeatureIndex("x");
  ValueId missing = *dataset->schema().LookupValue(x, "?");
  EXPECT_EQ(dataset->value(1, x), missing);
  EXPECT_NE(dataset->value(0, x), missing);
}

TEST(LoaderTest, AllCategoricalColumn) {
  auto table = ParseCsv(
      "x,label\n"
      "1a,pos\n"
      "2b,neg\n");
  ASSERT_TRUE(table.ok());
  LoadOptions options;
  options.label_column = "label";
  auto dataset = LoadCsvDataset(*table, options);
  ASSERT_TRUE(dataset.ok());
  FeatureId x = *dataset->schema().FeatureIndex("x");
  EXPECT_EQ(dataset->schema().DomainSize(x), 2u);
}

TEST(LoaderTest, RejectsEmptyTable) {
  auto table = ParseCsv("a,label\n");
  ASSERT_TRUE(table.ok());
  LoadOptions options;
  options.label_column = "label";
  EXPECT_FALSE(LoadCsvDataset(*table, options).ok());
}

TEST(LoaderTest, RejectsBadBucketCount) {
  LoadOptions options;
  options.label_column = "label";
  options.numeric_buckets = 0;
  EXPECT_FALSE(LoadCsvDataset(MixedTable(), options).ok());
}

TEST(LoaderTest, MissingFilePropagatesIoError) {
  LoadOptions options;
  options.label_column = "label";
  EXPECT_EQ(LoadCsvDatasetFromFile("/no/such/file.csv", options)
                .status()
                .code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace cce::data
