// docs/metrics.md cannot drift (satellite 2): this test boots a proxy with
// every subsystem enabled (overload, cache, durability, tracing), adds the
// thread-pool gauges, collects the live registry, and fails if the doc
// table and the registry disagree in either direction — an undocumented
// metric or a documented ghost both break tier 1.

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serving/proxy.h"
#include "serving/replica_proxy.h"
#include "serving/replication.h"
#include "serving/serving_group.h"
#include "serving/supervisor.h"
#include "tests/test_util.h"

#ifndef CCE_SOURCE_DIR
#error "tests must be compiled with CCE_SOURCE_DIR"
#endif

namespace cce::serving {
namespace {

class ParityModel : public Model {
 public:
  Label Predict(const Instance& x) const override {
    return static_cast<Label>(x.empty() ? 0 : x[0] % 2);
  }
};

/// Parses the doc's metric tables: rows of the form
///   | `cce_name` | type | labels | description |
/// anywhere in the file. Returns name -> declared type string.
std::map<std::string, std::string> ParseDocumentedMetrics(
    const std::string& path) {
  std::map<std::string, std::string> documented;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("| `cce_", 0) != 0) continue;
    // Column 1: metric name between the first backtick pair.
    const size_t name_start = line.find('`') + 1;
    const size_t name_end = line.find('`', name_start);
    if (name_end == std::string::npos) continue;
    const std::string name = line.substr(name_start, name_end - name_start);
    // Column 2: the type word between the next two pipes.
    size_t col = line.find('|', name_end);
    if (col == std::string::npos) continue;
    size_t col_end = line.find('|', col + 1);
    if (col_end == std::string::npos) continue;
    std::string type = line.substr(col + 1, col_end - col - 1);
    // Trim surrounding spaces.
    const size_t first = type.find_first_not_of(' ');
    const size_t last = type.find_last_not_of(' ');
    type = first == std::string::npos
               ? ""
               : type.substr(first, last - first + 1);
    documented[name] = type;
  }
  return documented;
}

TEST(MetricsDocTest, DocAndLiveRegistryAgreeExactly) {
  // A proxy with everything on registers every serving-layer family at
  // construction; no traffic is needed.
  testing::Fig2Context fig2;
  ParityModel model;
  const std::string dir = ::testing::TempDir() + "/metrics_doc_wal";
  std::remove((dir + "/context.wal").c_str());
  std::remove((dir + "/context.snapshot").c_str());
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.overload.enabled = true;
  options.durability.dir = dir;
  auto proxy = ExplainableProxy::Create(fig2.schema, &model, options);
  ASSERT_TRUE(proxy.ok());
  obs::Registry& registry = (*proxy)->registry();
  // The batch explain pool gauges live in whatever registry the binder is
  // given; bind them here so the doc must cover them too.
  ThreadPool pool(1);
  obs::ThreadPoolGauges pool_gauges(&registry, &pool, "explain_many");

  // The replication pair registers its families in the same registry; one
  // ship + catch-up cycle also creates the lazy per-shard tail gauge.
  const std::string ship_dir = ::testing::TempDir() + "/metrics_doc_ship";
  ShardLogShipper::Options ship_options;
  ship_options.source_dir = dir;
  ship_options.ship_dir = ship_dir;
  ship_options.shards = 1;
  ship_options.registry = &registry;
  ShardLogShipper shipper(ship_options);
  ASSERT_TRUE(shipper.Ship((*proxy)->PublishedSequence()).ok());
  ReplicaProxy::Options replica_options;
  replica_options.ship_dir = ship_dir;
  // Non-owning alias: the replica reports into the proxy's registry.
  replica_options.registry =
      std::shared_ptr<obs::Registry>(std::shared_ptr<void>(), &registry);
  auto replica = ReplicaProxy::Create(fig2.schema, replica_options);
  ASSERT_TRUE(replica.ok());

  // The serving group and its supervisor register the cce_group_* and
  // cce_supervisor_* families; one tick populates the labeled fault and
  // ladder-level cells.
  ServingGroup::Options group_options;
  group_options.registry =
      std::shared_ptr<obs::Registry>(std::shared_ptr<void>(), &registry);
  auto group = ServingGroup::Create(proxy->get(), {replica->get()},
                                    group_options);
  ASSERT_TRUE(group.ok());
  Supervisor supervisor(group->get());
  supervisor.TickOnce();

  // The network front end registers every cce_net_* family eagerly at
  // Create (no Start, no traffic), reporting into the same registry.
  net::NetServer::Options net_options;
  net_options.port = 0;
  net_options.registry =
      std::shared_ptr<obs::Registry>(std::shared_ptr<void>(), &registry);
  auto net_server = net::NetServer::Create(group->get(), net_options);
  ASSERT_TRUE(net_server.ok());

  std::map<std::string, std::string> live;
  for (const auto& family : registry.Collect()) {
    live[family.name] = obs::MetricTypeName(family.type);
  }
  ASSERT_GE(live.size(), 30u) << "expected the full instrument set";

  const std::map<std::string, std::string> documented =
      ParseDocumentedMetrics(std::string(CCE_SOURCE_DIR) +
                             "/docs/metrics.md");

  for (const auto& [name, type] : live) {
    auto it = documented.find(name);
    EXPECT_TRUE(it != documented.end())
        << "metric `" << name << "` (" << type
        << ") exists in the registry but is missing from docs/metrics.md";
    if (it != documented.end()) {
      EXPECT_EQ(it->second, type)
          << "docs/metrics.md declares `" << name << "` as " << it->second
          << " but the registry says " << type;
    }
  }
  for (const auto& [name, type] : documented) {
    EXPECT_TRUE(live.count(name) == 1)
        << "docs/metrics.md documents `" << name << "` (" << type
        << ") but no such metric is registered — stale doc entry";
  }

  std::remove((dir + "/context.wal").c_str());
  std::remove((dir + "/context.snapshot").c_str());
}

}  // namespace
}  // namespace cce::serving
