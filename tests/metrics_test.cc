#include "core/metrics.h"

#include <gtest/gtest.h>

#include "ml/gbdt.h"
#include "tests/test_util.h"

namespace cce {
namespace {

std::vector<ExplainedInstance> Fig2Explained(
    const testing::Fig2Context& fig2) {
  std::vector<ExplainedInstance> out;
  FeatureSet good_key = {fig2.income, fig2.credit};
  std::sort(good_key.begin(), good_key.end());
  FeatureSet bad_key = {fig2.credit};  // violated by x1
  out.push_back({fig2.context.instance(0), fig2.denied, good_key});
  out.push_back({fig2.context.instance(0), fig2.denied, bad_key});
  return out;
}

TEST(MetricsTest, ConformityCountsConformantExplanations) {
  testing::Fig2Context fig2;
  double conformity = Conformity(fig2.context, Fig2Explained(fig2));
  EXPECT_DOUBLE_EQ(conformity, 50.0);
}

TEST(MetricsTest, ConformityOfEmptyListIsPerfect) {
  testing::Fig2Context fig2;
  EXPECT_DOUBLE_EQ(Conformity(fig2.context, {}), 100.0);
}

TEST(MetricsTest, AveragePrecision) {
  testing::Fig2Context fig2;
  double precision = AveragePrecision(fig2.context, Fig2Explained(fig2));
  EXPECT_NEAR(precision, (1.0 + 6.0 / 7.0) / 2.0, 1e-12);
}

TEST(MetricsTest, AverageSuccinctness) {
  testing::Fig2Context fig2;
  EXPECT_DOUBLE_EQ(AverageSuccinctness(Fig2Explained(fig2)), 1.5);
  EXPECT_DOUBLE_EQ(AverageSuccinctness({}), 0.0);
}

TEST(MetricsTest, RecallOfEqualCoverIsBalanced) {
  testing::Fig2Context fig2;
  const Instance& x0 = fig2.context.instance(0);
  FeatureSet key = {fig2.income, fig2.credit};
  std::sort(key.begin(), key.end());
  EXPECT_DOUBLE_EQ(Recall(fig2.context, x0, fig2.denied, key, key), 1.0);
}

TEST(MetricsTest, SmallerKeyCoversMoreSoRecallHigher) {
  testing::Fig2Context fig2;
  const Instance& x0 = fig2.context.instance(0);
  FeatureSet small_key = {fig2.income, fig2.credit};
  std::sort(small_key.begin(), small_key.end());
  FeatureSet big_key = {fig2.gender, fig2.income, fig2.credit,
                        fig2.dependent};
  std::sort(big_key.begin(), big_key.end());
  double recall_small =
      Recall(fig2.context, x0, fig2.denied, small_key, big_key);
  double recall_big =
      Recall(fig2.context, x0, fig2.denied, big_key, small_key);
  EXPECT_GT(recall_small, recall_big);
  EXPECT_DOUBLE_EQ(recall_small, 1.0);  // covers a superset
}

TEST(MetricsTest, RecallInUnitInterval) {
  testing::Fig2Context fig2;
  const Instance& x0 = fig2.context.instance(0);
  for (FeatureId a = 0; a < 4; ++a) {
    for (FeatureId b = 0; b < 4; ++b) {
      double recall = Recall(fig2.context, x0, fig2.denied, {a}, {b});
      EXPECT_GE(recall, 0.0);
      EXPECT_LE(recall, 1.0);
    }
  }
}

TEST(MetricsTest, EvaluateQualityMatchesIndividualMetrics) {
  testing::Fig2Context fig2;
  auto explained = Fig2Explained(fig2);
  QualityReport report = EvaluateQuality(fig2.context, explained);
  EXPECT_DOUBLE_EQ(report.conformity, Conformity(fig2.context, explained));
  EXPECT_NEAR(report.precision, AveragePrecision(fig2.context, explained),
              1e-12);
  EXPECT_DOUBLE_EQ(report.succinctness, AverageSuccinctness(explained));
}

TEST(MetricsTest, FaithfulnessBoundsAndMonotonicity) {
  // Faithfulness is in [0,1]; masking an empty explanation never changes
  // the prediction, so it scores exactly 1 (the worst value).
  Dataset data = testing::RandomContext(400, 5, 3, 9, /*noise=*/0.05);
  Rng split_rng(1);
  auto [train, test] = data.Split(0.7, &split_rng);
  ml::Gbdt::Options options;
  options.num_trees = 20;
  auto model = ml::Gbdt::Train(train, options);
  ASSERT_TRUE(model.ok());

  std::vector<ExplainedInstance> empty_explanations;
  std::vector<ExplainedInstance> full_explanations;
  for (size_t row = 0; row < 10; ++row) {
    const Instance& x = test.instance(row);
    Label y = (*model)->Predict(x);
    empty_explanations.push_back({x, y, {}});
    FeatureSet all = {0, 1, 2, 3, 4};
    full_explanations.push_back({x, y, all});
  }
  Rng rng(3);
  double empty_faithfulness =
      Faithfulness(**model, train, empty_explanations, 16, &rng);
  double full_faithfulness =
      Faithfulness(**model, train, full_explanations, 16, &rng);
  EXPECT_DOUBLE_EQ(empty_faithfulness, 1.0);
  EXPECT_GE(full_faithfulness, 0.0);
  EXPECT_LE(full_faithfulness, 1.0);
  // Masking everything perturbs at least as much as masking nothing.
  EXPECT_LE(full_faithfulness, empty_faithfulness);
}

}  // namespace
}  // namespace cce
