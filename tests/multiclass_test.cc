#include "ml/multiclass.h"

#include <gtest/gtest.h>

#include "core/srk.h"
#include "tests/test_util.h"

namespace cce::ml {
namespace {

// A 3-class dataset whose label is a function of feature 0.
Dataset ThreeClassData(size_t rows, uint64_t seed, double noise) {
  auto schema = std::make_shared<Schema>();
  FeatureId a = schema->AddFeature("a");
  FeatureId b = schema->AddFeature("b");
  for (FeatureId f : {a, b}) {
    for (int v = 0; v < 6; ++v) {
      schema->InternValue(f, "v" + std::to_string(v));
    }
  }
  schema->InternLabel("c0");
  schema->InternLabel("c1");
  schema->InternLabel("c2");
  Dataset data(schema);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    Instance x = {static_cast<ValueId>(rng.Uniform(6)),
                  static_cast<ValueId>(rng.Uniform(6))};
    Label y = static_cast<Label>(x[0] / 2);  // 0,1 -> c0; 2,3 -> c1; ...
    if (noise > 0.0 && rng.Bernoulli(noise)) {
      y = static_cast<Label>(rng.Uniform(3));
    }
    data.Add(std::move(x), y);
  }
  return data;
}

TEST(OneVsRestTest, RejectsDegenerateInputs) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternLabel("only");
  Dataset single(schema);
  single.Add({0}, 0);
  EXPECT_FALSE(OneVsRestGbdt::Train(single, {}).ok());
  Dataset empty(schema);
  EXPECT_FALSE(OneVsRestGbdt::Train(empty, {}).ok());
}

TEST(OneVsRestTest, LearnsThreeClasses) {
  Dataset data = ThreeClassData(1200, 3, 0.0);
  auto model = OneVsRestGbdt::Train(data, {});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->num_classes(), 3u);
  EXPECT_GT((*model)->Accuracy(data), 0.97);
}

TEST(OneVsRestTest, ClassMarginsAgreeWithPrediction) {
  Dataset data = ThreeClassData(600, 4, 0.05);
  auto model = OneVsRestGbdt::Train(data, {});
  ASSERT_TRUE(model.ok());
  for (size_t row = 0; row < 50; ++row) {
    std::vector<double> margins =
        (*model)->ClassMargins(data.instance(row));
    ASSERT_EQ(margins.size(), 3u);
    Label predicted = (*model)->Predict(data.instance(row));
    for (double m : margins) {
      EXPECT_LE(m, margins[predicted] + 1e-12);
    }
    EXPECT_DOUBLE_EQ((*model)->Score(data.instance(row)),
                     margins[predicted]);
  }
}

TEST(OneVsRestTest, RelativeKeysWorkOnMulticlassContexts) {
  // The point of the exercise: CCE is label-agnostic, so multiclass
  // contexts explain exactly like binary ones.
  Dataset data = ThreeClassData(800, 5, 0.0);
  auto model = OneVsRestGbdt::Train(data, {});
  ASSERT_TRUE(model.ok());
  Context context = (*model)->MakeContext(data);
  for (size_t row = 0; row < 10; ++row) {
    auto key = Srk::Explain(context, row, {});
    ASSERT_TRUE(key.ok());
    EXPECT_TRUE(key->satisfied);
    // Labels depend only on feature 0, so keys never need feature 1 (the
    // model may ignore it entirely) and never exceed one feature.
    EXPECT_LE(key->key.size(), 1u);
  }
}

}  // namespace
}  // namespace cce::ml
