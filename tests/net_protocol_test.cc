// Wire-protocol unit tests: exact roundtrips for every message type, the
// frame-header validation contract (magic / version / exact lengths), the
// WireStatus <-> StatusCode mirror, and a decoder fuzz pass proving that
// arbitrary bytes never crash or over-read — the same property the server
// torture suite then drives over real sockets.

#include "net/protocol.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace cce::net {
namespace {

uint64_t XorShift64(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

Request DecodeFullRequest(const std::string& frame) {
  FrameHeader header;
  EXPECT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  frame.size(), &header)
                  .ok());
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + header.body_len);
  Request request;
  EXPECT_TRUE(DecodeRequestBody(
                  header,
                  reinterpret_cast<const uint8_t*>(frame.data()) +
                      kFrameHeaderBytes,
                  &request)
                  .ok());
  return request;
}

Response DecodeFullResponse(const std::string& frame) {
  FrameHeader header;
  EXPECT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  frame.size(), &header)
                  .ok());
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + header.body_len);
  Response response;
  EXPECT_TRUE(DecodeResponseBody(
                  header,
                  reinterpret_cast<const uint8_t*>(frame.data()) +
                      kFrameHeaderBytes,
                  &response)
                  .ok());
  return response;
}

TEST(NetProtocolTest, RequestRoundtripsAllTypes) {
  for (MessageType type :
       {MessageType::kPredictRequest, MessageType::kRecordRequest,
        MessageType::kExplainRequest, MessageType::kCounterfactualsRequest}) {
    Request request;
    request.type = type;
    request.request_id = 0xDEADBEEFCAFE0000ull + static_cast<uint8_t>(type);
    request.deadline_ms = 1234;
    request.label = 7;
    request.instance = {3, 0, 42, 0xFFFFFFFF, 5};
    const Request decoded = DecodeFullRequest(EncodeRequest(request));
    EXPECT_EQ(decoded.type, request.type);
    EXPECT_EQ(decoded.request_id, request.request_id);
    EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
    EXPECT_EQ(decoded.label, request.label);
    EXPECT_EQ(decoded.instance, request.instance);
  }
}

TEST(NetProtocolTest, EmptyInstanceRoundtrips) {
  Request request;
  request.type = MessageType::kPredictRequest;
  const Request decoded = DecodeFullRequest(EncodeRequest(request));
  EXPECT_TRUE(decoded.instance.empty());
}

TEST(NetProtocolTest, OkResponsesRoundtripTypedPayloads) {
  {
    Response r;
    r.type = MessageType::kPredictResponse;
    r.request_id = 9;
    r.label = 3;
    const Response d = DecodeFullResponse(EncodeResponse(r));
    EXPECT_EQ(d.status, WireStatus::kOk);
    EXPECT_EQ(d.label, 3u);
    EXPECT_EQ(d.request_id, 9u);
  }
  {
    Response r;
    r.type = MessageType::kRecordResponse;
    const Response d = DecodeFullResponse(EncodeResponse(r));
    EXPECT_EQ(d.status, WireStatus::kOk);
  }
  {
    Response r;
    r.type = MessageType::kExplainResponse;
    r.request_id = 77;
    r.flags = kFlagDegraded | kFlagHedged;
    r.achieved_alpha = 0.9375;
    r.view_seq = 123456789ull;
    r.backend = 2;
    r.key = {1, 4, 9};
    const Response d = DecodeFullResponse(EncodeResponse(r));
    EXPECT_EQ(d.flags, r.flags);
    EXPECT_DOUBLE_EQ(d.achieved_alpha, r.achieved_alpha);
    EXPECT_EQ(d.view_seq, r.view_seq);
    EXPECT_EQ(d.backend, r.backend);
    EXPECT_EQ(d.key, r.key);
  }
  {
    Response r;
    r.type = MessageType::kCounterfactualsResponse;
    r.witnesses.push_back({41, 1, {0, 2}});
    r.witnesses.push_back({7, 0, {}});
    const Response d = DecodeFullResponse(EncodeResponse(r));
    ASSERT_EQ(d.witnesses.size(), 2u);
    EXPECT_EQ(d.witnesses[0].row, 41u);
    EXPECT_EQ(d.witnesses[0].label, 1u);
    EXPECT_EQ(d.witnesses[0].changed_features, FeatureSet({0, 2}));
    EXPECT_TRUE(d.witnesses[1].changed_features.empty());
  }
}

TEST(NetProtocolTest, ErrorResponsesCarryMessageAndRetryAfter) {
  for (MessageType type :
       {MessageType::kPredictResponse, MessageType::kExplainResponse,
        MessageType::kErrorResponse}) {
    Response r;
    r.type = type;
    r.request_id = 5;
    r.status = WireStatus::kResourceExhausted;
    r.retry_after_ms = 25;
    r.message = "shed: explain queue full";
    const Response d = DecodeFullResponse(EncodeResponse(r));
    EXPECT_EQ(d.status, WireStatus::kResourceExhausted);
    EXPECT_EQ(d.retry_after_ms, 25u);
    EXPECT_EQ(d.message, r.message);
    // Non-OK responses carry no typed payload.
    EXPECT_TRUE(d.key.empty());
    EXPECT_TRUE(d.witnesses.empty());
  }
}

TEST(NetProtocolTest, HeaderRejectsBadMagicAndVersion) {
  Request request;
  request.type = MessageType::kPredictRequest;
  std::string frame = EncodeRequest(request);
  FrameHeader header;

  std::string bad_magic = frame;
  bad_magic[0] ^= 0x01;
  Status magic_status = DecodeFrameHeader(
      reinterpret_cast<const uint8_t*>(bad_magic.data()), bad_magic.size(),
      &header);
  EXPECT_EQ(magic_status.code(), StatusCode::kInvalidArgument);

  std::string bad_version = frame;
  bad_version[2] = static_cast<char>(kProtocolVersion + 1);
  Status version_status = DecodeFrameHeader(
      reinterpret_cast<const uint8_t*>(bad_version.data()),
      bad_version.size(), &header);
  EXPECT_EQ(version_status.code(), StatusCode::kUnimplemented);

  EXPECT_EQ(DecodeFrameHeader(
                reinterpret_cast<const uint8_t*>(frame.data()),
                kFrameHeaderBytes - 1, &header)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(NetProtocolTest, BodiesMustParseExactly) {
  Request request;
  request.type = MessageType::kExplainRequest;
  request.instance = {1, 2, 3};
  std::string frame = EncodeRequest(request);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  frame.size(), &header)
                  .ok());
  const uint8_t* body =
      reinterpret_cast<const uint8_t*>(frame.data()) + kFrameHeaderBytes;
  Request out;
  // Truncated body.
  FrameHeader short_header = header;
  short_header.body_len -= 1;
  EXPECT_FALSE(DecodeRequestBody(short_header, body, &out).ok());
  // Trailing bytes.
  FrameHeader long_header = header;
  long_header.body_len += 1;
  std::vector<uint8_t> padded(body, body + header.body_len);
  padded.push_back(0);
  EXPECT_FALSE(DecodeRequestBody(long_header, padded.data(), &out).ok());
}

TEST(NetProtocolTest, WireStatusMirrorsStatusCodeValueForValue) {
  // The wire encoding IS the StatusCode value; a new code cannot ship
  // without extending the protocol (and its doc — protocol_doc_test).
  EXPECT_EQ(kNumWireStatuses, 11);
  for (int code = 0; code < kNumWireStatuses; ++code) {
    const StatusCode status_code = static_cast<StatusCode>(code);
    const WireStatus wire = WireStatusFromCode(status_code);
    EXPECT_EQ(static_cast<int>(wire), code);
    EXPECT_EQ(CodeFromWireStatus(wire), status_code);
    EXPECT_NE(WireStatusName(wire), nullptr);
  }
  EXPECT_EQ(WireStatusName(static_cast<WireStatus>(kNumWireStatuses)),
            nullptr);
}

TEST(NetProtocolTest, MessageTypeVocabularyIsClosed) {
  int named = 0;
  for (int value = 0; value < 256; ++value) {
    const MessageType type = static_cast<MessageType>(value);
    if (MessageTypeName(type) != nullptr) ++named;
    if (IsRequestType(type)) {
      EXPECT_NE(MessageTypeName(type), nullptr);
      const MessageType response = ResponseTypeFor(type);
      EXPECT_FALSE(IsRequestType(response));
      EXPECT_NE(MessageTypeName(response), nullptr);
    }
  }
  EXPECT_EQ(named, 11);
  EXPECT_EQ(MessageTypeName(static_cast<MessageType>(0)), nullptr);
  // The reserved gap that keeps the k + 4 pairing rule alive for the
  // batch pair stays unassigned.
  for (int reserved = 11; reserved <= 13; ++reserved) {
    EXPECT_EQ(MessageTypeName(static_cast<MessageType>(reserved)), nullptr);
  }
}

TEST(NetProtocolTest, FrameHeaderFieldsTileTheHeaderExactly) {
  size_t offset = 0;
  for (const FrameField& field : FrameHeaderFields()) {
    EXPECT_EQ(field.offset, offset) << field.name;
    offset += field.bytes;
  }
  EXPECT_EQ(offset, kFrameHeaderBytes);
}

TEST(NetProtocolTest, DecoderSurvivesRandomBytes) {
  uint64_t rng = 0xC0FFEE;
  for (int iteration = 0; iteration < 20000; ++iteration) {
    const size_t len = XorShift64(&rng) % 96;
    std::vector<uint8_t> bytes(len);
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(XorShift64(&rng));
    FrameHeader header;
    if (len >= kFrameHeaderBytes &&
        DecodeFrameHeader(bytes.data(), len, &header).ok()) {
      // Random bytes essentially never hit the magic; if they do, the
      // body decoders must still bound-check against the claimed length.
      const size_t body_len =
          std::min<size_t>(header.body_len, len - kFrameHeaderBytes);
      FrameHeader clamped = header;
      clamped.body_len = static_cast<uint32_t>(body_len);
      Request request;
      (void)DecodeRequestBody(clamped, bytes.data() + kFrameHeaderBytes,
                              &request);
      Response response;
      (void)DecodeResponseBody(clamped, bytes.data() + kFrameHeaderBytes,
                               &response);
    }
  }
}

TEST(NetProtocolTest, MutatedValidFramesNeverCrashDecoders) {
  Response seed_response;
  seed_response.type = MessageType::kCounterfactualsResponse;
  seed_response.witnesses.push_back({1, 0, {2, 5}});
  seed_response.witnesses.push_back({9, 1, {0}});
  const std::string response_frame = EncodeResponse(seed_response);
  Request seed_request;
  seed_request.type = MessageType::kExplainRequest;
  seed_request.instance = {1, 2, 3, 4};
  const std::string request_frame = EncodeRequest(seed_request);

  uint64_t rng = 0xBADF00D;
  for (int iteration = 0; iteration < 20000; ++iteration) {
    std::string frame =
        (iteration % 2 == 0) ? request_frame : response_frame;
    // Flip 1-4 random bytes anywhere in the frame.
    const int flips = 1 + static_cast<int>(XorShift64(&rng) % 4);
    for (int f = 0; f < flips; ++f) {
      frame[XorShift64(&rng) % frame.size()] ^=
          static_cast<char>(XorShift64(&rng) | 1);
    }
    FrameHeader header;
    if (!DecodeFrameHeader(reinterpret_cast<const uint8_t*>(frame.data()),
                           frame.size(), &header)
             .ok()) {
      continue;
    }
    const size_t available = frame.size() - kFrameHeaderBytes;
    FrameHeader clamped = header;
    clamped.body_len =
        static_cast<uint32_t>(std::min<size_t>(header.body_len, available));
    Request request;
    (void)DecodeRequestBody(
        clamped,
        reinterpret_cast<const uint8_t*>(frame.data()) + kFrameHeaderBytes,
        &request);
    Response response;
    (void)DecodeResponseBody(
        clamped,
        reinterpret_cast<const uint8_t*>(frame.data()) + kFrameHeaderBytes,
        &response);
  }
}

}  // namespace
}  // namespace cce::net
