// End-to-end tests of the network serving front end over real loopback
// sockets: typed roundtrips for all four request classes, per-tick
// pipelined batching, wire-level shedding (admission and queue overflow)
// with RetryAfter hints, the HTTP /metrics surface, protocol-error
// handling, deadlines, and drain-on-stop. The adversarial byte-level
// attacks live in net_torture_test.cc.

#include "net/server.h"

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/model.h"
#include "net/client.h"
#include "obs/exposition.h"
#include "serving/proxy.h"
#include "serving/serving_group.h"
#include "tests/test_util.h"

namespace cce::net {
namespace {

using cce::serving::ExplainableProxy;
using cce::serving::ServingGroup;

/// Deterministic stand-in model: label = parity of the first feature.
class ParityModel : public Model {
 public:
  Label Predict(const Instance& x) const override {
    return x.empty() ? 0 : x[0] % 2;
  }
};

/// A leader-only serving group with a primed context behind a NetServer
/// on an ephemeral loopback port.
struct NetStack {
  Dataset data;
  ParityModel model;
  std::unique_ptr<ExplainableProxy> proxy;
  std::unique_ptr<ServingGroup> group;
  std::unique_ptr<NetServer> server;

  explicit NetStack(NetServer::Options options = {}, size_t rows = 120)
      : data(cce::testing::RandomContext(200, 4, 3, 11, /*noise=*/0.0)) {
    ExplainableProxy::Options proxy_options;
    proxy_options.monitor_drift = false;
    auto proxy_or =
        ExplainableProxy::Create(data.schema_ptr(), &model, proxy_options);
    CCE_CHECK_OK(proxy_or.status());
    proxy = std::move(proxy_or).value();
    for (size_t i = 0; i < rows; ++i) {
      CCE_CHECK_OK(
          proxy->Record(data.instance(i), model.Predict(data.instance(i))));
    }
    ServingGroup::Options group_options;
    group_options.policy = serving::RoutePolicy::kLeaderOnly;
    auto group_or = ServingGroup::Create(proxy.get(), {}, group_options);
    CCE_CHECK_OK(group_or.status());
    group = std::move(group_or).value();
    options.port = 0;
    auto server_or = NetServer::Create(group.get(), options);
    CCE_CHECK_OK(server_or.status());
    server = std::move(server_or).value();
    CCE_CHECK_OK(server->Start());
  }

  NetClient Connect() {
    NetClient::Options client_options;
    client_options.recv_timeout = std::chrono::milliseconds(10000);
    auto client = NetClient::Connect("127.0.0.1", server->port(),
                                     client_options);
    CCE_CHECK_OK(client.status());
    return std::move(client).value();
  }

  Request MakeRequest(MessageType type, uint64_t id, size_t row) const {
    Request request;
    request.type = type;
    request.request_id = id;
    request.instance = data.instance(row);
    request.label = model.Predict(request.instance);
    return request;
  }
};

TEST(NetServerTest, PredictRoundtrip) {
  NetStack stack;
  NetClient client = stack.Connect();
  for (size_t row = 0; row < 8; ++row) {
    auto response = client.Call(
        stack.MakeRequest(MessageType::kPredictRequest, 100 + row, row));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->type, MessageType::kPredictResponse);
    EXPECT_EQ(response->status, WireStatus::kOk);
    EXPECT_EQ(response->request_id, 100 + row);
    EXPECT_EQ(response->label,
              stack.model.Predict(stack.data.instance(row)));
  }
}

TEST(NetServerTest, RecordThenExplain) {
  NetStack stack;
  NetClient client = stack.Connect();

  auto recorded = client.Call(
      stack.MakeRequest(MessageType::kRecordRequest, 1, /*row=*/150));
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  EXPECT_EQ(recorded->type, MessageType::kRecordResponse);
  EXPECT_EQ(recorded->status, WireStatus::kOk);

  auto explained = client.Call(
      stack.MakeRequest(MessageType::kExplainRequest, 2, /*row=*/0));
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_EQ(explained->type, MessageType::kExplainResponse);
  EXPECT_EQ(explained->status, WireStatus::kOk);
  EXPECT_GT(explained->achieved_alpha, 0.0);
  EXPECT_GT(explained->view_seq, 0u);
  EXPECT_EQ(explained->backend, 0u);  // leader-only
}

TEST(NetServerTest, CounterfactualsRoundtrip) {
  NetStack stack;
  NetClient client = stack.Connect();
  auto response = client.Call(
      stack.MakeRequest(MessageType::kCounterfactualsRequest, 3, /*row=*/1));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->type, MessageType::kCounterfactualsResponse);
  EXPECT_EQ(response->status, WireStatus::kOk);
  for (const Response::Witness& witness : response->witnesses) {
    EXPECT_LT(witness.row, stack.proxy->PublishedSequence());
  }
}

TEST(NetServerTest, PipelinedBatchAnswersEveryRequest) {
  NetStack stack;
  NetClient client = stack.Connect();
  constexpr size_t kBatch = 64;
  const MessageType kTypes[] = {
      MessageType::kPredictRequest, MessageType::kRecordRequest,
      MessageType::kExplainRequest, MessageType::kCounterfactualsRequest};
  for (size_t i = 0; i < kBatch; ++i) {
    ASSERT_TRUE(client
                    .Send(stack.MakeRequest(kTypes[i % 4], /*id=*/1000 + i,
                                            /*row=*/i % 100))
                    .ok());
  }
  std::map<uint64_t, Response> by_id;
  for (size_t i = 0; i < kBatch; ++i) {
    auto response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    by_id[response->request_id] = std::move(response).value();
  }
  ASSERT_EQ(by_id.size(), kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    const auto it = by_id.find(1000 + i);
    ASSERT_NE(it, by_id.end()) << "request " << i << " unanswered";
    EXPECT_EQ(it->second.status, WireStatus::kOk);
    EXPECT_EQ(it->second.type, ResponseTypeFor(kTypes[i % 4]));
  }
  const NetServer::Stats stats = stack.server->GetStats();
  EXPECT_GE(stats.requests, kBatch);
  EXPECT_GE(stats.responses, kBatch);
}

TEST(NetServerTest, AdmissionShedBecomesTypedWireResponse) {
  NetServer::Options options;
  // One explain token, then a ~17-minute refill: the second explain must
  // be shed by the token bucket with a retry-after hint.
  options.overload.explain_bucket.refill_per_sec = 0.001;
  options.overload.explain_bucket.burst = 1.0;
  NetStack stack(options);
  NetClient client = stack.Connect();

  auto first = client.Call(
      stack.MakeRequest(MessageType::kExplainRequest, 1, /*row=*/0));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, WireStatus::kOk);

  auto shed = client.Call(
      stack.MakeRequest(MessageType::kExplainRequest, 2, /*row=*/1));
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->type, MessageType::kExplainResponse);
  EXPECT_EQ(shed->status, WireStatus::kResourceExhausted);
  EXPECT_GT(shed->retry_after_ms, 0u);
  EXPECT_FALSE(shed->message.empty());
  // The shed is a response, not a disconnect: the connection still works.
  auto after = client.Call(
      stack.MakeRequest(MessageType::kPredictRequest, 3, /*row=*/0));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->status, WireStatus::kOk);

  EXPECT_GE(stack.server->GetStats().sheds, 1u);
}

TEST(NetServerTest, QueueOverflowShedsCarryRetryAfterHint) {
  NetServer::Options options;
  options.overload.enabled = false;  // isolate the loop-to-worker bound
  options.worker_threads = 1;
  options.max_pending = 1;
  options.overflow_retry_after = std::chrono::milliseconds(7);
  NetStack stack(options);
  NetClient client = stack.Connect();

  constexpr size_t kBatch = 64;
  for (size_t i = 0; i < kBatch; ++i) {
    ASSERT_TRUE(
        client
            .Send(stack.MakeRequest(MessageType::kExplainRequest, i, i % 100))
            .ok());
  }
  size_t ok = 0;
  size_t shed = 0;
  for (size_t i = 0; i < kBatch; ++i) {
    auto response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->status == WireStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(response->status, WireStatus::kResourceExhausted);
      EXPECT_EQ(response->retry_after_ms, 7u);
      ++shed;
    }
  }
  // With one pending slot and the whole batch decoded in a tick, some
  // requests execute and some overflow — both outcomes at the wire.
  EXPECT_GE(ok, 1u);
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(ok + shed, kBatch);
}

TEST(NetServerTest, DeadlineFloodProducesDeadlineResponses) {
  NetServer::Options options;
  options.worker_threads = 1;
  // Pin the scalar path: micro-batching exists precisely to absorb this
  // flood within its deadlines (BatchedFloodMeetsDeadlines below), so the
  // per-request expiry behaviour needs batching off to surface.
  options.max_explain_batch = 1;
  NetStack stack(options);
  NetClient client = stack.Connect();
  constexpr size_t kBatch = 48;
  for (size_t i = 0; i < kBatch; ++i) {
    Request request =
        stack.MakeRequest(MessageType::kExplainRequest, i, i % 100);
    request.deadline_ms = 1;  // nearly always expired by execution time
    ASSERT_TRUE(client.Send(request).ok());
  }
  size_t non_ok = 0;
  for (size_t i = 0; i < kBatch; ++i) {
    auto response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->status != WireStatus::kOk) {
      ++non_ok;
      EXPECT_TRUE(response->status == WireStatus::kDeadlineExceeded ||
                  response->status == WireStatus::kResourceExhausted)
          << WireStatusName(response->status);
    }
  }
  EXPECT_GE(non_ok, 1u);
}

TEST(NetServerTest, BatchExplainFrameAnswersEveryItemPositionally) {
  NetStack stack;
  NetClient client = stack.Connect();
  // Scalar answers first: the batch frame must reproduce them exactly.
  std::vector<Response> want;
  for (size_t row = 0; row < 6; ++row) {
    auto scalar = client.Call(
        stack.MakeRequest(MessageType::kExplainRequest, 50 + row, row));
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
    ASSERT_EQ(scalar->status, WireStatus::kOk);
    want.push_back(std::move(scalar).value());
  }
  Request request;
  request.type = MessageType::kBatchExplainRequest;
  request.request_id = 99;
  for (size_t row = 0; row < 6; ++row) {
    Request::BatchItem item;
    item.instance = stack.data.instance(row);
    item.label = stack.model.Predict(item.instance);
    request.batch.push_back(std::move(item));
  }
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->type, MessageType::kBatchExplainResponse);
  EXPECT_EQ(response->status, WireStatus::kOk);
  EXPECT_EQ(response->request_id, 99u);
  ASSERT_EQ(response->batch.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    const Response::BatchExplainItem& item = response->batch[i];
    EXPECT_EQ(item.status, WireStatus::kOk) << "item " << i;
    EXPECT_EQ(item.key, want[i].key) << "item " << i;
    EXPECT_EQ(item.achieved_alpha, want[i].achieved_alpha) << "item " << i;
    EXPECT_EQ(item.backend, 0u);  // leader-only
  }
  // The whole frame was one shared-build execution on the proxy.
  EXPECT_GE(stack.proxy->Health().batch_executions, 1u);
}

TEST(NetServerTest, BatchExplainPoisonedItemFailsAlone) {
  NetStack stack;
  NetClient client = stack.Connect();
  Request request;
  request.type = MessageType::kBatchExplainRequest;
  request.request_id = 7;
  for (size_t row = 0; row < 3; ++row) {
    Request::BatchItem item;
    item.instance = stack.data.instance(row);
    item.label = stack.model.Predict(item.instance);
    if (row == 1) item.instance[0] = 999;  // outside the schema's domain
    request.batch.push_back(std::move(item));
  }
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, WireStatus::kOk) << "outer frame succeeded";
  ASSERT_EQ(response->batch.size(), 3u);
  EXPECT_EQ(response->batch[0].status, WireStatus::kOk);
  EXPECT_EQ(response->batch[1].status, WireStatus::kInvalidArgument);
  EXPECT_FALSE(response->batch[1].message.empty());
  EXPECT_EQ(response->batch[2].status, WireStatus::kOk);
}

TEST(NetServerTest, BatchedFloodMeetsDeadlines) {
  NetServer::Options options;
  options.worker_threads = 1;  // workers lag the loop: queue depth forms
  NetStack stack(options);
  NetClient client = stack.Connect();
  constexpr size_t kBatch = 48;
  for (size_t i = 0; i < kBatch; ++i) {
    Request request =
        stack.MakeRequest(MessageType::kExplainRequest, i, i % 100);
    request.deadline_ms = 200;
    ASSERT_TRUE(client.Send(request).ok());
  }
  size_t ok = 0;
  for (size_t i = 0; i < kBatch; ++i) {
    auto response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->status == WireStatus::kOk) ++ok;
  }
  // The queued flood drains through shared builds: item throughput per
  // execution > 1, visible in the proxy's amortization counters.
  EXPECT_EQ(ok, kBatch) << "batching absorbed the flood within deadline";
  const serving::HealthSnapshot health = stack.proxy->Health();
  EXPECT_GT(health.batch_items, health.batch_executions)
      << "at least one drain carried more than one item";
}

TEST(NetServerTest, HttpMetricsHealthzAndNotFound) {
  NetStack stack;
  {
    NetClient client = stack.Connect();
    (void)client.Call(
        stack.MakeRequest(MessageType::kPredictRequest, 1, /*row=*/0));
  }
  {
    NetClient client = stack.Connect();
    auto body = client.HttpGet("/metrics");
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    EXPECT_NE(body->find("# TYPE"), std::string::npos);
    EXPECT_NE(body->find("cce_net_requests_total"), std::string::npos);
    EXPECT_NE(body->find("cce_net_open_connections"), std::string::npos);
  }
  {
    NetClient client = stack.Connect();
    auto body = client.HttpGet("/healthz");
    ASSERT_TRUE(body.ok()) << body.status().ToString();
    EXPECT_NE(body->find("ok"), std::string::npos);
  }
  {
    NetClient client = stack.Connect();
    EXPECT_EQ(client.HttpGet("/nope").status().code(),
              StatusCode::kNotFound);
  }
  EXPECT_GE(stack.server->GetStats().metrics_scrapes, 1u);
}

TEST(NetServerTest, BadMagicAnsweredThenClosed) {
  NetStack stack;
  NetClient client = stack.Connect();
  uint8_t junk[kFrameHeaderBytes] = {0x42, 0x42};
  ASSERT_TRUE(client.SendRaw(junk, sizeof(junk)).ok());
  auto response = client.Receive();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->type, MessageType::kErrorResponse);
  EXPECT_EQ(response->status, WireStatus::kInvalidArgument);
  // The server closes a desynced stream after answering.
  EXPECT_EQ(client.Receive().status().code(), StatusCode::kUnavailable);
}

TEST(NetServerTest, VersionMismatchAnsweredWithUnimplemented) {
  NetStack stack;
  NetClient client = stack.Connect();
  Request request = stack.MakeRequest(MessageType::kPredictRequest, 77, 0);
  std::string frame = EncodeRequest(request);
  frame[2] = static_cast<char>(kProtocolVersion + 1);
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  auto response = client.Receive();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->type, MessageType::kErrorResponse);
  EXPECT_EQ(response->status, WireStatus::kUnimplemented);
  EXPECT_EQ(response->request_id, 77u);  // echoed from the raw header
  EXPECT_EQ(client.Receive().status().code(), StatusCode::kUnavailable);
}

TEST(NetServerTest, OversizedBodyRejectedWithoutBuffering) {
  NetServer::Options options;
  options.max_body_bytes = 1024;
  NetStack stack(options);
  NetClient client = stack.Connect();
  FrameHeader header;
  header.type = static_cast<uint8_t>(MessageType::kExplainRequest);
  header.request_id = 55;
  header.body_len = 64u * 1024 * 1024;  // claims 64MB; never sends it
  uint8_t wire[kFrameHeaderBytes];
  EncodeFrameHeader(header, wire);
  ASSERT_TRUE(client.SendRaw(wire, sizeof(wire)).ok());
  auto response = client.Receive();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->type, MessageType::kErrorResponse);
  EXPECT_EQ(response->status, WireStatus::kInvalidArgument);
  EXPECT_EQ(response->request_id, 55u);
  EXPECT_EQ(client.Receive().status().code(), StatusCode::kUnavailable);
  EXPECT_GE(stack.server->GetStats().protocol_errors, 1u);
}

TEST(NetServerTest, UnknownTypeAndGarbageBodyAreProtocolErrors) {
  NetStack stack;
  {
    NetClient client = stack.Connect();
    FrameHeader header;
    header.type = 200;  // not in the vocabulary
    header.request_id = 9;
    header.body_len = 0;
    uint8_t wire[kFrameHeaderBytes];
    EncodeFrameHeader(header, wire);
    ASSERT_TRUE(client.SendRaw(wire, sizeof(wire)).ok());
    auto response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->type, MessageType::kErrorResponse);
    EXPECT_EQ(response->status, WireStatus::kInvalidArgument);
  }
  {
    NetClient client = stack.Connect();
    // Valid header claiming 4 body bytes that do not parse as a request.
    FrameHeader header;
    header.type = static_cast<uint8_t>(MessageType::kPredictRequest);
    header.request_id = 10;
    header.body_len = 4;
    uint8_t wire[kFrameHeaderBytes + 4];
    EncodeFrameHeader(header, wire);
    wire[kFrameHeaderBytes] = 0xFF;
    wire[kFrameHeaderBytes + 1] = 0xFF;
    wire[kFrameHeaderBytes + 2] = 0xFF;
    wire[kFrameHeaderBytes + 3] = 0xFF;
    ASSERT_TRUE(client.SendRaw(wire, sizeof(wire)).ok());
    auto response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->type, MessageType::kErrorResponse);
    EXPECT_EQ(response->status, WireStatus::kInvalidArgument);
    EXPECT_EQ(response->request_id, 10u);
  }
  EXPECT_GE(stack.server->GetStats().protocol_errors, 2u);
}

TEST(NetServerTest, StopDrainsInFlightWork) {
  NetStack stack;
  NetClient client = stack.Connect();
  constexpr size_t kBatch = 16;
  for (size_t i = 0; i < kBatch; ++i) {
    ASSERT_TRUE(client
                    .Send(stack.MakeRequest(MessageType::kExplainRequest,
                                            /*id=*/i, /*row=*/i))
                    .ok());
  }
  // Wait for dispatch (not completion): drain must then finish and flush
  // the in-flight work before any connection is closed.
  while (stack.server->GetStats().requests < kBatch) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stack.server->Stop();
  size_t answered = 0;
  for (size_t i = 0; i < kBatch; ++i) {
    auto response = client.Receive();
    if (!response.ok()) break;
    ++answered;
  }
  EXPECT_EQ(answered, kBatch);
  EXPECT_EQ(stack.server->GetStats().open, 0u);
}

TEST(NetServerTest, StatsAndInstrumentsEagerlyRegistered) {
  NetStack stack;
  const NetServer::Stats before = stack.server->GetStats();
  EXPECT_EQ(before.requests, 0u);
  // Every family exists before any traffic — metrics_doc_test and cold
  // Prometheus scrapes depend on this.
  const std::string text =
      obs::RenderPrometheusText(stack.server->registry());
  for (const char* family :
       {"cce_net_connections_accepted_total", "cce_net_connections_closed_total",
        "cce_net_open_connections", "cce_net_requests_total",
        "cce_net_responses_total", "cce_net_sheds_total",
        "cce_net_protocol_errors_total", "cce_net_bytes_read_total",
        "cce_net_bytes_written_total", "cce_net_dropped_responses_total",
        "cce_net_metrics_scrapes_total", "cce_net_tick_requests",
        "cce_net_flush_frames", "cce_net_request_latency_us"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
}

TEST(NetServerTest, ConnectionLimitClosesOverflow) {
  NetServer::Options options;
  options.max_connections = 2;
  NetStack stack(options);
  NetClient a = stack.Connect();
  NetClient b = stack.Connect();
  ASSERT_TRUE(a.Call(stack.MakeRequest(MessageType::kPredictRequest, 1, 0))
                  .ok());
  ASSERT_TRUE(b.Call(stack.MakeRequest(MessageType::kPredictRequest, 2, 0))
                  .ok());
  NetClient c = stack.Connect();  // accepted then immediately closed
  EXPECT_EQ(c.Receive().status().code(), StatusCode::kUnavailable);
  // The survivors still serve.
  EXPECT_TRUE(a.Call(stack.MakeRequest(MessageType::kPredictRequest, 3, 0))
                  .ok());
}

}  // namespace
}  // namespace cce::net
