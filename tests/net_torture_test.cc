// Adversarial byte-level torture of the network front end — the SUITE=net
// ASan gate. A seeded attacker hammers the server with garbage frames,
// mid-frame disconnects (FIN and RST), body_len lies, slow-loris partial
// frames, dropped-response aborts and half-closed sockets while a
// well-behaved client keeps trading pipelined batches in the background.
// The contract under attack (server.h): the loop never crashes, never
// blocks the tick for the well-behaved client, and leaks no fds — the
// /proc/self/fd census at the end must match the pre-attack baseline.
//
// CCE_NET_ITERS scales the attack count (default 40; SUITE=net runs 200);
// CCE_NET_SEED reruns a specific schedule.

#include <dirent.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/model.h"
#include "net/client.h"
#include "net/server.h"
#include "serving/proxy.h"
#include "serving/serving_group.h"
#include "tests/test_util.h"

namespace cce::net {
namespace {

using cce::serving::ExplainableProxy;
using cce::serving::ServingGroup;

size_t EnvCount(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 10);
}

uint64_t XorShift64(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

size_t CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  size_t count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

class ParityModel : public Model {
 public:
  Label Predict(const Instance& x) const override {
    return x.empty() ? 0 : x[0] % 2;
  }
};

struct TortureStack {
  Dataset data;
  ParityModel model;
  std::unique_ptr<ExplainableProxy> proxy;
  std::unique_ptr<ServingGroup> group;
  std::unique_ptr<NetServer> server;

  TortureStack()
      : data(cce::testing::RandomContext(150, 4, 3, 17, /*noise=*/0.0)) {
    ExplainableProxy::Options proxy_options;
    proxy_options.monitor_drift = false;
    auto proxy_or =
        ExplainableProxy::Create(data.schema_ptr(), &model, proxy_options);
    CCE_CHECK_OK(proxy_or.status());
    proxy = std::move(proxy_or).value();
    for (size_t i = 0; i < 100; ++i) {
      CCE_CHECK_OK(
          proxy->Record(data.instance(i), model.Predict(data.instance(i))));
    }
    ServingGroup::Options group_options;
    group_options.policy = serving::RoutePolicy::kLeaderOnly;
    auto group_or = ServingGroup::Create(proxy.get(), {}, group_options);
    CCE_CHECK_OK(group_or.status());
    group = std::move(group_or).value();
    NetServer::Options options;
    options.port = 0;
    // Fast slow-loris reaping so abandoned partial frames are collected
    // within the test's lifetime.
    options.stalled_frame_timeout = std::chrono::milliseconds(200);
    options.idle_timeout = std::chrono::milliseconds(10000);
    auto server_or = NetServer::Create(group.get(), options);
    CCE_CHECK_OK(server_or.status());
    server = std::move(server_or).value();
    CCE_CHECK_OK(server->Start());
  }

  Result<NetClient> Connect() {
    NetClient::Options client_options;
    client_options.recv_timeout = std::chrono::milliseconds(10000);
    client_options.send_timeout = std::chrono::milliseconds(10000);
    return NetClient::Connect("127.0.0.1", server->port(), client_options);
  }

  Request MakeRequest(MessageType type, uint64_t id, size_t row) const {
    Request request;
    request.type = type;
    request.request_id = id;
    request.instance = data.instance(row % data.size());
    request.label = model.Predict(request.instance);
    return request;
  }

  bool WaitForOpenConnections(uint64_t want,
                              std::chrono::milliseconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (server->GetStats().open != want) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return true;
  }
};

/// Force an RST instead of a FIN on close — exercises the EPOLLERR path.
void ArmAbortiveClose(int fd) {
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

TEST(NetTortureTest, AdversarialClientsNeverCrashLeakOrBlock) {
  TortureStack stack;

  // Warm up one full exchange, then census fds with zero connections open.
  {
    auto client = stack.Connect();
    ASSERT_TRUE(client.ok());
    auto response =
        client->Call(stack.MakeRequest(MessageType::kPredictRequest, 1, 0));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  ASSERT_TRUE(stack.WaitForOpenConnections(0, std::chrono::seconds(5)));
  const size_t fd_baseline = CountOpenFds();

  // Well-behaved client trading pipelined batches throughout the attack:
  // its exchanges completing proves the attackers never block the tick.
  std::atomic<bool> stop_background{false};
  std::atomic<uint64_t> background_ok{0};
  std::atomic<uint64_t> background_errors{0};
  std::thread background([&] {
    uint64_t id = 1 << 20;
    while (!stop_background.load()) {
      auto client = stack.Connect();
      if (!client.ok()) {
        ++background_errors;
        continue;
      }
      constexpr size_t kBatch = 8;
      bool sent = true;
      for (size_t i = 0; i < kBatch && sent; ++i) {
        const MessageType type = (i % 3 == 0) ? MessageType::kExplainRequest
                                              : MessageType::kPredictRequest;
        sent = client->Send(stack.MakeRequest(type, ++id, i)).ok();
      }
      if (!sent) {
        ++background_errors;
        continue;
      }
      for (size_t i = 0; i < kBatch; ++i) {
        auto response = client->Receive();
        if (response.ok() && (response->status == WireStatus::kOk ||
                              response->status ==
                                  WireStatus::kResourceExhausted)) {
          ++background_ok;
        } else {
          ++background_errors;
        }
      }
    }
  });

  const size_t iters = EnvCount("CCE_NET_ITERS", 40);
  uint64_t rng = EnvCount("CCE_NET_SEED", 0x7051CE);
  std::vector<NetClient> loris;  // left open mid-frame; the sweep reaps them
  for (size_t iteration = 0; iteration < iters; ++iteration) {
    auto client_or = stack.Connect();
    ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
    NetClient client = std::move(client_or).value();
    switch (XorShift64(&rng) % 7) {
      case 0: {  // pure garbage, then close
        uint8_t junk[64];
        for (uint8_t& b : junk) b = static_cast<uint8_t>(XorShift64(&rng));
        (void)client.SendRaw(junk, sizeof(junk));
        if (XorShift64(&rng) % 2 == 0) ArmAbortiveClose(client.fd());
        break;
      }
      case 1: {  // honest header, body never arrives: kill mid-frame
        FrameHeader header;
        header.type = static_cast<uint8_t>(MessageType::kExplainRequest);
        header.request_id = iteration;
        header.body_len = 512 * 1024;
        uint8_t wire[kFrameHeaderBytes + 8] = {};
        EncodeFrameHeader(header, wire);
        (void)client.SendRaw(wire, sizeof(wire));
        if (XorShift64(&rng) % 2 == 0) ArmAbortiveClose(client.fd());
        break;
      }
      case 2: {  // body_len lie beyond the cap
        FrameHeader header;
        header.type = static_cast<uint8_t>(MessageType::kPredictRequest);
        header.request_id = iteration;
        header.body_len = 0xFFFFFF00u;
        uint8_t wire[kFrameHeaderBytes];
        EncodeFrameHeader(header, wire);
        (void)client.SendRaw(wire, sizeof(wire));
        (void)client.Receive();  // ERROR_RESPONSE, then server closes
        break;
      }
      case 3: {  // slow loris: park a partial frame and walk away
        const std::string frame = EncodeRequest(
            stack.MakeRequest(MessageType::kExplainRequest, iteration, 0));
        (void)client.SendRaw(frame.data(),
                             1 + XorShift64(&rng) % (frame.size() - 1));
        loris.push_back(std::move(client));
        continue;  // no close: the stalled-frame sweep must reap it
      }
      case 4: {  // real work, then vanish without reading the answers
        for (size_t i = 0; i < 4; ++i) {
          (void)client.Send(stack.MakeRequest(
              MessageType::kExplainRequest, 4096 + iteration * 4 + i, i));
        }
        if (XorShift64(&rng) % 2 == 0) ArmAbortiveClose(client.fd());
        break;
      }
      case 5: {  // partial HTTP head, then close
        static const char kPartial[] = "GET /metrics HTTP/1.0\r\nHos";
        (void)client.SendRaw(kPartial, sizeof(kPartial) - 1);
        break;
      }
      case 6: {  // well-behaved exchange ending in immediate close
        auto response = client.Call(stack.MakeRequest(
            MessageType::kCounterfactualsRequest, 9000 + iteration, 2));
        EXPECT_TRUE(response.ok()) << response.status().ToString();
        break;
      }
    }
    client.Close();
  }

  stop_background.store(true);
  background.join();
  EXPECT_GT(background_ok.load(), 0u);
  EXPECT_EQ(background_errors.load(), 0u);

  // The parked slow-loris connections must be reaped by the stalled-frame
  // sweep even while the client side holds them open.
  ASSERT_TRUE(stack.WaitForOpenConnections(0, std::chrono::seconds(10)))
      << "open=" << stack.server->GetStats().open;
  for (NetClient& parked : loris) parked.Close();

  // Attack dust has settled: the server must still serve...
  {
    auto client = stack.Connect();
    ASSERT_TRUE(client.ok());
    auto response = client->Call(
        stack.MakeRequest(MessageType::kExplainRequest, 424242, 0));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, WireStatus::kOk);
  }
  ASSERT_TRUE(stack.WaitForOpenConnections(0, std::chrono::seconds(5)));

  // ...and hold exactly the fds it started with.
  EXPECT_EQ(CountOpenFds(), fd_baseline);

  const NetServer::Stats stats = stack.server->GetStats();
  EXPECT_EQ(stats.open, 0u);
  EXPECT_EQ(stats.accepted, stats.closed);
  stack.server->Stop();
}

TEST(NetTortureTest, StopUnderFireClosesEverything) {
  TortureStack stack;
  const size_t fd_before_server = CountOpenFds();
  std::vector<NetClient> clients;
  uint64_t rng = 0xF1DE;
  for (size_t i = 0; i < 12; ++i) {
    auto client = stack.Connect();
    ASSERT_TRUE(client.ok());
    if (i % 3 == 0) {
      // Leave a partial frame parked across the Stop().
      const std::string frame = EncodeRequest(
          stack.MakeRequest(MessageType::kExplainRequest, i, i));
      (void)client->SendRaw(frame.data(), frame.size() / 2);
    } else {
      for (size_t j = 0; j < 3; ++j) {
        (void)client->Send(stack.MakeRequest(
            (XorShift64(&rng) % 2 == 0) ? MessageType::kPredictRequest
                                        : MessageType::kExplainRequest,
            i * 8 + j, i + j));
      }
    }
    clients.push_back(std::move(*client));
  }
  stack.server->Stop();
  EXPECT_EQ(stack.server->GetStats().open, 0u);
  clients.clear();
  // Stop() released the listen/epoll/wake fds too, so the census returns
  // to the pre-attack level minus the server's own descriptors.
  EXPECT_LE(CountOpenFds(), fd_before_server);
}

}  // namespace
}  // namespace cce::net
