// Exposition formats: byte-exact golden files for the Prometheus text and
// JSON renderings of a fixed registry (satellite 4), escaping rules for
// hostile label values, and the traces-JSON rendering. Regenerate goldens
// with CCE_UPDATE_GOLDENS=1 after an intentional format change and review
// the diff like any other API change.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef CCE_SOURCE_DIR
#error "tests must be compiled with CCE_SOURCE_DIR"
#endif

namespace cce::obs {
namespace {

using std::chrono::microseconds;
using std::chrono::steady_clock;

std::string GoldenPath(const std::string& name) {
  return std::string(CCE_SOURCE_DIR) + "/tests/data/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void ExpectMatchesGolden(const std::string& rendered,
                         const std::string& golden_name) {
  const std::string path = GoldenPath(golden_name);
  const char* update = std::getenv("CCE_UPDATE_GOLDENS");
  if (update != nullptr && update[0] != '\0' && update[0] != '0') {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << rendered;
    ASSERT_TRUE(out.good()) << "failed to update " << path;
    return;
  }
  EXPECT_EQ(rendered, ReadFile(path))
      << "rendering drifted from " << path
      << "; if intentional, regenerate with CCE_UPDATE_GOLDENS=1 and review "
         "the diff";
}

/// The fixed registry behind both goldens: one of each metric kind, a
/// multi-child labelled family, and a label value exercising every escape.
void PopulateGoldenRegistry(Registry* registry) {
  registry->GetGauge("demo_info", "Build info-style gauge.",
                     {{"path", "C:\\tmp\"x\ny"}})
      ->Set(1);
  Histogram::Options histogram_options;
  histogram_options.sub_buckets_per_octave = 2;
  histogram_options.max_value = 8;
  Histogram* latency = registry->GetHistogram(
      "demo_latency_us", "Demo latency in microseconds.", {},
      histogram_options);
  latency->Observe(1);
  latency->Observe(2);
  latency->Observe(3);
  latency->Observe(5);
  latency->Observe(100);
  registry->GetGauge("demo_queue_depth", "Demo queue depth.")->Set(7);
  registry
      ->GetCounter("demo_requests_total", "Requests served.",
                   {{"op", "explain"}})
      ->Add(2);
  registry
      ->GetCounter("demo_requests_total", "Requests served.",
                   {{"op", "predict"}})
      ->Add(3);
}

TEST(ExpositionGoldenTest, PrometheusText) {
  Registry registry;
  PopulateGoldenRegistry(&registry);
  ExpectMatchesGolden(RenderPrometheusText(registry), "obs_golden.prom");
}

TEST(ExpositionGoldenTest, Json) {
  Registry registry;
  PopulateGoldenRegistry(&registry);
  ExpectMatchesGolden(RenderJson(registry), "obs_golden.json");
}

TEST(ExpositionTest, PrometheusEscapesLabelValuesAndHelp) {
  Registry registry;
  registry
      .GetCounter("esc_total", "line one\nline \\two",
                  {{"v", "a\\b\"c\nd"}})
      ->Add(1);
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("# HELP esc_total line one\\nline \\\\two"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("esc_total{v=\"a\\\\b\\\"c\\nd\"} 1"),
            std::string::npos)
      << text;
}

TEST(ExpositionTest, PrometheusHistogramBucketsAreCumulative) {
  Registry registry;
  Histogram::Options options;
  options.sub_buckets_per_octave = 2;
  options.max_value = 4;  // bounds 1, 2, 3, 4
  Histogram* h = registry.GetHistogram("h_us", "help", {}, options);
  h->Observe(1);
  h->Observe(2);
  h->Observe(9);  // overflow
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("h_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("h_us_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("h_us_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("h_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("h_us_sum 12\n"), std::string::npos);
  EXPECT_NE(text.find("h_us_count 3\n"), std::string::npos);
}

TEST(ExpositionTest, JsonEscapesControlCharacters) {
  Registry registry;
  registry
      .GetCounter("esc_total", "tab\there", {{"v", std::string("a\x01" "b")}})
      ->Add(1);
  const std::string json = RenderJson(registry);
  EXPECT_NE(json.find("tab\\there"), std::string::npos) << json;
  EXPECT_NE(json.find("a\\u0001b"), std::string::npos) << json;
}

TEST(ExpositionTest, TracesJsonRendersNewestFirst) {
  steady_clock::time_point now{};
  TraceRing ring(4, [&now] { return now; });
  {
    RequestTrace trace(&ring, "predict");
    {
      auto span = trace.Phase("model_call");
      now += microseconds(40);
    }
    trace.set_outcome(TraceOutcome::kServedFull);
  }
  {
    RequestTrace trace(&ring, "explain");
    now += microseconds(7);
    trace.set_outcome(TraceOutcome::kShed);
    trace.set_detail("queue full");
  }
  const std::string json = RenderTracesJson(ring);
  const std::string expected =
      "[\n"
      "  {\"id\": 2, \"op\": \"explain\", \"outcome\": \"shed\", "
      "\"total_us\": 7, \"detail\": \"queue full\", \"phases\": []},\n"
      "  {\"id\": 1, \"op\": \"predict\", \"outcome\": \"served_full\", "
      "\"total_us\": 40, \"detail\": \"\", \"phases\": [{\"name\": "
      "\"model_call\", \"duration_us\": 40}]}\n"
      "]\n";
  EXPECT_EQ(json, expected);
}

TEST(ExpositionTest, EmptyRegistryAndRingRenderCleanly) {
  Registry registry;
  EXPECT_EQ(RenderPrometheusText(registry), "");
  EXPECT_EQ(RenderJson(registry), "{\n  \"metrics\": [\n  ]\n}\n");
  TraceRing ring(2);
  EXPECT_EQ(RenderTracesJson(ring), "[]\n");
}

}  // namespace
}  // namespace cce::obs
