// The metrics substrate (DESIGN.md §9): counters/gauges/histograms through
// a Registry, find-or-create cell identity, the disable switch, log-linear
// histogram bucketing, injectable clocks, thread-pool gauges — and a
// multi-threaded hammer on one counter + one histogram (run under TSan in
// the tier-2 suite) proving the sharded write path is race-free and exact.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace cce::obs {
namespace {

using std::chrono::microseconds;
using std::chrono::steady_clock;

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Registry registry;
  Counter* c = registry.GetCounter("c_total", "help");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(CounterTest, FindOrCreateReturnsTheSameCell) {
  Registry registry;
  Counter* a = registry.GetCounter("c_total", "help");
  Counter* b = registry.GetCounter("c_total", "ignored on re-lookup");
  EXPECT_EQ(a, b);
  // Distinct label sets are distinct children of the same family; label
  // order is normalised, so a permuted set is the same child.
  Counter* x = registry.GetCounter("c_total", "help",
                                   {{"op", "explain"}, {"tier", "1"}});
  Counter* y = registry.GetCounter("c_total", "help",
                                   {{"tier", "1"}, {"op", "explain"}});
  Counter* z = registry.GetCounter("c_total", "help", {{"op", "predict"}});
  EXPECT_EQ(x, y);
  EXPECT_NE(x, z);
  EXPECT_NE(x, a);
}

TEST(CounterTest, DisabledRegistryDropsWrites) {
  Registry::Options options;
  options.enabled = false;
  Registry registry(options);
  Counter* c = registry.GetCounter("c_total", "help");
  c->Add(5);
  EXPECT_EQ(c->Value(), 0u);
  // Re-enabling resumes counting; nothing recorded while off comes back.
  registry.set_enabled(true);
  c->Add(5);
  EXPECT_EQ(c->Value(), 5u);
}

TEST(GaugeTest, SetAndAdd) {
  Registry registry;
  Gauge* g = registry.GetGauge("g", "help");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
}

TEST(GaugeTest, CallbackOverridesStoredValue) {
  Registry registry;
  Gauge* g = registry.GetGauge("g", "help");
  g->Set(10);
  int64_t live = 99;
  const uint64_t token = g->SetCallback([&live] { return live; });
  EXPECT_EQ(g->Value(), 99);
  live = 100;
  EXPECT_EQ(g->Value(), 100);
  g->ClearCallback(token);
  EXPECT_EQ(g->Value(), 10) << "cleared callback falls back to the cell";
}

TEST(GaugeTest, LaterCallbackWinsAndStaleClearIsANoOp) {
  // The RAII-binder contract: if binder A dies after binder B re-bound the
  // same gauge name, A's destructor must not unbind B.
  Registry registry;
  Gauge* g = registry.GetGauge("g", "help");
  const uint64_t token_a = g->SetCallback([] { return int64_t{1}; });
  const uint64_t token_b = g->SetCallback([] { return int64_t{2}; });
  g->ClearCallback(token_a);  // stale: B owns the binding now
  EXPECT_EQ(g->Value(), 2);
  g->ClearCallback(token_b);
  EXPECT_EQ(g->Value(), 0);
}

TEST(HistogramTest, LogLinearBounds) {
  Registry registry;
  Histogram::Options options;
  options.sub_buckets_per_octave = 4;
  options.max_value = 32;
  Histogram* h = registry.GetHistogram("h_us", "help", {}, options);
  const std::vector<int64_t> expected = {1,  2,  3,  4,  5,  6,  7,
                                         8,  10, 12, 14, 16, 20, 24,
                                         28, 32};
  EXPECT_EQ(h->bounds(), expected);
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  Registry registry;
  Histogram::Options options;
  options.sub_buckets_per_octave = 2;
  options.max_value = 8;
  Histogram* h = registry.GetHistogram("h_us", "help", {}, options);
  ASSERT_EQ(h->bounds(), (std::vector<int64_t>{1, 2, 3, 4, 6, 8}));
  h->Observe(0);    // le=1 (first bucket takes everything <= 1)
  h->Observe(-5);   // clamped to 0 -> le=1
  h->Observe(2);    // le=2
  h->Observe(5);    // le=6
  h->Observe(100);  // +Inf overflow
  Histogram::Snapshot s = h->TakeSnapshot();
  EXPECT_EQ(s.counts, (std::vector<uint64_t>{2, 1, 0, 0, 1, 0, 1}));
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 0 + 0 + 2 + 5 + 100);
}

TEST(HistogramTest, DisabledRegistryDropsObservations) {
  Registry::Options options;
  options.enabled = false;
  Registry registry(options);
  Histogram* h = registry.GetHistogram("h_us", "help");
  h->Observe(7);
  EXPECT_EQ(h->TakeSnapshot().count, 0u);
}

TEST(RegistryTest, CollectIsSortedAndTyped) {
  Registry registry;
  registry.GetGauge("b_gauge", "gauge help")->Set(5);
  registry.GetCounter("a_total", "counter help")->Add(3);
  registry.GetHistogram("c_us", "histogram help")->Observe(1);
  auto families = registry.Collect();
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0].name, "a_total");
  EXPECT_EQ(families[0].type, MetricType::kCounter);
  EXPECT_EQ(families[0].help, "counter help");
  EXPECT_EQ(families[0].samples[0].value, 3);
  EXPECT_EQ(families[1].name, "b_gauge");
  EXPECT_EQ(families[1].samples[0].value, 5);
  EXPECT_EQ(families[2].name, "c_us");
  EXPECT_EQ(families[2].type, MetricType::kHistogram);
  EXPECT_EQ(families[2].samples[0].histogram.count, 1u);
}

TEST(RegistryTest, CollectInvokesGaugeCallbacksOutsideItsMutex) {
  // A callback that itself touches the registry (find-or-create) must not
  // deadlock: Collect reads values only after dropping the registry mutex.
  Registry registry;
  Gauge* g = registry.GetGauge("self_referential", "help");
  g->SetCallback([&registry] {
    registry.GetCounter("side_total", "created inside a collect");
    return int64_t{11};
  });
  auto families = registry.Collect();
  ASSERT_FALSE(families.empty());
  EXPECT_EQ(families[0].samples[0].value, 11);
}

TEST(RegistryTest, TypeClashAborts) {
  Registry registry;
  registry.GetCounter("clash", "help");
  EXPECT_DEATH(registry.GetGauge("clash", "help"), "");
}

TEST(ScopedLatencyTest, ObservesElapsedMicrosOnInjectedClock) {
  steady_clock::time_point now{};
  Registry::Options options;
  options.clock = [&now] { return now; };
  Registry registry(options);
  Histogram* h = registry.GetHistogram("latency_us", "help");
  {
    ScopedLatency latency(&registry, h);
    now += microseconds(250);
  }
  Histogram::Snapshot s = h->TakeSnapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 250);
}

TEST(ScopedLatencyTest, NullHistogramIsANoOp) {
  Registry registry;
  ScopedLatency latency(&registry, nullptr);  // must not crash at scope exit
}

TEST(ThreadPoolGaugesTest, BindsLiveStateAndUnbindsOnDestruction) {
  Registry registry;
  {
    ThreadPool pool(3);
    ThreadPoolGauges gauges(&registry, &pool, "explain");
    Gauge* threads = registry.GetGauge("cce_thread_pool_threads", "",
                                       {{"pool", "explain"}});
    EXPECT_EQ(threads->Value(), 3);
  }
  // Pool and binder gone: the gauges read their (zero) stored cells rather
  // than chasing a dangling pool pointer.
  Gauge* threads = registry.GetGauge("cce_thread_pool_threads", "",
                                     {{"pool", "explain"}});
  EXPECT_EQ(threads->Value(), 0);
  Gauge* depth = registry.GetGauge("cce_thread_pool_queue_depth", "",
                                   {{"pool", "explain"}});
  EXPECT_EQ(depth->Value(), 0);
}

// Satellite 4's concurrency test: many threads hammer one counter and one
// histogram; after joining, totals are exact (the relaxed sharded writes
// lose nothing) and TSan (tier-2 SANITIZER=thread) sees no race.
TEST(ObsConcurrencyTest, HammeredCounterAndHistogramStayExact) {
  Registry registry;
  Counter* c = registry.GetCounter("hammer_total", "help");
  Histogram* h = registry.GetHistogram("hammer_us", "help");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe((t * kPerThread + i) % 1000);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  Histogram::Snapshot s = h->TakeSnapshot();
  EXPECT_EQ(s.count, uint64_t{kThreads} * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t count : s.counts) bucket_total += count;
  EXPECT_EQ(bucket_total, s.count) << "every observation is in some bucket";
}

}  // namespace
}  // namespace cce::obs
