// Request tracing (DESIGN.md §9): RAII traces + phase spans on an injected
// clock, ring overwrite semantics, newest-first reads, null-ring no-ops,
// and outcome annotation — the "what did the last degraded request do"
// debugging surface.

#include <chrono>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace cce::obs {
namespace {

using std::chrono::microseconds;
using std::chrono::steady_clock;

struct ManualClock {
  steady_clock::time_point now{};
  TraceRing::ClockFn fn() {
    return [this] { return now; };
  }
};

TEST(TraceRingTest, CommitsAndReadsNewestFirst) {
  ManualClock clock;
  TraceRing ring(4, clock.fn());
  for (int i = 0; i < 3; ++i) {
    RequestTrace trace(&ring, "predict");
    trace.set_outcome(TraceOutcome::kServedFull);
  }
  EXPECT_EQ(ring.committed(), 3u);
  auto recent = ring.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].id, 3u);
  EXPECT_EQ(recent[1].id, 2u);
  EXPECT_EQ(recent[2].id, 1u);
  EXPECT_STREQ(recent[0].op, "predict");
  EXPECT_EQ(recent[0].outcome, TraceOutcome::kServedFull);
}

TEST(TraceRingTest, OverwritesOldestOnceFull) {
  ManualClock clock;
  TraceRing ring(2, clock.fn());
  for (int i = 0; i < 5; ++i) {
    RequestTrace trace(&ring, "explain");
  }
  EXPECT_EQ(ring.committed(), 5u);
  auto recent = ring.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].id, 5u);
  EXPECT_EQ(recent[1].id, 4u);
  // Bounded reads return the newest slice.
  auto one = ring.Recent(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].id, 5u);
}

TEST(TraceRingTest, CapacityZeroIsInert) {
  TraceRing ring(0);
  {
    RequestTrace trace(&ring, "predict");
    trace.set_outcome(TraceOutcome::kError);
  }
  EXPECT_EQ(ring.Recent().size(), 0u);
}

TEST(RequestTraceTest, PhasesAndTotalUseTheInjectedClock) {
  ManualClock clock;
  TraceRing ring(4, clock.fn());
  {
    RequestTrace trace(&ring, "explain");
    {
      auto span = trace.Phase("validate");
      clock.now += microseconds(10);
    }
    {
      auto span = trace.Phase("search");
      clock.now += microseconds(300);
    }
    clock.now += microseconds(5);  // outside any phase: total only
    trace.set_outcome(TraceOutcome::kDegraded);
    trace.set_detail("deadline expired");
  }
  auto recent = ring.Recent();
  ASSERT_EQ(recent.size(), 1u);
  const TraceRecord& record = recent[0];
  EXPECT_EQ(record.total_us, 315);
  ASSERT_EQ(record.num_phases, 2u);
  EXPECT_STREQ(record.phases[0].name, "validate");
  EXPECT_EQ(record.phases[0].duration_us, 10);
  EXPECT_STREQ(record.phases[1].name, "search");
  EXPECT_EQ(record.phases[1].duration_us, 300);
  EXPECT_EQ(record.outcome, TraceOutcome::kDegraded);
  EXPECT_EQ(record.detail, "deadline expired");
}

TEST(RequestTraceTest, SpanEndIsIdempotentAndEarlyEndStopsTheClock) {
  ManualClock clock;
  TraceRing ring(2, clock.fn());
  {
    RequestTrace trace(&ring, "record");
    auto span = trace.Phase("wal");
    clock.now += microseconds(50);
    span.End();
    clock.now += microseconds(1000);  // after End: not attributed to "wal"
    span.End();                       // second End must not double-append
  }
  auto recent = ring.Recent();
  ASSERT_EQ(recent[0].num_phases, 1u);
  EXPECT_EQ(recent[0].phases[0].duration_us, 50);
}

TEST(RequestTraceTest, PhasesBeyondTheCapAreDropped) {
  ManualClock clock;
  TraceRing ring(2, clock.fn());
  {
    RequestTrace trace(&ring, "predict");
    for (size_t i = 0; i < TraceRecord::kMaxPhases + 3; ++i) {
      auto span = trace.Phase("p");
      clock.now += microseconds(1);
    }
  }
  EXPECT_EQ(ring.Recent()[0].num_phases, TraceRecord::kMaxPhases);
}

TEST(RequestTraceTest, NullRingMakesEverythingANoOp) {
  RequestTrace trace(nullptr, "predict");
  EXPECT_FALSE(trace.active());
  auto span = trace.Phase("validate");
  span.End();
  trace.set_outcome(TraceOutcome::kServedFull);
  // Destruction must not touch a ring.
}

TEST(TraceOutcomeTest, NamesAreStableApiSurface) {
  // These strings are the `outcome` label of cce_requests_total and the
  // JSON exposition values — renaming them is a breaking change.
  EXPECT_STREQ(TraceOutcomeName(TraceOutcome::kUnset), "unset");
  EXPECT_STREQ(TraceOutcomeName(TraceOutcome::kServedFull), "served_full");
  EXPECT_STREQ(TraceOutcomeName(TraceOutcome::kServedCached),
               "served_cached");
  EXPECT_STREQ(TraceOutcomeName(TraceOutcome::kDegraded), "degraded");
  EXPECT_STREQ(TraceOutcomeName(TraceOutcome::kShed), "shed");
  EXPECT_STREQ(TraceOutcomeName(TraceOutcome::kRetried), "retried");
  EXPECT_STREQ(TraceOutcomeName(TraceOutcome::kBroke), "broke");
  EXPECT_STREQ(TraceOutcomeName(TraceOutcome::kError), "error");
}

}  // namespace
}  // namespace cce::obs
