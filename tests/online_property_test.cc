// Cross-algorithm property sweeps for the online algorithms, over grids of
// (alpha, stream shape): validity, coherence, bookkeeping consistency, and
// the OSRK/SSRK-vs-SRK relationships the paper relies on.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/conformity.h"
#include "core/osrk.h"
#include "core/srk.h"
#include "core/ssrk.h"
#include "tests/test_util.h"

namespace cce {
namespace {

struct OnlineParam {
  uint64_t seed;
  size_t rows;
  size_t features;
  size_t domain;
  double alpha;
};

class OnlinePropertyTest : public ::testing::TestWithParam<OnlineParam> {};

TEST_P(OnlinePropertyTest, OsrkAndSsrkInvariantsHold) {
  const auto& p = GetParam();
  Dataset universe = testing::RandomContext(p.rows, p.features, p.domain,
                                            p.seed, /*noise=*/0.0);
  const Instance& x0 = universe.instance(0);
  Label y0 = universe.label(0);

  Osrk::Options osrk_options;
  osrk_options.alpha = p.alpha;
  osrk_options.seed = p.seed;
  auto osrk = Osrk::Create(universe.schema_ptr(), x0, y0, osrk_options);
  ASSERT_TRUE(osrk.ok());
  Ssrk::Options ssrk_options;
  ssrk_options.alpha = p.alpha;
  auto ssrk = Ssrk::Create(universe, x0, y0, ssrk_options);
  ASSERT_TRUE(ssrk.ok());

  FeatureSet osrk_previous;
  FeatureSet ssrk_previous;
  for (size_t row = 1; row < universe.size(); ++row) {
    const FeatureSet& osrk_key =
        (*osrk)->Observe(universe.instance(row), universe.label(row));
    const FeatureSet& ssrk_key =
        (*ssrk)->Observe(universe.instance(row), universe.label(row));
    // Coherence for both algorithms, at every step.
    ASSERT_TRUE(FeatureSetIsSubset(osrk_previous, osrk_key)) << row;
    ASSERT_TRUE(FeatureSetIsSubset(ssrk_previous, ssrk_key)) << row;
    osrk_previous = osrk_key;
    ssrk_previous = ssrk_key;
  }

  // Final keys are alpha-conformant over the arrived stream (noise = 0, so
  // the bound is always attainable), and the internal alpha bookkeeping
  // matches an offline recount.
  std::vector<size_t> arrived_rows;
  for (size_t r = 1; r < universe.size(); ++r) arrived_rows.push_back(r);
  Dataset arrived = universe.Subset(arrived_rows);
  ConformityChecker checker(&arrived);
  EXPECT_TRUE((*osrk)->satisfied());
  EXPECT_TRUE((*ssrk)->satisfied());
  EXPECT_TRUE(
      checker.IsAlphaConformant(x0, y0, (*osrk)->key(), p.alpha));
  EXPECT_TRUE(
      checker.IsAlphaConformant(x0, y0, (*ssrk)->key(), p.alpha));
  EXPECT_NEAR((*osrk)->achieved_alpha(),
              checker.Precision(x0, y0, (*osrk)->key()), 1e-9);
  EXPECT_NEAR((*ssrk)->achieved_alpha(),
              checker.Precision(x0, y0, (*ssrk)->key()), 1e-9);

  // The batch key for the same stream is itself valid — the coherent
  // online keys are alternatives, not prerequisites.
  Srk::Options srk_options;
  srk_options.alpha = p.alpha;
  auto batch = Srk::ExplainInstance(arrived, x0, y0, srk_options);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->satisfied);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OnlinePropertyTest,
    ::testing::Values(OnlineParam{11, 100, 4, 3, 1.0},
                      OnlineParam{12, 100, 4, 3, 0.95},
                      OnlineParam{13, 250, 6, 2, 1.0},
                      OnlineParam{14, 250, 6, 2, 0.9},
                      OnlineParam{15, 400, 8, 4, 1.0},
                      OnlineParam{16, 400, 8, 4, 0.97},
                      OnlineParam{17, 150, 5, 5, 1.0},
                      OnlineParam{18, 150, 5, 5, 0.92},
                      OnlineParam{19, 600, 10, 3, 1.0},
                      OnlineParam{20, 600, 10, 3, 0.9}));

// Interleaving property: feeding only same-prediction instances between
// violating arrivals never changes the key.
TEST(OnlineInterleavingTest, SamePredictionArrivalsAreFreeForBoth) {
  Dataset universe = testing::RandomContext(200, 5, 3, 303, /*noise=*/0.0);
  const Instance& x0 = universe.instance(0);
  Label y0 = universe.label(0);
  auto osrk = Osrk::Create(universe.schema_ptr(), x0, y0, {});
  ASSERT_TRUE(osrk.ok());
  auto ssrk = Ssrk::Create(universe, x0, y0, {});
  ASSERT_TRUE(ssrk.ok());
  for (size_t row = 1; row < universe.size(); ++row) {
    if (universe.label(row) != y0) continue;  // same-prediction only
    FeatureSet osrk_before = (*osrk)->key();
    FeatureSet ssrk_before = (*ssrk)->key();
    (*osrk)->Observe(universe.instance(row), universe.label(row));
    (*ssrk)->Observe(universe.instance(row), universe.label(row));
    EXPECT_EQ((*osrk)->key(), osrk_before);
    EXPECT_EQ((*ssrk)->key(), ssrk_before);
  }
  EXPECT_TRUE((*osrk)->key().empty());
  EXPECT_TRUE((*ssrk)->key().empty());
}

// Permutation robustness: SSRK stays valid for any arrival order of the
// same universe (the setting of Section 5.3 — static features, uncertain
// order).
TEST(OnlineInterleavingTest, SsrkValidUnderArrivalPermutations) {
  Dataset universe = testing::RandomContext(120, 5, 3, 404, /*noise=*/0.0);
  const Instance& x0 = universe.instance(0);
  Label y0 = universe.label(0);
  Rng rng(9);
  for (int permutation = 0; permutation < 5; ++permutation) {
    std::vector<size_t> order;
    for (size_t r = 1; r < universe.size(); ++r) order.push_back(r);
    rng.Shuffle(&order);
    auto ssrk = Ssrk::Create(universe, x0, y0, {});
    ASSERT_TRUE(ssrk.ok());
    for (size_t row : order) {
      (*ssrk)->Observe(universe.instance(row), universe.label(row));
    }
    std::vector<size_t> sorted_order = order;
    std::sort(sorted_order.begin(), sorted_order.end());
    Dataset arrived = universe.Subset(sorted_order);
    ConformityChecker checker(&arrived);
    EXPECT_TRUE(checker.IsAlphaConformant(x0, y0, (*ssrk)->key(), 1.0))
        << "permutation " << permutation;
  }
}

}  // namespace
}  // namespace cce
