#include "core/optimal.h"

#include <gtest/gtest.h>

#include "core/conformity.h"
#include "core/srk.h"
#include "tests/test_util.h"

namespace cce {
namespace {

TEST(OptimalTest, Fig2OptimalKeyHasSizeTwo) {
  testing::Fig2Context fig2;
  auto result = OptimalKeyFinder::FindForRow(fig2.context, 0, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
  EXPECT_EQ(result->key.size(), 2u);
  ConformityChecker checker(&fig2.context);
  EXPECT_TRUE(checker.IsAlphaConformant(fig2.context.instance(0),
                                        fig2.denied, result->key, 1.0));
}

TEST(OptimalTest, Fig2AlphaRelaxedOptimalIsSingleton) {
  testing::Fig2Context fig2;
  OptimalKeyFinder::Options options;
  options.alpha = 6.0 / 7.0;
  auto result = OptimalKeyFinder::FindForRow(fig2.context, 0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->key.size(), 1u);
}

TEST(OptimalTest, EmptyKeyWhenAlreadyConformant) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "u");
  schema->InternLabel("only");
  Dataset context(schema);
  context.Add({0}, 0);
  auto result = OptimalKeyFinder::FindForRow(context, 0, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->key.empty());
  EXPECT_TRUE(result->satisfied);
}

TEST(OptimalTest, ConflictingDuplicatesUnsatisfied) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  Dataset context(schema);
  context.Add({0}, 0);
  context.Add({0}, 1);
  auto result = OptimalKeyFinder::FindForRow(context, 0, {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  EXPECT_EQ(result->key.size(), 1u);  // all features
}

TEST(OptimalTest, RefusesLargeFeatureCounts) {
  Dataset context = testing::RandomContext(10, 30, 2, 1);
  OptimalKeyFinder::Options options;
  options.max_features = 24;
  EXPECT_EQ(OptimalKeyFinder::FindForRow(context, 0, options)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(OptimalTest, NeverLargerThanSrk) {
  for (uint64_t seed : {61u, 62u, 63u, 64u, 65u}) {
    Dataset context = testing::RandomContext(80, 7, 3, seed);
    auto optimal = OptimalKeyFinder::FindForRow(context, 0, {});
    auto greedy = Srk::Explain(context, 0, {});
    ASSERT_TRUE(optimal.ok());
    ASSERT_TRUE(greedy.ok());
    if (optimal->satisfied && greedy->satisfied) {
      EXPECT_LE(optimal->key.size(), greedy->key.size());
    }
  }
}

TEST(OptimalTest, InvalidAlphaRejected) {
  testing::Fig2Context fig2;
  OptimalKeyFinder::Options options;
  options.alpha = 0.0;
  EXPECT_FALSE(OptimalKeyFinder::FindForRow(fig2.context, 0, options).ok());
}

TEST(OptimalTest, RowOutOfRange) {
  testing::Fig2Context fig2;
  EXPECT_EQ(
      OptimalKeyFinder::FindForRow(fig2.context, 100, {}).status().code(),
      StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace cce
