#include "core/osrk.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/logging.h"

#include "core/conformity.h"
#include "tests/test_util.h"

namespace cce {
namespace {

std::unique_ptr<Osrk> MakeOsrk(const testing::Fig2Context& fig2,
                               double alpha = 1.0, uint64_t seed = 42) {
  Osrk::Options options;
  options.alpha = alpha;
  options.seed = seed;
  auto osrk = Osrk::Create(fig2.schema, fig2.context.instance(0),
                           fig2.denied, options);
  CCE_CHECK_OK(osrk.status());
  return std::move(osrk).value();
}

TEST(OsrkTest, CreateValidatesArguments) {
  testing::Fig2Context fig2;
  Osrk::Options bad_alpha;
  bad_alpha.alpha = 0.0;
  EXPECT_FALSE(Osrk::Create(fig2.schema, fig2.context.instance(0),
                            fig2.denied, bad_alpha)
                   .ok());
  Osrk::Options ok_options;
  EXPECT_FALSE(
      Osrk::Create(nullptr, fig2.context.instance(0), fig2.denied,
                   ok_options)
          .ok());
  EXPECT_FALSE(
      Osrk::Create(fig2.schema, Instance{0}, fig2.denied, ok_options).ok());
}

TEST(OsrkTest, SamePredictionNeverChangesKey) {
  testing::Fig2Context fig2;
  auto osrk = MakeOsrk(fig2);
  for (size_t row : {0u, 2u, 3u, 4u}) {  // all denied like x0
    osrk->Observe(fig2.context.instance(row), fig2.denied);
  }
  EXPECT_TRUE(osrk->key().empty());
  EXPECT_EQ(osrk->context_size(), 4u);
  EXPECT_DOUBLE_EQ(osrk->achieved_alpha(), 1.0);
}

TEST(OsrkTest, KeyIsCoherentAcrossStream) {
  Dataset context = testing::RandomContext(400, 8, 3, 99);
  auto schema = context.schema_ptr();
  Osrk::Options options;
  options.seed = 7;
  auto osrk = Osrk::Create(schema, context.instance(0), context.label(0),
                           options);
  ASSERT_TRUE(osrk.ok());
  FeatureSet previous;
  for (size_t row = 1; row < context.size(); ++row) {
    const FeatureSet& key =
        (*osrk)->Observe(context.instance(row), context.label(row));
    EXPECT_TRUE(FeatureSetIsSubset(previous, key))
        << "coherence violated at row " << row;
    previous = key;
  }
}

TEST(OsrkTest, FinalKeyIsConformantOverStream) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Dataset context =
        testing::RandomContext(300, 6, 3, 1000 + seed, /*noise=*/0.0);
    Osrk::Options options;
    options.seed = seed;
    auto osrk = Osrk::Create(context.schema_ptr(), context.instance(0),
                             context.label(0), options);
    ASSERT_TRUE(osrk.ok());
    for (size_t row = 1; row < context.size(); ++row) {
      (*osrk)->Observe(context.instance(row), context.label(row));
    }
    // Verify against an offline checker over the arrived instances.
    Dataset arrived = context.Subset([&] {
      std::vector<size_t> rows;
      for (size_t r = 1; r < context.size(); ++r) rows.push_back(r);
      return rows;
    }());
    ConformityChecker checker(&arrived);
    EXPECT_TRUE(checker.IsAlphaConformant(context.instance(0),
                                          context.label(0), (*osrk)->key(),
                                          1.0))
        << "seed " << seed;
    EXPECT_TRUE((*osrk)->satisfied());
  }
}

TEST(OsrkTest, AchievedAlphaMatchesOfflineRecount) {
  // Bookkeeping invariant: the incrementally-maintained violator count must
  // agree with an offline recount of the arrived stream, for any alpha.
  for (double alpha : {1.0, 0.95, 0.9}) {
    for (uint64_t seed : {11u, 12u, 13u}) {
      Dataset context = testing::RandomContext(300, 6, 3, 2000 + seed);
      Osrk::Options options;
      options.alpha = alpha;
      options.seed = seed;
      auto osrk = Osrk::Create(context.schema_ptr(), context.instance(0),
                               context.label(0), options);
      ASSERT_TRUE(osrk.ok());
      for (size_t row = 1; row < context.size(); ++row) {
        (*osrk)->Observe(context.instance(row), context.label(row));
      }
      std::vector<size_t> arrived_rows;
      for (size_t r = 1; r < context.size(); ++r) arrived_rows.push_back(r);
      Dataset arrived = context.Subset(arrived_rows);
      ConformityChecker checker(&arrived);
      EXPECT_NEAR((*osrk)->achieved_alpha(),
                  checker.Precision(context.instance(0), context.label(0),
                                    (*osrk)->key()),
                  1e-9)
          << "alpha " << alpha << " seed " << seed;
      if ((*osrk)->satisfied()) {
        EXPECT_GE((*osrk)->achieved_alpha(), alpha - 1e-9);
      }
    }
  }
}

TEST(OsrkTest, PaperExample7Stream) {
  // Example 7: after the initial context, x7 (Denied) and x8 (differs on
  // Credit) leave the key alone; x9 (Male, 3-4K, poor, 0 -> Approved)
  // forces an expansion covering Dependent.
  testing::Fig2Context fig2;
  auto osrk = MakeOsrk(fig2, 1.0, /*seed=*/3);
  // Feed the original context first.
  for (size_t row = 1; row < fig2.context.size(); ++row) {
    osrk->Observe(fig2.context.instance(row), fig2.context.label(row));
  }
  FeatureSet before = osrk->key();
  // x7: (Female, 3-4K, poor, 2) Denied — no change.
  Instance x7(4);
  x7[fig2.gender] = *fig2.schema->LookupValue(fig2.gender, "Female");
  x7[fig2.income] = *fig2.schema->LookupValue(fig2.income, "3-4K");
  x7[fig2.credit] = *fig2.schema->LookupValue(fig2.credit, "poor");
  x7[fig2.dependent] = *fig2.schema->LookupValue(fig2.dependent, "2");
  osrk->Observe(x7, fig2.denied);
  EXPECT_EQ(osrk->key(), before);
  // x9: (Male, 3-4K, poor, 0) Approved — differs from x0 only on
  // Dependent, so the key must grow to include Dependent.
  Instance x9 = fig2.context.instance(0);
  x9[fig2.dependent] = *fig2.schema->LookupValue(fig2.dependent, "0");
  osrk->Observe(x9, fig2.approved);
  EXPECT_TRUE(FeatureSetContains(osrk->key(), fig2.dependent));
}

TEST(OsrkTest, ConflictingDuplicateReportsUnsatisfied) {
  testing::Fig2Context fig2;
  auto osrk = MakeOsrk(fig2);
  // A duplicate of x0 with the opposite prediction cannot be separated.
  osrk->Observe(fig2.context.instance(0), fig2.approved);
  EXPECT_FALSE(osrk->satisfied());
  EXPECT_LT(osrk->achieved_alpha(), 1.0);
}

TEST(OsrkTest, UpdateCostIndependentOfContextSize) {
  // Not a timing test: verifies the violator set stays bounded (covered
  // violators are dropped), which is what makes updates O(n log n).
  Dataset context = testing::RandomContext(2000, 8, 3, 31, /*noise=*/0.0);
  Osrk::Options options;
  options.seed = 5;
  auto osrk = Osrk::Create(context.schema_ptr(), context.instance(0),
                           context.label(0), options);
  ASSERT_TRUE(osrk.ok());
  for (size_t row = 1; row < context.size(); ++row) {
    (*osrk)->Observe(context.instance(row), context.label(row));
  }
  EXPECT_TRUE((*osrk)->satisfied());
  EXPECT_LE((*osrk)->key().size(), context.num_features());
}

TEST(OsrkTest, DifferentSeedsAllConformant) {
  Dataset context = testing::RandomContext(200, 6, 3, 555, /*noise=*/0.0);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Osrk::Options options;
    options.seed = seed;
    auto osrk = Osrk::Create(context.schema_ptr(), context.instance(0),
                             context.label(0), options);
    ASSERT_TRUE(osrk.ok());
    for (size_t row = 1; row < context.size(); ++row) {
      (*osrk)->Observe(context.instance(row), context.label(row));
    }
    EXPECT_TRUE((*osrk)->satisfied()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cce
