// Unit coverage for the admission-control building blocks: the CoDel-style
// buildup detector, the AIMD concurrency limiter, the explanation LRU
// cache, and the OverloadController that composes them with the per-class
// token buckets. Deterministic via manual clocks; one threaded test covers
// the queue-wait handoff.

#include "serving/overload.h"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "common/deadline.h"

namespace cce::serving {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using Clock = std::chrono::steady_clock;

class ManualClock {
 public:
  OverloadController::ClockFn fn() {
    return [this] { return now_; };
  }
  void Advance(milliseconds delta) { now_ += delta; }
  Clock::time_point now() const { return now_; }

 private:
  Clock::time_point now_{};
};

// ---------------------------------------------------------------- CoDel --

TEST(CodelDetectorTest, TransientSpikesDoNotTriggerShedding) {
  CodelDetector::Options options;
  options.target = milliseconds(5);
  options.interval = milliseconds(100);
  CodelDetector codel(options);
  Clock::time_point now{};
  // A single slow sojourn followed by a fast one: healthy burst.
  EXPECT_FALSE(codel.Observe(milliseconds(50), now));
  now += milliseconds(10);
  EXPECT_FALSE(codel.Observe(milliseconds(1), now));
  EXPECT_FALSE(codel.shedding());
}

TEST(CodelDetectorTest, SustainedBuildupTriggersAndRecovers) {
  CodelDetector::Options options;
  options.target = milliseconds(5);
  options.interval = milliseconds(100);
  CodelDetector codel(options);
  Clock::time_point now{};
  EXPECT_FALSE(codel.Observe(milliseconds(50), now));
  now += milliseconds(99);
  EXPECT_FALSE(codel.Observe(milliseconds(50), now))
      << "interval not yet elapsed";
  now += milliseconds(1);
  EXPECT_TRUE(codel.Observe(milliseconds(50), now))
      << "above target for a full interval";
  EXPECT_TRUE(codel.shedding());
  // One sojourn back under target proves the queue drains.
  now += milliseconds(10);
  EXPECT_FALSE(codel.Observe(milliseconds(1), now));
  EXPECT_FALSE(codel.shedding());
}

// ----------------------------------------------------- AdaptiveConcurrency --

TEST(AdaptiveConcurrencyTest, AdditiveIncreaseAfterFastStreak) {
  AdaptiveConcurrency::Options options;
  options.initial = 4;
  options.max = 6;
  options.latency_target = milliseconds(100);
  options.increase_every = 3;
  AdaptiveConcurrency aimd(options);
  EXPECT_EQ(aimd.limit(), 4);
  aimd.OnCompletion(milliseconds(10));
  aimd.OnCompletion(milliseconds(10));
  EXPECT_EQ(aimd.limit(), 4) << "streak not yet complete";
  aimd.OnCompletion(milliseconds(10));
  EXPECT_EQ(aimd.limit(), 5);
  for (int i = 0; i < 30; ++i) aimd.OnCompletion(milliseconds(10));
  EXPECT_EQ(aimd.limit(), 6) << "clamped at max";
  EXPECT_EQ(aimd.increases(), 2u);
}

TEST(AdaptiveConcurrencyTest, MultiplicativeDecreaseOnSlowCompletion) {
  AdaptiveConcurrency::Options options;
  options.initial = 16;
  options.min = 2;
  options.latency_target = milliseconds(100);
  options.decrease_factor = 0.5;
  AdaptiveConcurrency aimd(options);
  aimd.OnCompletion(milliseconds(500));
  EXPECT_EQ(aimd.limit(), 8);
  aimd.OnCompletion(milliseconds(500));
  EXPECT_EQ(aimd.limit(), 4);
  aimd.OnCompletion(milliseconds(500));
  aimd.OnCompletion(milliseconds(500));
  EXPECT_EQ(aimd.limit(), 2) << "clamped at min";
  aimd.OnCompletion(milliseconds(500));
  EXPECT_EQ(aimd.limit(), 2);
  EXPECT_EQ(aimd.decreases(), 3u) << "cuts at the floor are not counted";
}

TEST(AdaptiveConcurrencyTest, SlowCompletionResetsTheFastStreak) {
  AdaptiveConcurrency::Options options;
  options.initial = 4;
  options.latency_target = milliseconds(100);
  options.increase_every = 2;
  AdaptiveConcurrency aimd(options);
  aimd.OnCompletion(milliseconds(10));
  aimd.OnCompletion(milliseconds(500));  // cut to 2, streak reset
  EXPECT_EQ(aimd.limit(), 2);
  aimd.OnCompletion(milliseconds(10));
  EXPECT_EQ(aimd.limit(), 2);
  aimd.OnCompletion(milliseconds(10));
  EXPECT_EQ(aimd.limit(), 3);
}

TEST(AdaptiveConcurrencyTest, DeterministicAcrossReplays) {
  const auto run = [] {
    AdaptiveConcurrency aimd(AdaptiveConcurrency::Options{});
    for (int i = 0; i < 100; ++i) {
      aimd.OnCompletion(milliseconds(i % 7 == 0 ? 500 : 10));
    }
    return aimd.limit();
  };
  EXPECT_EQ(run(), run());
}

// ----------------------------------------------------------- ExplainCache --

KeyResult MakeKey(std::initializer_list<FeatureId> features) {
  KeyResult key;
  key.key.assign(features);
  key.achieved_alpha = 1.0;  // a cached full key has zero violators
  return key;
}

TEST(ExplainCacheTest, FreshEntryServesWithoutRevalidation) {
  ExplainCache::Options options;
  options.capacity = 4;
  ExplainCache cache(options);
  Instance x{1, 2, 3};
  cache.Put(x, 0, cache.delta_seq(), /*window_rows=*/3, MakeKey({0, 2}));
  auto hit = cache.Get(x, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->cached);
  EXPECT_EQ(hit->key, (FeatureSet{0, 2}));
  EXPECT_FALSE(cache.Get(x, 1).has_value()) << "label is part of the key";
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().revalidations, 0u)
      << "no window delta since the entry was stored";
}

TEST(ExplainCacheTest, BenignDeltaRevalidates) {
  ExplainCache cache(ExplainCache::Options{});
  // Key {0} for (x, y=0): conformity depends only on rows matching x[0].
  Instance x{1, 2};
  cache.Put(x, 0, cache.delta_seq(), /*window_rows=*/2, MakeKey({0}));
  // Same key projection, same label: supports the key, never breaks it.
  cache.RecordAdd(Instance{1, 9}, 0);
  // Different key projection: invisible to the key regardless of label.
  cache.RecordAdd(Instance{7, 9}, 1);
  auto hit = cache.Get(x, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->key, (FeatureSet{0}));
  EXPECT_EQ(cache.stats().revalidations, 1u)
      << "the slide was replayed and the key re-proven";
  EXPECT_EQ(cache.stats().revalidation_failures, 0u);
  // A second Get sees the refreshed stamp: fresh, no second replay.
  EXPECT_TRUE(cache.Get(x, 0).has_value());
  EXPECT_EQ(cache.stats().revalidations, 1u);
}

TEST(ExplainCacheTest, ConflictingDeltaBreaksTheKey) {
  ExplainCache cache(ExplainCache::Options{});  // alpha = 1: no violators
  Instance x{1, 2};
  cache.Put(x, 0, cache.delta_seq(), /*window_rows=*/2, MakeKey({0}));
  // Agrees with x on the key feature but carries the other label: a
  // violator under alpha = 1, so the cached key is no longer a key.
  cache.RecordAdd(Instance{1, 5}, 1);
  EXPECT_FALSE(cache.Get(x, 0).has_value());
  EXPECT_EQ(cache.stats().revalidation_failures, 1u);
  EXPECT_EQ(cache.size(), 0u) << "broken entry evicted on lookup";
}

TEST(ExplainCacheTest, RemovalOfViolatorRestoresHeadroom) {
  ExplainCache::Options options;
  options.alpha = 0.75;  // one violator tolerated per 4 rows
  ExplainCache cache(options);
  Instance x{1, 2};
  KeyResult key = MakeKey({0});
  key.achieved_alpha = 0.75;  // 1 violator among 4 rows at Put time
  cache.Put(x, 0, cache.delta_seq(), /*window_rows=*/4, key);
  // The window slides: the old violator leaves, a fresh one arrives.
  cache.RecordRemove(Instance{1, 8}, 1);
  cache.RecordAdd(Instance{1, 9}, 1);
  auto hit = cache.Get(x, 0);
  ASSERT_TRUE(hit.has_value()) << "still exactly one violator in 4 rows";
  EXPECT_EQ(cache.stats().revalidations, 1u);
  // A second conflicting arrival tips it over the alpha budget.
  cache.RecordAdd(Instance{1, 3}, 1);
  EXPECT_FALSE(cache.Get(x, 0).has_value());
  EXPECT_EQ(cache.stats().revalidation_failures, 1u);
}

TEST(ExplainCacheTest, DeltasBeyondTheRingDropTheEntry) {
  ExplainCache::Options options;
  options.revalidation_window = 2;
  ExplainCache cache(options);
  Instance x{7};
  cache.Put(x, 0, cache.delta_seq(), /*window_rows=*/1, MakeKey({0}));
  for (int i = 0; i < 3; ++i) cache.RecordAdd(Instance{7}, 0);
  EXPECT_FALSE(cache.Get(x, 0).has_value())
      << "3 deltas since the entry, ring holds 2: unverifiable";
  EXPECT_EQ(cache.stats().stale_drops, 1u);
  EXPECT_EQ(cache.stats().revalidation_failures, 0u)
      << "uncovered is not disproven — different counter";
  EXPECT_EQ(cache.size(), 0u) << "unverifiable entry evicted on lookup";
}

TEST(ExplainCacheTest, PutWithStaleStampIsSkipped) {
  ExplainCache cache(ExplainCache::Options{});
  Instance x{5};
  const uint64_t stamp = cache.delta_seq();
  // A record lands between the caller's snapshot and its Put: whether the
  // snapshot included that row is unknowable, so the entry is refused.
  cache.RecordAdd(Instance{5}, 0);
  cache.Put(x, 0, stamp, /*window_rows=*/1, MakeKey({0}));
  EXPECT_FALSE(cache.Get(x, 0).has_value());
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ExplainCacheTest, LruEviction) {
  ExplainCache::Options options;
  options.capacity = 2;
  ExplainCache cache(options);
  cache.Put(Instance{1}, 0, 0, 1, MakeKey({0}));
  cache.Put(Instance{2}, 0, 0, 1, MakeKey({1}));
  EXPECT_TRUE(cache.Get(Instance{1}, 0).has_value());  // 1 now MRU
  cache.Put(Instance{3}, 0, 0, 1, MakeKey({2}));       // evicts 2
  EXPECT_TRUE(cache.Get(Instance{1}, 0).has_value());
  EXPECT_FALSE(cache.Get(Instance{2}, 0).has_value());
  EXPECT_TRUE(cache.Get(Instance{3}, 0).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ExplainCacheTest, PutRefreshesExistingEntry) {
  ExplainCache cache(ExplainCache::Options{});
  Instance x{5};
  cache.Put(x, 0, 0, 1, MakeKey({0}));
  cache.Put(x, 0, 0, 1, MakeKey({1}));
  auto hit = cache.Get(x, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->key, (FeatureSet{1}));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ExplainCacheTest, ClearDropsEntriesAndDeltas) {
  ExplainCache cache(ExplainCache::Options{});
  cache.Put(Instance{1}, 0, 0, 1, MakeKey({0}));
  cache.RecordAdd(Instance{2}, 0);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(Instance{1}, 0).has_value());
  // The ring restarts too: a fresh Put at the new stamp is accepted.
  cache.Put(Instance{3}, 0, cache.delta_seq(), 1, MakeKey({1}));
  EXPECT_TRUE(cache.Get(Instance{3}, 0).has_value());
}

TEST(ExplainCacheTest, ZeroCapacityDisables) {
  ExplainCache::Options options;
  options.capacity = 0;
  ExplainCache cache(options);
  cache.Put(Instance{1}, 0, 0, 1, MakeKey({0}));
  cache.RecordAdd(Instance{1}, 0);
  EXPECT_FALSE(cache.Get(Instance{1}, 0).has_value());
  EXPECT_EQ(cache.delta_seq(), 0u) << "disabled cache records no deltas";
}

// ----------------------------------------------------- OverloadController --

OverloadController::Options BaseOptions(ManualClock* clock) {
  OverloadController::Options options;
  options.enabled = true;
  options.clock = clock->fn();
  return options;
}

TEST(OverloadControllerTest, CheapClassesHaveIndependentBuckets) {
  ManualClock clock;
  OverloadController::Options options = BaseOptions(&clock);
  options.predict_bucket.refill_per_sec = 10.0;
  options.predict_bucket.burst = 2.0;
  // record_bucket left unlimited.
  OverloadController controller(options);
  EXPECT_TRUE(controller.AdmitCheap(RequestClass::kPredict).ok());
  EXPECT_TRUE(controller.AdmitCheap(RequestClass::kPredict).ok());
  Status shed = controller.AdmitCheap(RequestClass::kPredict);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(ParseRetryAfterMs(shed), 1);
  // A predict flood must not consume record's budget.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(controller.AdmitCheap(RequestClass::kRecord).ok());
  }
  OverloadController::Stats stats = controller.stats();
  EXPECT_EQ(stats.admitted_predicts, 2u);
  EXPECT_EQ(stats.admitted_records, 100u);
  EXPECT_EQ(stats.shed_rate_limited, 1u);
}

TEST(OverloadControllerTest, ExpensiveRateLimitShedsWithRetryAfter) {
  ManualClock clock;
  OverloadController::Options options = BaseOptions(&clock);
  options.explain_bucket.refill_per_sec = 10.0;
  options.explain_bucket.burst = 1.0;
  OverloadController controller(options);
  auto first =
      controller.AdmitExpensive(RequestClass::kExplain, Deadline::Infinite());
  EXPECT_TRUE(first.ok());
  auto second =
      controller.AdmitExpensive(RequestClass::kExplain, Deadline::Infinite());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ParseRetryAfterMs(second.status()), 100);
  clock.Advance(milliseconds(100));
  EXPECT_TRUE(
      controller.AdmitExpensive(RequestClass::kExplain, Deadline::Infinite())
          .ok());
}

TEST(OverloadControllerTest, QueueFullSheds) {
  ManualClock clock;
  OverloadController::Options options = BaseOptions(&clock);
  options.concurrency.initial = 1;
  options.max_queue = 0;  // no waiting: reject once slots are gone
  OverloadController controller(options);
  auto held =
      controller.AdmitExpensive(RequestClass::kExplain, Deadline::Infinite());
  ASSERT_TRUE(held.ok());
  auto rejected =
      controller.AdmitExpensive(RequestClass::kExplain, Deadline::Infinite());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(controller.stats().shed_queue_full, 1u);
  EXPECT_TRUE(controller.UnderPressure());
}

TEST(OverloadControllerTest, ExpiredDeadlineInQueueIsDeadlineExceeded) {
  ManualClock clock;
  OverloadController::Options options = BaseOptions(&clock);
  options.concurrency.initial = 1;
  options.shed_unmeetable_deadlines = false;  // isolate the queue path
  OverloadController controller(options);
  auto held =
      controller.AdmitExpensive(RequestClass::kExplain, Deadline::Infinite());
  ASSERT_TRUE(held.ok());
  auto expired =
      controller.AdmitExpensive(RequestClass::kExplain, Deadline::Expired());
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(controller.stats().shed_queue_deadline, 1u);
}

TEST(OverloadControllerTest, UnmeetableDeadlineShedsOnArrival) {
  ManualClock clock;
  OverloadController::Options options = BaseOptions(&clock);
  options.concurrency.initial = 1;
  OverloadController controller(options);
  {
    // Teach the EWMA a 10s service time.
    auto permit = controller.AdmitExpensive(RequestClass::kExplain,
                                            Deadline::Infinite());
    ASSERT_TRUE(permit.ok());
    clock.Advance(milliseconds(10000));
  }
  EXPECT_GE(controller.stats().explain_latency_ewma_us, 9000000);
  auto hopeless = controller.AdmitExpensive(
      RequestClass::kExplain, Deadline::After(milliseconds(5)));
  ASSERT_FALSE(hopeless.ok());
  EXPECT_EQ(hopeless.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(ParseRetryAfterMs(hopeless.status()), 1);
  EXPECT_EQ(controller.stats().shed_deadline_unmeetable, 1u);
  // A generous deadline is still admitted.
  EXPECT_TRUE(controller
                  .AdmitExpensive(RequestClass::kExplain,
                                  Deadline::After(std::chrono::seconds(60)))
                  .ok());
}

TEST(OverloadControllerTest, ReleaseFeedsAimdAndFreesSlot) {
  ManualClock clock;
  OverloadController::Options options = BaseOptions(&clock);
  options.concurrency.initial = 2;
  options.concurrency.min = 1;
  options.concurrency.latency_target = milliseconds(100);
  options.max_queue = 0;
  OverloadController controller(options);
  {
    auto permit = controller.AdmitExpensive(RequestClass::kExplain,
                                            Deadline::Infinite());
    ASSERT_TRUE(permit.ok());
    clock.Advance(milliseconds(500));  // slow completion
  }
  OverloadController::Stats stats = controller.stats();
  EXPECT_EQ(stats.in_flight, 0);
  EXPECT_EQ(stats.concurrency_limit, 1) << "multiplicative decrease applied";
  EXPECT_EQ(stats.concurrency_decreases, 1u);
}

TEST(OverloadControllerTest, QueuedWaiterAdmittedWhenSlotFrees) {
  // Real clock: a waiter blocked on the admission queue must wake when the
  // in-flight permit releases its slot.
  OverloadController::Options options;
  options.enabled = true;
  options.concurrency.initial = 1;
  options.concurrency.latency_target = std::chrono::seconds(10);
  OverloadController controller(options);
  auto held =
      controller.AdmitExpensive(RequestClass::kExplain, Deadline::Infinite());
  ASSERT_TRUE(held.ok());
  std::optional<OverloadController::Permit> permit(std::move(held).value());
  std::optional<Status> waiter_status;
  std::thread waiter([&] {
    auto admitted = controller.AdmitExpensive(
        RequestClass::kExplain, Deadline::After(std::chrono::seconds(30)));
    waiter_status = admitted.ok() ? Status::Ok() : admitted.status();
  });
  // Give the waiter time to reach the queue, then free the slot.
  while (controller.stats().queue_waits == 0) {
    std::this_thread::yield();
  }
  permit.reset();
  waiter.join();
  ASSERT_TRUE(waiter_status.has_value());
  EXPECT_TRUE(waiter_status->ok()) << waiter_status->ToString();
  OverloadController::Stats stats = controller.stats();
  EXPECT_EQ(stats.admitted_explains, 2u);
  EXPECT_EQ(stats.queue_waits, 1u);
}

TEST(ParseRetryAfterMsTest, RoundTripAndAbsent) {
  EXPECT_EQ(ParseRetryAfterMs(Status::ResourceExhausted(
                "overload: x rate limit; retry_after_ms=42")),
            42);
  EXPECT_EQ(ParseRetryAfterMs(Status::ResourceExhausted("no hint")), -1);
  EXPECT_EQ(ParseRetryAfterMs(Status::Ok()), -1);
}

}  // namespace
}  // namespace cce::serving
