#include "core/patterns.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cce {
namespace {

TEST(ContextPatternsTest, ValidatesArguments) {
  testing::Fig2Context fig2;
  Dataset empty(fig2.schema);
  EXPECT_FALSE(ContextPatternMiner::Mine(empty, {}).ok());
  ContextPatternMiner::Options bad_alpha;
  bad_alpha.alpha = 0.0;
  EXPECT_FALSE(ContextPatternMiner::Mine(fig2.context, bad_alpha).ok());
}

TEST(ContextPatternsTest, Fig2PatternsIncludeTheRelativeKeyRule) {
  testing::Fig2Context fig2;
  ContextPatternMiner::Options options;
  options.seeds = 0;  // seed from every row
  auto patterns = ContextPatternMiner::Mine(fig2.context, options);
  ASSERT_TRUE(patterns.ok());
  // The grounded key of x0 — Income='3-4K' AND Credit='poor' -> Denied —
  // must appear among the mined patterns.
  bool found = false;
  for (const ContextPattern& p : *patterns) {
    if (p.consequent != fig2.denied) continue;
    if (p.condition.size() != 2) continue;
    bool has_income = false;
    bool has_credit = false;
    for (const auto& [f, v] : p.condition) {
      if (f == fig2.income &&
          v == *fig2.schema->LookupValue(fig2.income, "3-4K")) {
        has_income = true;
      }
      if (f == fig2.credit &&
          v == *fig2.schema->LookupValue(fig2.credit, "poor")) {
        has_credit = true;
      }
    }
    if (has_income && has_credit) {
      found = true;
      EXPECT_DOUBLE_EQ(p.conformity, 1.0);
      EXPECT_EQ(p.support, 3u);  // x0, x2, x3
    }
  }
  EXPECT_TRUE(found);
}

TEST(ContextPatternsTest, PerfectConformityWithAlphaOne) {
  // With alpha = 1 every mined pattern is a grounded (perfect) relative
  // key, so its measured conformity over the context must be 1.
  Dataset context = testing::RandomContext(300, 5, 3, 81, /*noise=*/0.0);
  ContextPatternMiner::Options options;
  options.seeds = 40;
  auto patterns = ContextPatternMiner::Mine(context, options);
  ASSERT_TRUE(patterns.ok());
  ASSERT_FALSE(patterns->empty());
  for (const ContextPattern& p : *patterns) {
    EXPECT_DOUBLE_EQ(p.conformity, 1.0) << p.ToString(context.schema());
    EXPECT_GT(p.support, 0u);
  }
}

TEST(ContextPatternsTest, SortedBySupportAndCapped) {
  Dataset context = testing::RandomContext(300, 5, 3, 82, /*noise=*/0.0);
  ContextPatternMiner::Options options;
  options.seeds = 60;
  options.max_patterns = 4;
  auto patterns = ContextPatternMiner::Mine(context, options);
  ASSERT_TRUE(patterns.ok());
  EXPECT_LE(patterns->size(), 4u);
  for (size_t i = 1; i < patterns->size(); ++i) {
    EXPECT_GE((*patterns)[i - 1].support, (*patterns)[i].support);
  }
}

TEST(ContextPatternsTest, FullSeedingExplainsEverything) {
  // Seeding from every row yields a pattern for each instance, so the
  // summary explains the entire context — unlike heuristic IDS summaries.
  Dataset context = testing::RandomContext(200, 4, 3, 83, /*noise=*/0.0);
  ContextPatternMiner::Options options;
  options.seeds = 0;
  auto patterns = ContextPatternMiner::Mine(context, options);
  ASSERT_TRUE(patterns.ok());
  EXPECT_DOUBLE_EQ(
      ContextPatternMiner::ExplainedFraction(context, *patterns), 1.0);
}

TEST(ContextPatternsTest, DedupesIdenticalKeys) {
  // Identical rows ground to identical patterns; the miner must dedupe.
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "u");
  schema->InternValue(f, "v");
  schema->InternLabel("neg");
  schema->InternLabel("pos");
  Dataset context(schema);
  for (int i = 0; i < 10; ++i) context.Add({0}, 0);
  for (int i = 0; i < 10; ++i) context.Add({1}, 1);
  ContextPatternMiner::Options options;
  options.seeds = 0;
  auto patterns = ContextPatternMiner::Mine(context, options);
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ(patterns->size(), 2u);
  for (const ContextPattern& p : *patterns) {
    EXPECT_EQ(p.support, 10u);
  }
}

TEST(ContextPatternsTest, ToStringRendersCondition) {
  testing::Fig2Context fig2;
  ContextPattern pattern;
  pattern.condition = {{fig2.credit, 0}};
  pattern.consequent = fig2.denied;
  std::string text = pattern.ToString(*fig2.schema);
  EXPECT_NE(text.find("Credit='poor'"), std::string::npos);
  EXPECT_NE(text.find("THEN Denied"), std::string::npos);
}

}  // namespace
}  // namespace cce
