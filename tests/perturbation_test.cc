#include "explain/perturbation.h"

#include <gtest/gtest.h>

#include "explain/anchor.h"
#include "ml/gbdt.h"
#include "tests/test_util.h"

namespace cce::explain {
namespace {

TEST(PerturbationTest, KeptFeaturesNeverChange) {
  Dataset reference = cce::testing::RandomContext(100, 5, 4, 3);
  PerturbationSampler sampler(&reference);
  Rng rng(1);
  Instance x = reference.instance(0);
  std::vector<bool> keep = {true, false, true, false, true};
  for (int trial = 0; trial < 200; ++trial) {
    Instance z = sampler.Sample(x, keep, &rng);
    for (FeatureId f = 0; f < 5; ++f) {
      if (keep[f]) EXPECT_EQ(z[f], x[f]) << "feature " << f;
    }
  }
}

TEST(PerturbationTest, MaskedFeaturesFollowReferenceMarginals) {
  // A reference set where feature 0 takes value 0 in 80% of rows: masked
  // samples must reproduce that marginal.
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "common");
  schema->InternValue(f, "rare");
  schema->InternLabel("l");
  Dataset reference(schema);
  for (int i = 0; i < 100; ++i) {
    reference.Add({i < 80 ? 0u : 1u}, 0);
  }
  PerturbationSampler sampler(&reference);
  Rng rng(2);
  Instance x = {1};
  std::vector<bool> keep = {false};
  int common = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    common += sampler.Sample(x, keep, &rng)[0] == 0;
  }
  EXPECT_NEAR(common / static_cast<double>(trials), 0.8, 0.03);
}

TEST(PerturbationTest, RandomMaskRespectsKeepProbability) {
  Dataset reference = cce::testing::RandomContext(20, 4, 2, 5);
  PerturbationSampler sampler(&reference);
  Rng rng(3);
  int kept = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    for (bool bit : sampler.RandomMask(4, 0.3, &rng)) kept += bit;
  }
  EXPECT_NEAR(kept / static_cast<double>(trials * 4), 0.3, 0.03);
}

TEST(AnchorCoverageTest, LargerAnchorsCoverLess) {
  Dataset data = cce::testing::RandomContext(600, 5, 3, 7, /*noise=*/0.0);
  ml::Gbdt::Options options;
  options.num_trees = 20;
  auto model = ml::Gbdt::Train(data, options);
  ASSERT_TRUE(model.ok());
  Anchor anchor(model->get(), &data, {});
  const Instance& x = data.instance(0);
  double empty_coverage = anchor.EstimateCoverage(x, {}, 500);
  double one_coverage = anchor.EstimateCoverage(x, {0}, 500);
  double full_coverage =
      anchor.EstimateCoverage(x, {0, 1, 2, 3, 4}, 500);
  EXPECT_DOUBLE_EQ(empty_coverage, 1.0);
  EXPECT_LE(one_coverage, 1.0);
  EXPECT_LE(full_coverage, one_coverage + 0.05);
  // Value 0 of a 3-ary uniform feature covers roughly a third.
  EXPECT_NEAR(one_coverage, 1.0 / 3.0, 0.1);
}

}  // namespace
}  // namespace cce::explain
