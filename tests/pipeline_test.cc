// End-to-end integration tests: dataset -> model -> context -> relative
// keys -> quality metrics, mirroring the experimental pipeline of Section 7.

#include <gtest/gtest.h>

#include "common/logging.h"

#include "core/cce.h"
#include "core/conformity.h"
#include "core/metrics.h"
#include "core/srk.h"
#include "data/generators.h"
#include "explain/anchor.h"
#include "explain/xreason.h"
#include "ml/gbdt.h"

namespace cce {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::LoanOptions options;
    options.seed = 11;
    loan_ = std::make_unique<Dataset>(data::GenerateLoan(options));
    Rng rng(1);
    auto [train, test] = loan_->Split(0.7, &rng);
    train_ = std::make_unique<Dataset>(std::move(train));
    inference_ = std::make_unique<Dataset>(std::move(test));
    ml::Gbdt::Options gbdt_options;
    gbdt_options.num_trees = 40;
    auto model = ml::Gbdt::Train(*train_, gbdt_options);
    CCE_CHECK_OK(model.status());
    model_ = std::move(model).value();
    context_ = std::make_unique<Context>(model_->MakeContext(*inference_));
  }

  std::unique_ptr<Dataset> loan_, train_, inference_;
  std::unique_ptr<ml::Gbdt> model_;
  std::unique_ptr<Context> context_;
};

TEST_F(PipelineTest, ModelIsUsable) {
  EXPECT_GT(model_->Accuracy(*inference_), 0.75);
}

TEST_F(PipelineTest, RelativeKeysAreAlwaysConformantOverContext) {
  // Fig. 3a's headline property: 100% conformity of CCE on the inference
  // context.
  CceBatch cce(*context_, 1.0);
  std::vector<ExplainedInstance> explained;
  for (size_t row = 0; row < 50; ++row) {
    auto result = cce.Explain(row);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->satisfied);
    explained.push_back(
        {context_->instance(row), context_->label(row), result->key});
  }
  EXPECT_DOUBLE_EQ(Conformity(*context_, explained), 100.0);
  EXPECT_DOUBLE_EQ(AveragePrecision(*context_, explained), 1.0);
}

TEST_F(PipelineTest, RelativeKeysMoreSuccinctThanXreason) {
  // Fig. 3d: formal explanations over the whole feature space are larger
  // than keys relative to the inference context.
  explain::Xreason xreason(model_.get(), loan_->schema_ptr(), {});
  CceBatch cce(*context_, 1.0);
  double cce_total = 0.0;
  double xreason_total = 0.0;
  const size_t count = 12;
  for (size_t row = 0; row < count; ++row) {
    auto key = cce.Explain(row);
    ASSERT_TRUE(key.ok());
    auto formal = xreason.ExplainFeatures(context_->instance(row), 0);
    ASSERT_TRUE(formal.ok());
    cce_total += static_cast<double>(key->key.size());
    xreason_total += static_cast<double>(formal->size());
  }
  EXPECT_LT(cce_total, xreason_total);
}

TEST_F(PipelineTest, RelativeKeysBeatXreasonRecall) {
  // Fig. 3c: smaller conformant keys cover more instances.
  explain::Xreason xreason(model_.get(), loan_->schema_ptr(), {});
  CceBatch cce(*context_, 1.0);
  double cce_recall = 0.0;
  double xreason_recall = 0.0;
  const size_t count = 10;
  for (size_t row = 0; row < count; ++row) {
    auto key = cce.Explain(row);
    auto formal = xreason.ExplainFeatures(context_->instance(row), 0);
    ASSERT_TRUE(key.ok());
    ASSERT_TRUE(formal.ok());
    cce_recall += Recall(*context_, context_->instance(row),
                         context_->label(row), key->key, *formal);
    xreason_recall += Recall(*context_, context_->instance(row),
                             context_->label(row), *formal, key->key);
  }
  EXPECT_GE(cce_recall, xreason_recall);
}

TEST_F(PipelineTest, AnchorCanViolateConformityWhereCceCannot) {
  // The Example 1 phenomenon. Anchor has no conformity guarantee; across
  // enough instances its conformity on the context stays at or below
  // CCE's perfect 100%, and precision is never higher.
  explain::Anchor anchor(model_.get(), train_.get(), {});
  CceBatch cce(*context_, 1.0);
  std::vector<ExplainedInstance> anchor_explained;
  std::vector<ExplainedInstance> cce_explained;
  for (size_t row = 0; row < 25; ++row) {
    auto key = cce.Explain(row);
    ASSERT_TRUE(key.ok());
    cce_explained.push_back(
        {context_->instance(row), context_->label(row), key->key});
    auto anchor_key = anchor.ExplainFeatures(
        context_->instance(row), std::max<size_t>(key->key.size(), 1));
    ASSERT_TRUE(anchor_key.ok());
    anchor_explained.push_back(
        {context_->instance(row), context_->label(row), *anchor_key});
  }
  QualityReport cce_quality = EvaluateQuality(*context_, cce_explained);
  QualityReport anchor_quality =
      EvaluateQuality(*context_, anchor_explained);
  EXPECT_DOUBLE_EQ(cce_quality.conformity, 100.0);
  EXPECT_LE(anchor_quality.conformity, 100.0);
  EXPECT_LE(anchor_quality.precision, cce_quality.precision + 1e-9);
}

TEST_F(PipelineTest, AlphaTradeoffShrinksKeysEndToEnd) {
  // Fig. 3f on the real pipeline.
  double strict_total = 0.0;
  double relaxed_total = 0.0;
  for (size_t row = 0; row < 30; ++row) {
    Srk::Options strict;
    strict.alpha = 1.0;
    Srk::Options relaxed;
    relaxed.alpha = 0.9;
    auto a = Srk::Explain(*context_, row, strict);
    auto b = Srk::Explain(*context_, row, relaxed);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    strict_total += static_cast<double>(a->key.size());
    relaxed_total += static_cast<double>(b->key.size());
  }
  EXPECT_LE(relaxed_total, strict_total);
}

TEST_F(PipelineTest, OnlineMonitoringConvergesToBatchQuality) {
  CceOnline::Options options;
  options.seed = 8;
  auto online = CceOnline::Create(loan_->schema_ptr(),
                                  context_->instance(0),
                                  context_->label(0), options);
  ASSERT_TRUE(online.ok());
  for (size_t row = 1; row < context_->size(); ++row) {
    (*online)->Observe(context_->instance(row), context_->label(row));
  }
  // The online key must be conformant over the streamed context.
  std::vector<size_t> rows;
  for (size_t r = 1; r < context_->size(); ++r) rows.push_back(r);
  Dataset streamed = context_->Subset(rows);
  ConformityChecker checker(&streamed);
  EXPECT_TRUE(checker.IsAlphaConformant(context_->instance(0),
                                        context_->label(0),
                                        (*online)->key(), 1.0));
}

TEST_F(PipelineTest, ClientNeverQueriesModel) {
  // Structural property (paper Section 6): batch explanation works from
  // the recorded context alone. We delete the model before explaining.
  Context context_copy = *context_;
  model_.reset();
  CceBatch cce(std::move(context_copy), 1.0);
  auto result = cce.Explain(0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
}

}  // namespace
}  // namespace cce
