// docs/protocol.md cannot drift: this test parses the spec's tables and
// compares them, both directions, against the C++ protocol definitions in
// net/protocol.h — the same contract metrics_doc_test enforces for
// docs/metrics.md. Add a message type, status code, or header field
// without a documented row (or document one that does not exist) and
// this fails with the exact name.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/protocol.h"

#ifndef CCE_SOURCE_DIR
#error "tests must be compiled with CCE_SOURCE_DIR"
#endif

namespace cce::net {
namespace {

std::string DocPath() {
  return std::string(CCE_SOURCE_DIR) + "/docs/protocol.md";
}

std::string ReadDoc() {
  std::ifstream in(DocPath());
  EXPECT_TRUE(in.good()) << "cannot open " << DocPath();
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Lines of the section whose "## " heading starts with `title`, up to
/// the next "## " heading.
std::vector<std::string> SectionLines(const std::string& doc,
                                      const std::string& title) {
  std::istringstream in(doc);
  std::vector<std::string> lines;
  std::string line;
  bool inside = false;
  while (std::getline(in, line)) {
    if (line.rfind("## ", 0) == 0) {
      inside = line.compare(3, title.size(), title) == 0;
      continue;
    }
    if (inside) lines.push_back(line);
  }
  EXPECT_FALSE(lines.empty()) << "section \"## " << title
                              << "\" missing from docs/protocol.md";
  return lines;
}

/// Splits a markdown table row "| a | b | c |" into trimmed cells.
std::vector<std::string> Cells(const std::string& line) {
  std::vector<std::string> cells;
  size_t pos = line.find('|');
  while (pos != std::string::npos) {
    const size_t next = line.find('|', pos + 1);
    if (next == std::string::npos) break;
    std::string cell = line.substr(pos + 1, next - pos - 1);
    const size_t first = cell.find_first_not_of(" \t");
    const size_t last = cell.find_last_not_of(" \t");
    cells.push_back(first == std::string::npos
                        ? std::string()
                        : cell.substr(first, last - first + 1));
    pos = next;
  }
  return cells;
}

bool IsBacktickedName(const std::string& cell, std::string* name) {
  if (cell.size() < 3 || cell.front() != '`' || cell.back() != '`') {
    return false;
  }
  *name = cell.substr(1, cell.size() - 2);
  return true;
}

/// Rows of a section's table keyed by a leading integer code column:
/// "| 3 | `EXPLAIN_REQUEST` | ... |" -> {3, "EXPLAIN_REQUEST"}.
std::map<int, std::string> CodeTable(const std::string& doc,
                                     const std::string& title) {
  std::map<int, std::string> rows;
  for (const std::string& line : SectionLines(doc, title)) {
    const std::vector<std::string> cells = Cells(line);
    if (cells.size() < 2 || cells[0].empty() ||
        !std::isdigit(static_cast<unsigned char>(cells[0][0]))) {
      continue;
    }
    std::string name;
    const bool named = IsBacktickedName(cells[1], &name);
    EXPECT_TRUE(named) << "row for code " << cells[0] << " in \"" << title
                       << "\" lacks a backticked name: " << line;
    if (!named) continue;
    const int code = std::stoi(cells[0]);
    EXPECT_EQ(rows.count(code), 0u)
        << "duplicate code " << code << " in \"" << title << "\"";
    rows[code] = name;
  }
  EXPECT_FALSE(rows.empty()) << "no code rows parsed from \"" << title
                             << "\"";
  return rows;
}

TEST(ProtocolDocTest, VersionAndMagicSentencesMatchConstants) {
  const std::string doc = ReadDoc();
  char version_sentence[64];
  std::snprintf(version_sentence, sizeof(version_sentence),
                "The protocol version is `%u`",
                static_cast<unsigned>(kProtocolVersion));
  EXPECT_NE(doc.find(version_sentence), std::string::npos)
      << "docs/protocol.md must state: " << version_sentence;
  char magic_text[32];
  std::snprintf(magic_text, sizeof(magic_text), "`0x%04X`",
                static_cast<unsigned>(kMagic));
  EXPECT_NE(doc.find(magic_text), std::string::npos)
      << "docs/protocol.md must state the frame magic " << magic_text;
}

TEST(ProtocolDocTest, FrameHeaderTableMatchesFieldTable) {
  const std::string doc = ReadDoc();
  struct DocField {
    std::string name;
    size_t offset;
    size_t bytes;
  };
  std::vector<DocField> documented;
  for (const std::string& line : SectionLines(doc, "Frame header")) {
    const std::vector<std::string> cells = Cells(line);
    std::string name;
    if (cells.size() < 3 || !IsBacktickedName(cells[0], &name)) continue;
    documented.push_back({name, std::stoull(cells[1]),
                          std::stoull(cells[2])});
  }
  const std::vector<FrameField>& actual = FrameHeaderFields();
  ASSERT_EQ(documented.size(), actual.size())
      << "docs/protocol.md documents " << documented.size()
      << " header fields; net/protocol.h defines " << actual.size();
  size_t total = 0;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(documented[i].name, actual[i].name)
        << "header field order/name drift at row " << i;
    EXPECT_EQ(documented[i].offset, actual[i].offset)
        << "offset drift for `" << actual[i].name << "`";
    EXPECT_EQ(documented[i].bytes, actual[i].bytes)
        << "size drift for `" << actual[i].name << "`";
    total += documented[i].bytes;
  }
  EXPECT_EQ(total, kFrameHeaderBytes);
}

TEST(ProtocolDocTest, MessageTypeTableMatchesEnumBothWays) {
  const std::map<int, std::string> documented =
      CodeTable(ReadDoc(), "Message types");
  // Every live message type must be documented under its spec name.
  for (int code = 0; code < 256; ++code) {
    const char* name = MessageTypeName(static_cast<MessageType>(code));
    if (name == nullptr) continue;
    const auto it = documented.find(code);
    ASSERT_NE(it, documented.end())
        << "message type " << name << " (code " << code
        << ") is missing from docs/protocol.md";
    EXPECT_EQ(it->second, name)
        << "docs/protocol.md names code " << code << " `" << it->second
        << "`; net/protocol.h names it `" << name << "`";
  }
  // And nothing documented may be dead.
  for (const auto& [code, name] : documented) {
    ASSERT_GE(code, 0);
    ASSERT_LT(code, 256);
    const char* live = MessageTypeName(static_cast<MessageType>(code));
    ASSERT_NE(live, nullptr)
        << "docs/protocol.md documents code " << code << " (`" << name
        << "`) which net/protocol.h does not define";
  }
}

TEST(ProtocolDocTest, StatusCodeTableMatchesEnumBothWays) {
  const std::map<int, std::string> documented =
      CodeTable(ReadDoc(), "Status codes");
  for (int code = 0; code < kNumWireStatuses; ++code) {
    const char* name = WireStatusName(static_cast<WireStatus>(code));
    ASSERT_NE(name, nullptr);
    const auto it = documented.find(code);
    ASSERT_NE(it, documented.end())
        << "wire status " << name << " (code " << code
        << ") is missing from docs/protocol.md";
    EXPECT_EQ(it->second, name)
        << "docs/protocol.md names status " << code << " `" << it->second
        << "`; net/protocol.h names it `" << name << "`";
    // The wire byte is pinned to the internal StatusCode value — a
    // documented row is therefore also a claim about common/status.h.
    EXPECT_EQ(static_cast<int>(WireStatusFromCode(
                  static_cast<StatusCode>(code))),
              code);
  }
  EXPECT_EQ(documented.size(), static_cast<size_t>(kNumWireStatuses))
      << "docs/protocol.md documents a status code that does not exist";
}

TEST(ProtocolDocTest, RequestResponsePairingIsDocumentedConsistently) {
  // The "k + 4" sentence in the spec is a live claim about
  // ResponseTypeFor; pin it so a renumbering cannot silently break it.
  for (int code = 0; code < 256; ++code) {
    const MessageType type = static_cast<MessageType>(code);
    if (!IsRequestType(type)) continue;
    EXPECT_EQ(static_cast<int>(ResponseTypeFor(type)), code + 4)
        << MessageTypeName(type);
  }
}

}  // namespace
}  // namespace cce::net
