// Concurrent Predict/Record/Explain/Health stress over one proxy: the
// internal mutex must keep the window, health counters and resilience
// machinery consistent. Run under scripts/check.sh (ASan/UBSan) and
// SANITIZER=thread scripts/check.sh -R ProxyConcurrency for the full gate.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "ml/gbdt.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

class ProxyConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = std::make_unique<Dataset>(
        cce::testing::RandomContext(600, 5, 3, 42, /*noise=*/0.0));
    ml::Gbdt::Options options;
    options.num_trees = 10;
    auto model = ml::Gbdt::Train(*data_, options);
    CCE_CHECK_OK(model.status());
    model_ = std::move(model).value();
  }

  void Stress(ExplainableProxy* proxy, bool with_predict) {
    constexpr int kWriters = 3;
    constexpr int kReaders = 3;
    constexpr int kOpsPerThread = 150;
    // Seed the window so Explain never races an empty context check into
    // a FailedPrecondition (that path is valid, just uninteresting here).
    for (size_t row = 0; row < 32; ++row) {
      CCE_CHECK_OK(proxy->Record(data_->instance(row), data_->label(row)));
    }

    std::atomic<uint64_t> write_ok{32};
    std::atomic<uint64_t> explain_ok{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        for (int i = 0; i < kOpsPerThread; ++i) {
          const size_t row = (w * kOpsPerThread + i) % data_->size();
          if (with_predict && i % 2 == 0) {
            if (proxy->Predict(data_->instance(row)).ok()) {
              write_ok.fetch_add(1);
            }
          } else {
            if (proxy->Record(data_->instance(row), data_->label(row))
                    .ok()) {
              write_ok.fetch_add(1);
            }
          }
        }
      });
    }
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&, r] {
        for (int i = 0; i < kOpsPerThread; ++i) {
          const size_t row = (r * 7 + i) % 32;
          switch (i % 3) {
            case 0: {
              auto key = proxy->Explain(data_->instance(row),
                                        data_->label(row));
              if (key.ok()) explain_ok.fetch_add(1);
              break;
            }
            case 1: {
              Context snapshot = proxy->ContextSnapshot();
              EXPECT_LE(snapshot.size(),
                        static_cast<size_t>(32 + kWriters * kOpsPerThread));
              break;
            }
            default: {
              HealthSnapshot health = proxy->Health();
              EXPECT_LE(health.predict_failures, health.predicts);
              break;
            }
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();

    EXPECT_EQ(proxy->recorded(), write_ok.load())
        << "every successful write lands exactly once";
    EXPECT_GT(explain_ok.load(), 0u);
    HealthSnapshot health = proxy->Health();
    if (with_predict) EXPECT_GT(health.predicts, 0u);
  }

  std::unique_ptr<Dataset> data_;
  std::unique_ptr<ml::Gbdt> model_;
};

TEST_F(ProxyConcurrencyTest, ConcurrentRecordExplainHealth) {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
  ASSERT_TRUE(proxy.ok());
  Stress(proxy->get(), /*with_predict=*/false);
}

TEST_F(ProxyConcurrencyTest, ConcurrentPredictRecordExplain) {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.context_capacity = 128;  // exercise eviction under contention
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), model_.get(), options);
  ASSERT_TRUE(proxy.ok());
  Stress(proxy->get(), /*with_predict=*/true);
}

TEST_F(ProxyConcurrencyTest, ConcurrentTrafficWithDurability) {
  const std::string dir =
      ::testing::TempDir() + "/cce_durability_concurrent";
  std::remove((dir + "/context.wal").c_str());
  std::remove((dir + "/context.snapshot").c_str());
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.durability.dir = dir;
  // Batch fsyncs so the stress stays fast; compaction runs under load.
  options.durability.sync_every = 64;
  options.durability.compact_threshold_bytes = 4096;
  size_t total = 0;
  {
    auto proxy =
        ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
    ASSERT_TRUE(proxy.ok()) << proxy.status().ToString();
    Stress(proxy->get(), /*with_predict=*/false);
    total = (*proxy)->recorded();
    EXPECT_GE((*proxy)->Health().wal_compactions, 1u);
  }
  // Everything the stress recorded is recovered on restart.
  auto revived =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->recorded(), total);
}

}  // namespace
}  // namespace cce::serving
