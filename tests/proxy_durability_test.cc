#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "ml/gbdt.h"
#include "serving/context_shard.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ProxyDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = std::make_unique<Dataset>(
        cce::testing::RandomContext(400, 5, 3, 99, /*noise=*/0.0));
  }

  /// A fresh durability directory, unique per test.
  std::string MakeDir(const std::string& tag) {
    const std::string dir = ::testing::TempDir() + "/cce_durability_" + tag;
    // Clear leftovers from a previous run (including shard files and
    // orphaned temp files).
    std::vector<std::string> names;
    if (io::Env::Default()->ListDir(dir, &names).ok()) {
      for (const std::string& name : names) {
        (void)io::Env::Default()->RemoveFile(dir + "/" + name);
      }
    }
    return dir;
  }

  ExplainableProxy::Options DurableOptions(const std::string& dir,
                                           size_t sync_every = 1) {
    ExplainableProxy::Options options;
    options.monitor_drift = false;
    options.durability.dir = dir;
    options.durability.sync_every = sync_every;
    return options;
  }

  std::unique_ptr<Dataset> data_;
};

TEST_F(ProxyDurabilityTest, KillRecoverRoundTripPreservesTheExplanation) {
  const std::string dir = MakeDir("kill_recover");
  const size_t kRecords = 60;
  const Instance& x0 = data_->instance(0);
  const Label y0 = data_->label(0);
  KeyResult key_before{};

  {
    auto proxy = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
    ASSERT_TRUE(proxy.ok()) << proxy.status().ToString();
    for (size_t row = 0; row < kRecords; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
    auto key = (*proxy)->Explain(x0, y0);
    ASSERT_TRUE(key.ok());
    key_before = *key;
    // The proxy is dropped here with no clean-shutdown call: neither the
    // proxy nor the WAL flushes anything in a destructor, so this is
    // equivalent to a crash as far as the durability machinery goes. With
    // sync_every=1 every record was fsync-durable before Record returned.
  }

  auto revived = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->recorded(), kRecords);
  HealthSnapshot health = (*revived)->Health();
  EXPECT_EQ(health.wal_records_recovered, kRecords);
  EXPECT_EQ(health.wal_records_dropped, 0u);
  EXPECT_GE(health.wal_compactions, 1u)
      << "recovery folds the replayed log into a fresh snapshot";

  Context snapshot = (*revived)->ContextSnapshot();
  ASSERT_EQ(snapshot.size(), kRecords);
  for (size_t row = 0; row < kRecords; ++row) {
    EXPECT_EQ(snapshot.instance(row), data_->instance(row));
    EXPECT_EQ(snapshot.label(row), data_->label(row));
  }

  auto key_after = (*revived)->Explain(x0, y0);
  ASSERT_TRUE(key_after.ok());
  EXPECT_EQ(key_after->key, key_before.key)
      << "the recovered context must yield the same relative key";
  EXPECT_EQ(key_after->achieved_alpha, key_before.achieved_alpha);
}

TEST_F(ProxyDurabilityTest, ModelServedTrafficSurvivesRestart) {
  const std::string dir = MakeDir("model_restart");
  ml::Gbdt::Options gbdt_options;
  gbdt_options.num_trees = 20;
  auto model = ml::Gbdt::Train(*data_, gbdt_options);
  CCE_CHECK_OK(model.status());

  {
    auto proxy = ExplainableProxy::Create(data_->schema_ptr(), model->get(),
                                          DurableOptions(dir));
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 40; ++row) {
      ASSERT_TRUE((*proxy)->Predict(data_->instance(row)).ok());
    }
  }

  // Day 2: the model is gone; the recovered context still explains.
  auto revived = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->recorded(), 40u);
  const Instance& x0 = data_->instance(0);
  const Label y0 = (*model)->Predict(x0);
  auto key = (*revived)->Explain(x0, y0);
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(key->satisfied);
}

TEST_F(ProxyDurabilityTest, CorruptLogTailIsSalvagedNotFatal) {
  const std::string dir = MakeDir("corrupt_tail");
  {
    auto proxy = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 20; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
  }
  // A torn final write: garbage lands on the log tail.
  const std::string wal = dir + "/context.wal";
  WriteFileBytes(wal, ReadFileBytes(wal) + "\x07garbage-torn-tail");

  auto revived = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->recorded(), 20u);
  HealthSnapshot health = (*revived)->Health();
  EXPECT_EQ(health.wal_records_recovered, 20u);
  EXPECT_GE(health.wal_records_dropped, 1u);
}

TEST_F(ProxyDurabilityTest, MidLogBitFlipSalvagesThePrefix) {
  const std::string dir = MakeDir("bit_flip");
  {
    auto proxy = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 20; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
  }
  const std::string wal = dir + "/context.wal";
  std::string bytes = ReadFileBytes(wal);
  // 24-byte header, then frames of 8 + 16 + 4*5 bytes (5 features).
  const size_t frame_size = (bytes.size() - 24) / 20;
  const size_t flip_at = 24 + 10 * frame_size + frame_size / 2;
  ASSERT_LT(flip_at, bytes.size());
  bytes[flip_at] = static_cast<char>(bytes[flip_at] ^ 0x10);
  WriteFileBytes(wal, bytes);

  auto revived = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->recorded(), 10u)
      << "records before the flipped frame survive, the rest are dropped";
  Context snapshot = (*revived)->ContextSnapshot();
  ASSERT_EQ(snapshot.size(), 10u);
  for (size_t row = 0; row < 10; ++row) {
    EXPECT_EQ(snapshot.instance(row), data_->instance(row));
  }
  EXPECT_GE((*revived)->Health().wal_records_dropped, 1u);
}

TEST_F(ProxyDurabilityTest, CompactionBoundsTheLogAndPreservesTotals) {
  const std::string dir = MakeDir("compaction");
  ExplainableProxy::Options options = DurableOptions(dir);
  options.context_capacity = 16;
  options.durability.compact_threshold_bytes = 512;
  {
    auto proxy =
        ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 100; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
    HealthSnapshot health = (*proxy)->Health();
    EXPECT_GE(health.wal_compactions, 2u);
    EXPECT_LE((*proxy)->Health().wal_records_logged, 100u);
  }

  auto revived =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->recorded(), 100u)
      << "the total survives even though only the window is retained";
  Context snapshot = (*revived)->ContextSnapshot();
  ASSERT_EQ(snapshot.size(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(snapshot.instance(i), data_->instance(100 - 16 + i));
  }
}

TEST_F(ProxyDurabilityTest, RecordRejectsLabelsOutsideTheDictionary) {
  const std::string dir = MakeDir("bad_label");
  auto proxy = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                        DurableOptions(dir));
  ASSERT_TRUE(proxy.ok());
  // The schema has 2 labels; 7 would poison the context and the log.
  EXPECT_EQ((*proxy)->Record(data_->instance(0), 7).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*proxy)->recorded(), 0u);
  EXPECT_EQ((*proxy)->Health().wal_records_logged, 0u);
  CCE_CHECK_OK((*proxy)->Record(data_->instance(0), 1));
  EXPECT_EQ((*proxy)->recorded(), 1u);
}

TEST_F(ProxyDurabilityTest, ForeignSchemaDirectoryIsRejected) {
  const std::string dir = MakeDir("schema_clash");
  {
    auto proxy = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 8; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
  }
  // Force a snapshot into the directory so the schema check sees it.
  {
    auto again = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
    ASSERT_TRUE(again.ok());
    ASSERT_GE((*again)->Health().wal_compactions, 1u);
  }
  Dataset other =
      cce::testing::RandomContext(10, 3, 2, 7);  // different feature space
  auto clash = ExplainableProxy::Create(other.schema_ptr(), nullptr,
                                        DurableOptions(dir));
  EXPECT_FALSE(clash.ok());
  EXPECT_EQ(clash.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProxyDurabilityTest, DisabledDurabilityTouchesNoFiles) {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
  ASSERT_TRUE(proxy.ok());
  CCE_CHECK_OK((*proxy)->Record(data_->instance(0), data_->label(0)));
  HealthSnapshot health = (*proxy)->Health();
  EXPECT_EQ(health.wal_records_logged, 0u);
  EXPECT_EQ(health.wal_fsyncs, 0u);
  EXPECT_EQ(health.wal_compactions, 0u);
}

TEST_F(ProxyDurabilityTest, StartupSweepRemovesOrphanTmpFiles) {
  const std::string dir = MakeDir("tmp_sweep");
  {
    auto proxy = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
    ASSERT_TRUE(proxy.ok());
    CCE_CHECK_OK((*proxy)->Record(data_->instance(0), data_->label(0)));
  }
  // A crashed compaction leaves temp files between create and rename.
  WriteFileBytes(dir + "/context.snapshot.tmp.999.1", "half a snapshot");
  WriteFileBytes(dir + "/context.snapshot.tmp.999.2", "");

  auto revived = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->Health().tmp_orphans_removed, 2u);
  EXPECT_FALSE(
      io::Env::Default()->FileExists(dir + "/context.snapshot.tmp.999.1"));
  EXPECT_FALSE(
      io::Env::Default()->FileExists(dir + "/context.snapshot.tmp.999.2"));
  EXPECT_EQ((*revived)->recorded(), 1u)
      << "the sweep must not touch live generation files";
}

TEST_F(ProxyDurabilityTest, QuarantinedShardDegradesServingNotCreate) {
  const std::string dir = MakeDir("quarantine");
  const size_t kShards = 4;
  ExplainableProxy::Options options = DurableOptions(dir);
  options.shards = kShards;
  {
    auto proxy =
        ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 40; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
  }
  // Corrupt shard 1's snapshot header beyond salvage.
  WriteFileBytes(dir + "/context.1.snapshot", "CCESNAP 1\ncovers zaphod\n");

  auto revived =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
  ASSERT_TRUE(revived.ok())
      << "shard damage must degrade serving, not fail Create: "
      << revived.status().ToString();
  ExplainableProxy& proxy = **revived;

  HealthSnapshot health = proxy.Health();
  EXPECT_EQ(health.shards_quarantined, 1u);
  EXPECT_TRUE(health.degraded_context);
  ASSERT_EQ(health.shards.size(), kShards);
  EXPECT_EQ(health.shards[1].state, ContextShard::State::kQuarantined);
  EXPECT_FALSE(health.shards[1].quarantine_reason.empty());

  // Traffic routed to the quarantined shard is refused with kUnavailable;
  // every other shard keeps accepting.
  size_t refused = 0;
  size_t accepted = 0;
  for (size_t row = 40; row < 120; ++row) {
    Status recorded = proxy.Record(data_->instance(row), data_->label(row));
    const size_t shard =
        ContextShard::ShardFor(data_->instance(row), kShards);
    if (shard == 1) {
      EXPECT_EQ(recorded.code(), StatusCode::kUnavailable)
          << recorded.ToString();
      ++refused;
    } else {
      EXPECT_TRUE(recorded.ok()) << recorded.ToString();
      ++accepted;
    }
  }
  EXPECT_GT(refused, 0u);
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ(proxy.Health().quarantine_drops, refused);

  // Explanations still come back, flagged as degraded, and are not cached.
  auto key = proxy.Explain(data_->instance(0), data_->label(0));
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_TRUE(key->degraded)
      << "a key computed over a partial context must say so";
  EXPECT_FALSE(key->cached);

  // RepairShard re-admits the shard with a fresh, empty generation.
  CCE_CHECK_OK(proxy.RepairShard(1));
  health = proxy.Health();
  EXPECT_EQ(health.shards_quarantined, 0u);
  EXPECT_FALSE(health.degraded_context);
  EXPECT_EQ(health.shards[1].state, ContextShard::State::kActive);
  EXPECT_EQ(health.shard_repairs, 1u);
  for (size_t row = 40; row < 120; ++row) {
    if (ContextShard::ShardFor(data_->instance(row), kShards) == 1) {
      CCE_CHECK_OK(proxy.Record(data_->instance(row), data_->label(row)));
    }
  }
  auto healed = proxy.Explain(data_->instance(0), data_->label(0));
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->degraded);

  // Out-of-range repair is an error, not a crash.
  EXPECT_EQ(proxy.RepairShard(kShards).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ProxyDurabilityTest, MultiShardRestartRoundTrip) {
  const std::string dir = MakeDir("multi_shard");
  ExplainableProxy::Options options = DurableOptions(dir);
  options.shards = 4;
  const size_t kRecords = 60;
  KeyResult key_before{};
  {
    auto proxy =
        ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < kRecords; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
    auto key = (*proxy)->Explain(data_->instance(0), data_->label(0));
    ASSERT_TRUE(key.ok());
    key_before = *key;
  }

  auto revived =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->recorded(), kRecords);
  Context snapshot = (*revived)->ContextSnapshot();
  ASSERT_EQ(snapshot.size(), kRecords);
  for (size_t row = 0; row < kRecords; ++row) {
    EXPECT_EQ(snapshot.instance(row), data_->instance(row))
        << "merged-by-sequence recovery must reproduce arrival order";
    EXPECT_EQ(snapshot.label(row), data_->label(row));
  }
  auto key_after = (*revived)->Explain(data_->instance(0), data_->label(0));
  ASSERT_TRUE(key_after.ok());
  EXPECT_EQ(key_after->key, key_before.key);
  EXPECT_EQ(key_after->achieved_alpha, key_before.achieved_alpha);
}

TEST_F(ProxyDurabilityTest, ShrinkingShardCountAdoptsOrphanShardFiles) {
  const std::string dir = MakeDir("shard_shrink");
  const size_t kRecords = 40;
  {
    ExplainableProxy::Options options = DurableOptions(dir);
    options.shards = 4;
    auto proxy =
        ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < kRecords; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
  }

  ExplainableProxy::Options narrow = DurableOptions(dir);
  narrow.shards = 2;
  auto revived =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, narrow);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  Context snapshot = (*revived)->ContextSnapshot();
  EXPECT_EQ(snapshot.size(), kRecords)
      << "rows from shards 2 and 3 must be re-logged through live shards";
  // Every original row is present exactly once (order may differ: adopted
  // rows are appended after the live shards' recovered windows).
  for (size_t row = 0; row < kRecords; ++row) {
    size_t copies = 0;
    for (size_t got = 0; got < snapshot.size(); ++got) {
      if (snapshot.instance(got) == data_->instance(row) &&
          snapshot.label(got) == data_->label(row)) {
        ++copies;
      }
    }
    EXPECT_GE(copies, 1u) << "row " << row << " lost during adoption";
  }
  EXPECT_FALSE(io::Env::Default()->FileExists(dir + "/context.2.wal"))
      << "adopted shard files are removed";
  EXPECT_FALSE(io::Env::Default()->FileExists(dir + "/context.3.wal"));
  EXPECT_FALSE(io::Env::Default()->FileExists(dir + "/context.2.snapshot"));
  EXPECT_FALSE(io::Env::Default()->FileExists(dir + "/context.3.snapshot"));

  // The adopted rows are durable: a further restart sees all of them.
  auto again =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, narrow);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->ContextSnapshot().size(), kRecords);
}

TEST_F(ProxyDurabilityTest, FailedCompactionKeepsPreviousGenerationReadable) {
  const std::string dir = MakeDir("failed_compaction");
  io::FaultInjectingEnv fault(io::Env::Default());
  ExplainableProxy::Options options = DurableOptions(dir);
  options.durability.compact_threshold_bytes = 256;  // compact eagerly
  options.durability.env = &fault;
  const size_t kRecords = 30;
  {
    auto proxy =
        ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
    ASSERT_TRUE(proxy.ok()) << proxy.status().ToString();
    // Only the snapshot save renames; the WAL appends in place. Arming a
    // one-shot rename EIO therefore fails exactly the first compaction
    // while every Record keeps succeeding against the previous
    // generation's WAL.
    fault.FailNextRename();
    for (size_t row = 0; row < kRecords; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
    HealthSnapshot health = (*proxy)->Health();
    EXPECT_GE(health.compaction_failures, 1u)
        << "the injected rename EIO must have failed one snapshot save";
    EXPECT_GE(health.wal_compactions, 1u)
        << "later compactions succeed once the fault clears";
    EXPECT_EQ(health.shards_quarantined, 0u)
        << "a failed compaction is not fatal to the shard";
    EXPECT_EQ(health.shards_read_only, 0u);
  }

  auto revived =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->recorded(), kRecords)
      << "the previous snapshot+WAL generation stayed fully readable";
}

TEST_F(ProxyDurabilityTest, SyncNeverStillRecoversWrittenRecords) {
  // sync_every=0 never fsyncs, but the write(2)s are visible to a process
  // restart (only an OS crash could lose them) — the weakest, fastest rung.
  const std::string dir = MakeDir("sync_never");
  {
    auto proxy = ExplainableProxy::Create(
        data_->schema_ptr(), nullptr, DurableOptions(dir, /*sync_every=*/0));
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 12; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
    // Exactly one fsync: the generation header written at open. No
    // per-record syncing happened.
    EXPECT_EQ((*proxy)->Health().wal_fsyncs, 1u);
  }
  auto revived = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir, 0));
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->recorded(), 12u);
}

}  // namespace
}  // namespace cce::serving
