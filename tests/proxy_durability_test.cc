#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "ml/gbdt.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ProxyDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = std::make_unique<Dataset>(
        cce::testing::RandomContext(400, 5, 3, 99, /*noise=*/0.0));
  }

  /// A fresh durability directory, unique per test.
  std::string MakeDir(const std::string& tag) {
    const std::string dir = ::testing::TempDir() + "/cce_durability_" + tag;
    // Clear leftovers from a previous run.
    std::remove((dir + "/context.wal").c_str());
    std::remove((dir + "/context.snapshot").c_str());
    return dir;
  }

  ExplainableProxy::Options DurableOptions(const std::string& dir,
                                           size_t sync_every = 1) {
    ExplainableProxy::Options options;
    options.monitor_drift = false;
    options.durability.dir = dir;
    options.durability.sync_every = sync_every;
    return options;
  }

  std::unique_ptr<Dataset> data_;
};

TEST_F(ProxyDurabilityTest, KillRecoverRoundTripPreservesTheExplanation) {
  const std::string dir = MakeDir("kill_recover");
  const size_t kRecords = 60;
  const Instance& x0 = data_->instance(0);
  const Label y0 = data_->label(0);
  KeyResult key_before{};

  {
    auto proxy = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
    ASSERT_TRUE(proxy.ok()) << proxy.status().ToString();
    for (size_t row = 0; row < kRecords; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
    auto key = (*proxy)->Explain(x0, y0);
    ASSERT_TRUE(key.ok());
    key_before = *key;
    // The proxy is dropped here with no clean-shutdown call: neither the
    // proxy nor the WAL flushes anything in a destructor, so this is
    // equivalent to a crash as far as the durability machinery goes. With
    // sync_every=1 every record was fsync-durable before Record returned.
  }

  auto revived = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->recorded(), kRecords);
  HealthSnapshot health = (*revived)->Health();
  EXPECT_EQ(health.wal_records_recovered, kRecords);
  EXPECT_EQ(health.wal_records_dropped, 0u);
  EXPECT_GE(health.wal_compactions, 1u)
      << "recovery folds the replayed log into a fresh snapshot";

  Context snapshot = (*revived)->ContextSnapshot();
  ASSERT_EQ(snapshot.size(), kRecords);
  for (size_t row = 0; row < kRecords; ++row) {
    EXPECT_EQ(snapshot.instance(row), data_->instance(row));
    EXPECT_EQ(snapshot.label(row), data_->label(row));
  }

  auto key_after = (*revived)->Explain(x0, y0);
  ASSERT_TRUE(key_after.ok());
  EXPECT_EQ(key_after->key, key_before.key)
      << "the recovered context must yield the same relative key";
  EXPECT_EQ(key_after->achieved_alpha, key_before.achieved_alpha);
}

TEST_F(ProxyDurabilityTest, ModelServedTrafficSurvivesRestart) {
  const std::string dir = MakeDir("model_restart");
  ml::Gbdt::Options gbdt_options;
  gbdt_options.num_trees = 20;
  auto model = ml::Gbdt::Train(*data_, gbdt_options);
  CCE_CHECK_OK(model.status());

  {
    auto proxy = ExplainableProxy::Create(data_->schema_ptr(), model->get(),
                                          DurableOptions(dir));
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 40; ++row) {
      ASSERT_TRUE((*proxy)->Predict(data_->instance(row)).ok());
    }
  }

  // Day 2: the model is gone; the recovered context still explains.
  auto revived = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->recorded(), 40u);
  const Instance& x0 = data_->instance(0);
  const Label y0 = (*model)->Predict(x0);
  auto key = (*revived)->Explain(x0, y0);
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(key->satisfied);
}

TEST_F(ProxyDurabilityTest, CorruptLogTailIsSalvagedNotFatal) {
  const std::string dir = MakeDir("corrupt_tail");
  {
    auto proxy = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 20; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
  }
  // A torn final write: garbage lands on the log tail.
  const std::string wal = dir + "/context.wal";
  WriteFileBytes(wal, ReadFileBytes(wal) + "\x07garbage-torn-tail");

  auto revived = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->recorded(), 20u);
  HealthSnapshot health = (*revived)->Health();
  EXPECT_EQ(health.wal_records_recovered, 20u);
  EXPECT_GE(health.wal_records_dropped, 1u);
}

TEST_F(ProxyDurabilityTest, MidLogBitFlipSalvagesThePrefix) {
  const std::string dir = MakeDir("bit_flip");
  {
    auto proxy = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 20; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
  }
  const std::string wal = dir + "/context.wal";
  std::string bytes = ReadFileBytes(wal);
  // 24-byte header, then frames of 8 + 16 + 4*5 bytes (5 features).
  const size_t frame_size = (bytes.size() - 24) / 20;
  const size_t flip_at = 24 + 10 * frame_size + frame_size / 2;
  ASSERT_LT(flip_at, bytes.size());
  bytes[flip_at] = static_cast<char>(bytes[flip_at] ^ 0x10);
  WriteFileBytes(wal, bytes);

  auto revived = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->recorded(), 10u)
      << "records before the flipped frame survive, the rest are dropped";
  Context snapshot = (*revived)->ContextSnapshot();
  ASSERT_EQ(snapshot.size(), 10u);
  for (size_t row = 0; row < 10; ++row) {
    EXPECT_EQ(snapshot.instance(row), data_->instance(row));
  }
  EXPECT_GE((*revived)->Health().wal_records_dropped, 1u);
}

TEST_F(ProxyDurabilityTest, CompactionBoundsTheLogAndPreservesTotals) {
  const std::string dir = MakeDir("compaction");
  ExplainableProxy::Options options = DurableOptions(dir);
  options.context_capacity = 16;
  options.durability.compact_threshold_bytes = 512;
  {
    auto proxy =
        ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 100; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
    HealthSnapshot health = (*proxy)->Health();
    EXPECT_GE(health.wal_compactions, 2u);
    EXPECT_LE((*proxy)->Health().wal_records_logged, 100u);
  }

  auto revived =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->recorded(), 100u)
      << "the total survives even though only the window is retained";
  Context snapshot = (*revived)->ContextSnapshot();
  ASSERT_EQ(snapshot.size(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(snapshot.instance(i), data_->instance(100 - 16 + i));
  }
}

TEST_F(ProxyDurabilityTest, RecordRejectsLabelsOutsideTheDictionary) {
  const std::string dir = MakeDir("bad_label");
  auto proxy = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                        DurableOptions(dir));
  ASSERT_TRUE(proxy.ok());
  // The schema has 2 labels; 7 would poison the context and the log.
  EXPECT_EQ((*proxy)->Record(data_->instance(0), 7).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*proxy)->recorded(), 0u);
  EXPECT_EQ((*proxy)->Health().wal_records_logged, 0u);
  CCE_CHECK_OK((*proxy)->Record(data_->instance(0), 1));
  EXPECT_EQ((*proxy)->recorded(), 1u);
}

TEST_F(ProxyDurabilityTest, ForeignSchemaDirectoryIsRejected) {
  const std::string dir = MakeDir("schema_clash");
  {
    auto proxy = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 8; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
  }
  // Force a snapshot into the directory so the schema check sees it.
  {
    auto again = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir));
    ASSERT_TRUE(again.ok());
    ASSERT_GE((*again)->Health().wal_compactions, 1u);
  }
  Dataset other =
      cce::testing::RandomContext(10, 3, 2, 7);  // different feature space
  auto clash = ExplainableProxy::Create(other.schema_ptr(), nullptr,
                                        DurableOptions(dir));
  EXPECT_FALSE(clash.ok());
  EXPECT_EQ(clash.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProxyDurabilityTest, DisabledDurabilityTouchesNoFiles) {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, options);
  ASSERT_TRUE(proxy.ok());
  CCE_CHECK_OK((*proxy)->Record(data_->instance(0), data_->label(0)));
  HealthSnapshot health = (*proxy)->Health();
  EXPECT_EQ(health.wal_records_logged, 0u);
  EXPECT_EQ(health.wal_fsyncs, 0u);
  EXPECT_EQ(health.wal_compactions, 0u);
}

TEST_F(ProxyDurabilityTest, SyncNeverStillRecoversWrittenRecords) {
  // sync_every=0 never fsyncs, but the write(2)s are visible to a process
  // restart (only an OS crash could lose them) — the weakest, fastest rung.
  const std::string dir = MakeDir("sync_never");
  {
    auto proxy = ExplainableProxy::Create(
        data_->schema_ptr(), nullptr, DurableOptions(dir, /*sync_every=*/0));
    ASSERT_TRUE(proxy.ok());
    for (size_t row = 0; row < 12; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                    data_->label(row)));
    }
    // Exactly one fsync: the generation header written at open. No
    // per-record syncing happened.
    EXPECT_EQ((*proxy)->Health().wal_fsyncs, 1u);
  }
  auto revived = ExplainableProxy::Create(data_->schema_ptr(), nullptr,
                                          DurableOptions(dir, 0));
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->recorded(), 12u);
}

}  // namespace
}  // namespace cce::serving
