// Proxy-level observability (the DESIGN.md §9 integration): the
// cce_requests_total{op,outcome} matrix, request traces with phase timings
// and cause-of-outcome, Health() as a pure read of the registry, breaker
// transition counters, WAL fsync export, registry sharing across proxies,
// and Prometheus/JSON exposition of a live proxy.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "obs/exposition.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

using std::chrono::milliseconds;

class ParityModel : public Model {
 public:
  Label Predict(const Instance& x) const override {
    return static_cast<Label>(x.empty() ? 0 : x[0] % 2);
  }
};

/// Fails the first `failures` calls with a retryable status, then serves 0.
class FlakyEndpoint : public ModelEndpoint {
 public:
  explicit FlakyEndpoint(int failures) : failures_(failures) {}
  Result<Label> Predict(const Instance&) override {
    if (failures_-- > 0) return Status::Unavailable("injected");
    return Label{0};
  }

 private:
  int failures_;
};

ExplainableProxy::Options QuietOptions() {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.sleep = [](milliseconds) {};
  return options;
}

uint64_t RequestCount(const ExplainableProxy& proxy, const char* op,
                      const char* outcome) {
  return proxy.registry()
      .GetCounter("cce_requests_total", "", {{"op", op}, {"outcome", outcome}})
      ->Value();
}

TEST(ProxyObsTest, RequestMatrixAndTracesFollowTheLadder) {
  testing::Fig2Context fig2;
  ParityModel model;
  auto proxy = ExplainableProxy::Create(fig2.schema, &model, QuietOptions());
  ASSERT_TRUE(proxy.ok());
  const Instance& x0 = fig2.context.instance(0);
  // Seed the full Figure-2 context so both labels have witnesses.
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    ASSERT_TRUE((*proxy)
                    ->Record(fig2.context.instance(row),
                             fig2.context.label(row))
                    .ok());
  }
  EXPECT_EQ(RequestCount(**proxy, "record", "served_full"),
            fig2.context.size());

  ASSERT_TRUE((*proxy)->Predict(x0).ok());
  EXPECT_EQ(RequestCount(**proxy, "predict", "served_full"), 1u);

  ASSERT_TRUE((*proxy)->Explain(x0, fig2.denied).ok());
  EXPECT_EQ(RequestCount(**proxy, "explain", "served_full"), 1u);

  ASSERT_TRUE((*proxy)->Counterfactuals(x0, fig2.denied).ok());
  EXPECT_EQ(RequestCount(**proxy, "counterfactuals", "served_full"), 1u);

  // A malformed instance is an error outcome with the status as detail.
  Instance bad(1);
  EXPECT_FALSE((*proxy)->Explain(bad, fig2.denied).ok());
  EXPECT_EQ(RequestCount(**proxy, "explain", "error"), 1u);

  ASSERT_NE((*proxy)->traces(), nullptr);
  auto recent = (*proxy)->traces()->Recent();
  ASSERT_EQ(recent.size(), fig2.context.size() + 4);
  EXPECT_STREQ(recent[0].op, "explain");
  EXPECT_EQ(recent[0].outcome, obs::TraceOutcome::kError);
  EXPECT_FALSE(recent[0].detail.empty());
  // recent[3] is the successful Predict (then counterfactuals, explain,
  // error-explain above it); it timed its phases.
  EXPECT_STREQ(recent[3].op, "predict");
  EXPECT_EQ(recent[3].outcome, obs::TraceOutcome::kServedFull);
  ASSERT_GE(recent[3].num_phases, 3u);
  EXPECT_STREQ(recent[3].phases[0].name, "validate");
  EXPECT_STREQ(recent[3].phases[1].name, "model_call");
  EXPECT_STREQ(recent[3].phases[2].name, "record");
}

TEST(ProxyObsTest, RetriedPredictGetsItsOwnOutcome) {
  testing::Fig2Context fig2;
  FlakyEndpoint endpoint(2);
  ExplainableProxy::Options options = QuietOptions();
  options.retry.max_attempts = 5;
  auto proxy =
      ExplainableProxy::CreateWithEndpoint(fig2.schema, &endpoint, options);
  ASSERT_TRUE(proxy.ok());
  ASSERT_TRUE((*proxy)->Predict(fig2.context.instance(0)).ok());
  EXPECT_EQ(RequestCount(**proxy, "predict", "retried"), 1u);
  EXPECT_EQ(RequestCount(**proxy, "predict", "served_full"), 0u);
  EXPECT_EQ((*proxy)->Health().retries, 2u);
  auto recent = (*proxy)->traces()->Recent(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].outcome, obs::TraceOutcome::kRetried);
}

TEST(ProxyObsTest, BreakerTripCountsTransitionsAndBrokeOutcomes) {
  testing::Fig2Context fig2;
  FlakyEndpoint endpoint(1000);
  ExplainableProxy::Options options = QuietOptions();
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 2;
  auto proxy =
      ExplainableProxy::CreateWithEndpoint(fig2.schema, &endpoint, options);
  ASSERT_TRUE(proxy.ok());
  const Instance& x0 = fig2.context.instance(0);
  EXPECT_FALSE((*proxy)->Predict(x0).ok());
  EXPECT_FALSE((*proxy)->Predict(x0).ok());  // second failure trips it
  auto broke = (*proxy)->Predict(x0);
  ASSERT_FALSE(broke.ok());
  EXPECT_EQ(broke.status().code(), StatusCode::kUnavailable);

  obs::Registry& reg = (*proxy)->registry();
  EXPECT_EQ(
      reg.GetCounter("cce_breaker_transitions_total", "", {{"to", "open"}})
          ->Value(),
      1u);
  EXPECT_EQ(reg.GetGauge("cce_breaker_state", "")->Value(),
            static_cast<int64_t>(CircuitBreaker::State::kOpen));
  EXPECT_EQ(RequestCount(**proxy, "predict", "broke"), 1u);
  EXPECT_EQ(RequestCount(**proxy, "predict", "error"), 2u);
  HealthSnapshot health = (*proxy)->Health();
  EXPECT_EQ(health.breaker_trips, 1u);
  EXPECT_EQ(health.breaker_rejections, 1u);
  EXPECT_EQ(health.predict_failures, 2u);
}

TEST(ProxyObsTest, HealthIsAReadOfTheRegistry) {
  testing::Fig2Context fig2;
  ParityModel model;
  auto proxy = ExplainableProxy::Create(fig2.schema, &model, QuietOptions());
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(row),
                                  fig2.context.label(row)));
  }
  ASSERT_TRUE((*proxy)->Predict(fig2.context.instance(0)).ok());
  ASSERT_TRUE((*proxy)->Explain(fig2.context.instance(0), fig2.denied).ok());
  HealthSnapshot health = (*proxy)->Health();
  obs::Registry& reg = (*proxy)->registry();
  EXPECT_EQ(health.predicts, reg.GetCounter("cce_predicts_total", "")->Value());
  EXPECT_EQ(health.explains, reg.GetCounter("cce_explains_total", "")->Value());
  EXPECT_EQ(health.validation_rejects,
            reg.GetCounter("cce_validation_rejects_total", "")->Value());
  // Gauges track live context state.
  EXPECT_EQ(reg.GetGauge("cce_context_window_size", "")->Value(),
            static_cast<int64_t>(fig2.context.size() + 1));
  EXPECT_EQ(reg.GetGauge("cce_recorded_pairs", "")->Value(),
            static_cast<int64_t>((*proxy)->recorded()));
  // The latency histograms saw the traffic.
  EXPECT_EQ(reg.GetHistogram("cce_predict_latency_us", "")
                ->TakeSnapshot()
                .count,
            1u);
  EXPECT_EQ(reg.GetHistogram("cce_explain_latency_us", "")
                ->TakeSnapshot()
                .count,
            1u);
}

TEST(ProxyObsTest, WalFsyncsAreExportedToTheRegistry) {
  testing::Fig2Context fig2;
  const std::string dir = ::testing::TempDir() + "/proxy_obs_wal";
  // A leftover log from a previous run would replay into the context and
  // skew the counters; start from a clean directory.
  std::remove((dir + "/context.wal").c_str());
  std::remove((dir + "/context.snapshot").c_str());
  ExplainableProxy::Options options = QuietOptions();
  options.durability.dir = dir;
  options.durability.sync_every = 1;
  auto proxy = ExplainableProxy::Create(fig2.schema, nullptr, options);
  ASSERT_TRUE(proxy.ok());
  for (int i = 0; i < 3; ++i) {
    CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(i),
                                  fig2.context.label(i)));
  }
  HealthSnapshot health = (*proxy)->Health();
  obs::Registry& reg = (*proxy)->registry();
  EXPECT_EQ(health.wal_records_logged, 3u);
  EXPECT_GE(health.wal_fsyncs, 3u);
  EXPECT_EQ(health.wal_fsyncs,
            reg.GetCounter("cce_wal_fsyncs_total", "")->Value());
  EXPECT_EQ(health.wal_records_logged,
            reg.GetCounter("cce_wal_records_logged_total", "")->Value());
  EXPECT_EQ(reg.GetHistogram("cce_wal_append_us", "")->TakeSnapshot().count,
            3u);
  std::remove((dir + "/context.wal").c_str());
  std::remove((dir + "/context.snapshot").c_str());
}

TEST(ProxyObsTest, SharedRegistryAggregatesAcrossProxies) {
  testing::Fig2Context fig2;
  ParityModel model;
  auto registry = std::make_shared<obs::Registry>();
  ExplainableProxy::Options options = QuietOptions();
  options.observability.registry = registry;
  auto a = ExplainableProxy::Create(fig2.schema, &model, options);
  auto b = ExplainableProxy::Create(fig2.schema, &model, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*a)->Predict(fig2.context.instance(0)).ok());
  ASSERT_TRUE((*b)->Predict(fig2.context.instance(1)).ok());
  EXPECT_EQ(registry->GetCounter("cce_predicts_total", "")->Value(), 2u);
  EXPECT_EQ(&(*a)->registry(), registry.get());
}

TEST(ProxyObsTest, TracingCanBeDisabled) {
  testing::Fig2Context fig2;
  ParityModel model;
  ExplainableProxy::Options options = QuietOptions();
  options.observability.trace_capacity = 0;
  auto proxy = ExplainableProxy::Create(fig2.schema, &model, options);
  ASSERT_TRUE(proxy.ok());
  EXPECT_EQ((*proxy)->traces(), nullptr);
  EXPECT_TRUE((*proxy)->Predict(fig2.context.instance(0)).ok())
      << "instrumented paths must not depend on the ring";
}

TEST(ProxyObsTest, ExpositionRendersLiveProxyMetrics) {
  testing::Fig2Context fig2;
  ParityModel model;
  auto proxy = ExplainableProxy::Create(fig2.schema, &model, QuietOptions());
  ASSERT_TRUE(proxy.ok());
  ASSERT_TRUE((*proxy)->Predict(fig2.context.instance(0)).ok());
  const std::string text = obs::RenderPrometheusText((*proxy)->registry());
  EXPECT_NE(text.find("# TYPE cce_requests_total counter"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "cce_requests_total{op=\"predict\",outcome=\"served_full\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("cce_predict_latency_us_count 1"), std::string::npos);
  const std::string json = obs::RenderJson((*proxy)->registry());
  EXPECT_NE(json.find("\"name\": \"cce_predicts_total\""),
            std::string::npos);
  ASSERT_NE((*proxy)->traces(), nullptr);
  const std::string traces = obs::RenderTracesJson(*(*proxy)->traces());
  EXPECT_NE(traces.find("\"op\": \"predict\""), std::string::npos);
}

}  // namespace
}  // namespace cce::serving
