// Proxy-level overload protection: per-class admission, the
// full -> cached -> degraded -> shed degradation ladder, input hardening
// at every boundary, edge-case contexts (empty / single record), Explain
// racing Record across WAL compaction generations, and a mixed-traffic
// stress against an overload-bursting backend (scaled up under CCE_STRESS
// for the tier-2 TSan suite).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "serving/fault_model.h"
#include "serving/overload.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

using std::chrono::milliseconds;

/// Cheap deterministic backend: tests isolate admission behaviour from
/// model cost.
class ParityModel : public Model {
 public:
  Label Predict(const Instance& x) const override {
    return static_cast<Label>(x.empty() ? 0 : x[0] % 2);
  }
};

ExplainableProxy::Options QuietOptions() {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.sleep = [](milliseconds) {};
  return options;
}

int StressScale() {
  const char* env = std::getenv("CCE_STRESS");
  return (env != nullptr && env[0] != '\0' && env[0] != '0') ? 4 : 1;
}

TEST(ProxyOverloadTest, PredictRateLimitShedsWithRetryAfter) {
  testing::Fig2Context fig2;
  ParityModel model;
  ExplainableProxy::Options options = QuietOptions();
  options.overload.enabled = true;
  options.overload.predict_bucket.refill_per_sec = 0.001;  // no refill in-test
  options.overload.predict_bucket.burst = 3.0;
  auto proxy = ExplainableProxy::Create(fig2.schema, &model, options);
  ASSERT_TRUE(proxy.ok());
  const Instance& x = fig2.context.instance(0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE((*proxy)->Predict(x).ok()) << "burst budget admit " << i;
  }
  auto shed = (*proxy)->Predict(x);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(ParseRetryAfterMs(shed.status()), 1);
  HealthSnapshot health = (*proxy)->Health();
  EXPECT_EQ(health.admitted_predicts, 3u);
  EXPECT_EQ(health.shed_rate_limited, 1u);
  EXPECT_EQ((*proxy)->recorded(), 3u) << "shed predicts are not recorded";
  // Record has its own (unlimited) bucket: unaffected by the predict shed.
  EXPECT_TRUE((*proxy)->Record(x, fig2.denied).ok());
}

TEST(ProxyOverloadTest, ShedExplainServedFromCacheThenRejectedCold) {
  testing::Fig2Context fig2;
  ExplainableProxy::Options options = QuietOptions();
  options.overload.enabled = true;
  options.overload.explain_bucket.refill_per_sec = 0.001;
  options.overload.explain_bucket.burst = 1.0;
  auto proxy = ExplainableProxy::Create(fig2.schema, nullptr, options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(row),
                                  fig2.context.label(row)));
  }
  const Instance& x0 = fig2.context.instance(0);
  // First Explain spends the only token and warms the cache.
  auto full = (*proxy)->Explain(x0, fig2.denied);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->cached);
  EXPECT_EQ(full->key, (FeatureSet{fig2.income, fig2.credit}));
  // Second identical request is rate-shed but served from the cache: the
  // cached rung of the ladder, a real key rather than an error.
  auto cached = (*proxy)->Explain(x0, fig2.denied);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->cached);
  EXPECT_EQ(cached->key, full->key);
  // A different instance finds a cold cache: the shed surfaces.
  auto shed = (*proxy)->Explain(fig2.context.instance(1), fig2.approved);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(ParseRetryAfterMs(shed.status()), 1);
  HealthSnapshot health = (*proxy)->Health();
  EXPECT_EQ(health.cache_served_explains, 1u);
  EXPECT_EQ(health.cache_hits, 1u);
  EXPECT_EQ(health.admitted_explains, 1u);
  EXPECT_EQ(health.shed_rate_limited, 2u);
  EXPECT_EQ(health.explains, 3u);
}

TEST(ProxyOverloadTest, CachedKeyRevalidatesAcrossBenignSlide) {
  testing::Fig2Context fig2;
  ExplainableProxy::Options options = QuietOptions();
  options.overload.enabled = true;
  options.overload.explain_bucket.refill_per_sec = 0.001;
  options.overload.explain_bucket.burst = 1.0;
  auto proxy = ExplainableProxy::Create(fig2.schema, nullptr, options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(row),
                                  fig2.context.label(row)));
  }
  const Instance& x0 = fig2.context.instance(0);
  auto full = (*proxy)->Explain(x0, fig2.denied);
  ASSERT_TRUE(full.ok());
  // The window slides with a row that agrees with x0 on the cached key's
  // features AND its label: the key provably still holds, so the shed
  // request is served from the cache after a delta replay.
  CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(3), fig2.denied));
  auto cached = (*proxy)->Explain(x0, fig2.denied);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->cached);
  EXPECT_EQ(cached->key, full->key);
  HealthSnapshot health = (*proxy)->Health();
  EXPECT_EQ(health.cache_revalidations, 1u);
  EXPECT_EQ(health.cache_revalidation_failures, 0u);
  EXPECT_EQ(health.cache_served_explains, 1u);
}

TEST(ProxyOverloadTest, ConflictingRecordBreaksCachedKey) {
  testing::Fig2Context fig2;
  ExplainableProxy::Options options = QuietOptions();
  options.overload.enabled = true;
  options.overload.explain_bucket.refill_per_sec = 0.001;
  options.overload.explain_bucket.burst = 1.0;
  auto proxy = ExplainableProxy::Create(fig2.schema, nullptr, options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(row),
                                  fig2.context.label(row)));
  }
  const Instance& x0 = fig2.context.instance(0);
  ASSERT_TRUE((*proxy)->Explain(x0, fig2.denied).ok());
  // x3 matches x0 on Income and Credit; recording it with the OTHER label
  // makes it a violator of the cached key {Income, Credit}. Revalidation
  // must notice the break and refuse to serve the stale key.
  CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(3), fig2.approved));
  auto shed = (*proxy)->Explain(x0, fig2.denied);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  HealthSnapshot health = (*proxy)->Health();
  EXPECT_EQ(health.cache_revalidation_failures, 1u);
  EXPECT_EQ(health.cache_served_explains, 0u)
      << "a disproven key must never be served";
}

TEST(ProxyOverloadTest, CachedKeyDropsWhenDeltaRingOverruns) {
  testing::Fig2Context fig2;
  ExplainableProxy::Options options = QuietOptions();
  options.overload.enabled = true;
  options.overload.explain_bucket.refill_per_sec = 0.001;
  options.overload.explain_bucket.burst = 1.0;
  options.explain_cache.revalidation_window = 2;
  auto proxy = ExplainableProxy::Create(fig2.schema, nullptr, options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < fig2.context.size(); ++row) {
    CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(row),
                                  fig2.context.label(row)));
  }
  const Instance& x0 = fig2.context.instance(0);
  ASSERT_TRUE((*proxy)->Explain(x0, fig2.denied).ok());
  // Three records outrun the 2-delta ring: the entry can no longer be
  // proven fresh, so it is dropped rather than served.
  for (int i = 0; i < 3; ++i) {
    CCE_CHECK_OK((*proxy)->Record(fig2.context.instance(3), fig2.denied));
  }
  auto shed = (*proxy)->Explain(x0, fig2.denied);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ((*proxy)->Health().cache_stale_drops, 1u);
}

TEST(ProxyOverloadTest, InputHardeningRejectsPoisonedInstances) {
  testing::Fig2Context fig2;
  ParityModel model;
  ExplainableProxy::Options options = QuietOptions();
  auto proxy = ExplainableProxy::Create(fig2.schema, &model, options);
  ASSERT_TRUE(proxy.ok());
  const Instance& good = fig2.context.instance(0);
  CCE_CHECK_OK((*proxy)->Record(good, fig2.denied));

  Instance out_of_range = good;
  out_of_range[fig2.credit] = 999;  // far outside Credit's domain
  Instance truncated(good.begin(), good.end() - 1);

  EXPECT_EQ((*proxy)->Predict(out_of_range).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*proxy)->Predict(truncated).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*proxy)->Record(out_of_range, fig2.denied).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*proxy)->Record(good, /*y=*/77).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*proxy)->Explain(out_of_range, fig2.denied).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*proxy)->Explain(good, /*y=*/77).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      (*proxy)->Counterfactuals(out_of_range, fig2.denied).status().code(),
      StatusCode::kInvalidArgument);

  HealthSnapshot health = (*proxy)->Health();
  EXPECT_EQ(health.validation_rejects, 7u);
  EXPECT_EQ((*proxy)->recorded(), 1u)
      << "no poisoned instance reached the context";
}

TEST(ProxyOverloadTest, PoisonedInstanceNeverReachesTheWal) {
  testing::Fig2Context fig2;
  const std::string dir = ::testing::TempDir() + "/cce_overload_poison";
  std::remove((dir + "/context.wal").c_str());
  std::remove((dir + "/context.snapshot").c_str());
  ExplainableProxy::Options options = QuietOptions();
  options.durability.dir = dir;
  size_t logged = 0;
  {
    auto proxy = ExplainableProxy::Create(fig2.schema, nullptr, options);
    ASSERT_TRUE(proxy.ok()) << proxy.status().ToString();
    CCE_CHECK_OK(
        (*proxy)->Record(fig2.context.instance(0), fig2.denied));
    Instance poisoned = fig2.context.instance(0);
    poisoned[0] = 12345;
    EXPECT_FALSE((*proxy)->Record(poisoned, fig2.denied).ok());
    logged = (*proxy)->Health().wal_records_logged;
  }
  EXPECT_EQ(logged, 1u);
  auto revived = ExplainableProxy::Create(fig2.schema, nullptr, options);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->recorded(), 1u);
  EXPECT_EQ((*revived)->Health().wal_records_dropped, 0u);
}

TEST(ProxyOverloadTest, EmptyContextGivesCleanErrors) {
  testing::Fig2Context fig2;
  ExplainableProxy::Options options = QuietOptions();
  options.overload.enabled = true;  // admission runs before the window check
  auto proxy = ExplainableProxy::Create(fig2.schema, nullptr, options);
  ASSERT_TRUE(proxy.ok());
  const Instance& x = fig2.context.instance(0);
  EXPECT_EQ((*proxy)->Explain(x, fig2.denied).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*proxy)->Counterfactuals(x, fig2.denied).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ProxyOverloadTest, SingleRecordContextExplainsAndCounterfactuals) {
  testing::Fig2Context fig2;
  ExplainableProxy::Options options = QuietOptions();
  options.overload.enabled = true;
  auto proxy = ExplainableProxy::Create(fig2.schema, nullptr, options);
  ASSERT_TRUE(proxy.ok());
  const Instance& x = fig2.context.instance(0);
  CCE_CHECK_OK((*proxy)->Record(x, fig2.denied));
  // Explaining the only record: the empty key is already conformant.
  auto key = (*proxy)->Explain(x, fig2.denied);
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_TRUE(key->satisfied);
  // Explaining a *different* label against a one-record context must be a
  // clean answer too (every feature may be needed, or none suffice).
  auto other = (*proxy)->Explain(fig2.context.instance(1), fig2.approved);
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  // No opposite-label witness exists in a one-record context: a clean
  // NotFound, not a crash.
  auto witnesses = (*proxy)->Counterfactuals(x, fig2.denied);
  ASSERT_FALSE(witnesses.ok());
  EXPECT_EQ(witnesses.status().code(), StatusCode::kNotFound);
}

TEST(ProxyOverloadTest, ExplainRacesRecordAcrossCompactionGenerations) {
  Dataset data = testing::RandomContext(400, 5, 3, 7, /*noise=*/0.0);
  const std::string dir = ::testing::TempDir() + "/cce_overload_compact_race";
  std::remove((dir + "/context.wal").c_str());
  std::remove((dir + "/context.snapshot").c_str());
  ExplainableProxy::Options options = QuietOptions();
  options.durability.dir = dir;
  options.durability.sync_every = 0;  // keep the race tight, not disk-bound
  options.durability.compact_threshold_bytes = 512;  // many generations
  options.context_capacity = 64;
  options.overload.enabled = true;
  options.overload.concurrency.initial = 2;
  const int scale = StressScale();
  size_t total = 0;
  {
    auto proxy = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
    ASSERT_TRUE(proxy.ok()) << proxy.status().ToString();
    for (size_t row = 0; row < 16; ++row) {
      CCE_CHECK_OK((*proxy)->Record(data.instance(row), data.label(row)));
    }
    std::atomic<uint64_t> recorded{16};
    std::atomic<uint64_t> explained{0};
    std::thread writer([&] {
      for (int i = 0; i < 300 * scale; ++i) {
        const size_t row = static_cast<size_t>(i) % data.size();
        if ((*proxy)->Record(data.instance(row), data.label(row)).ok()) {
          recorded.fetch_add(1);
        }
      }
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&, r] {
        for (int i = 0; i < 60 * scale; ++i) {
          const size_t row = static_cast<size_t>(r * 31 + i) % 16;
          auto key = (*proxy)->Explain(data.instance(row), data.label(row));
          if (key.ok()) {
            explained.fetch_add(1);
          } else {
            // Every non-OK outcome must be a clean, expected code.
            const StatusCode code = key.status().code();
            EXPECT_TRUE(code == StatusCode::kResourceExhausted ||
                        code == StatusCode::kDeadlineExceeded ||
                        code == StatusCode::kFailedPrecondition)
                << key.status().ToString();
          }
        }
      });
    }
    writer.join();
    for (auto& reader : readers) reader.join();
    EXPECT_GT(explained.load(), 0u);
    EXPECT_EQ((*proxy)->recorded(), recorded.load());
    EXPECT_GE((*proxy)->Health().wal_compactions, 1u)
        << "the race must actually cross compaction generations";
    total = (*proxy)->recorded();
  }
  // The generations the race produced recover cleanly.
  auto revived = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ((*revived)->recorded(), total);
}

TEST(ProxyOverloadTest, MixedTrafficAgainstOverloadBurstingBackend) {
  Dataset data = testing::RandomContext(400, 5, 3, 11, /*noise=*/0.0);
  ParityModel model;
  FaultInjectingModel::Options fault_options;
  fault_options.failure_rate = 0.02;
  fault_options.burst_length = 3;
  fault_options.overload_burst_rate = 0.05;
  fault_options.overload_burst_length = 6;
  fault_options.overload_latency = milliseconds(1);
  std::atomic<uint64_t> slept_ms{0};
  FaultInjectingModel flaky(&model, fault_options, [&](milliseconds d) {
    slept_ms.fetch_add(static_cast<uint64_t>(d.count()));
    // Stall without sleeping for real: the stress stays fast while the
    // backend still "takes time" from the caller's perspective.
    std::this_thread::yield();
  });
  ExplainableProxy::Options options = QuietOptions();
  options.retry.max_attempts = 2;
  options.breaker.failure_threshold = 1000;  // keep the breaker out of it
  options.context_capacity = 128;
  options.overload.enabled = true;
  options.overload.explain_bucket.refill_per_sec = 20000.0;
  options.overload.explain_bucket.burst = 64.0;
  options.overload.concurrency.initial = 2;
  options.overload.concurrency.latency_target = milliseconds(50);
  options.overload.max_queue = 4;
  const int scale = StressScale();
  auto proxy =
      ExplainableProxy::CreateWithEndpoint(data.schema_ptr(), &flaky, options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < 32; ++row) {
    CCE_CHECK_OK((*proxy)->Record(data.instance(row), data.label(row)));
  }
  std::atomic<uint64_t> predict_ok{0};
  std::atomic<uint64_t> explain_ok{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 200 * scale; ++i) {
        const size_t row = static_cast<size_t>(w * 131 + i) % data.size();
        if ((*proxy)->Predict(data.instance(row)).ok()) {
          predict_ok.fetch_add(1);
        }
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < 80 * scale; ++i) {
        const size_t row = static_cast<size_t>(r * 17 + i) % 32;
        const Deadline deadline = i % 4 == 0
                                      ? Deadline::After(milliseconds(50))
                                      : Deadline::Infinite();
        auto key =
            (*proxy)->Explain(data.instance(row), data.label(row), deadline);
        if (key.ok()) explain_ok.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(predict_ok.load(), 0u);
  EXPECT_GT(explain_ok.load(), 0u);
  HealthSnapshot health = (*proxy)->Health();
  // No Counterfactuals or Predict sheds in this workload, so every Explain
  // is exactly one of: admitted, or shed by exactly one cause (a shed may
  // additionally be served from the cache).
  EXPECT_EQ(health.admitted_explains + health.shed_rate_limited +
                health.shed_queue_full + health.shed_deadline_unmeetable +
                health.shed_queue_deadline + health.shed_codel,
            health.explains)
      << "every Explain is accounted for exactly once";
  // Every cache-served answer (shed fallback or admitted-under-pressure)
  // came from a cache hit.
  EXPECT_LE(health.cache_served_explains, health.cache_hits);
  EXPECT_GE(health.concurrency_limit, 1);
  EXPECT_GT(flaky.stats().overload_bursts, 0u)
      << "the overload-burst fault must actually fire";
  EXPECT_GE(slept_ms.load(), flaky.stats().overloaded_calls)
      << "every overloaded call stalls for its injected latency";
}

}  // namespace
}  // namespace cce::serving
