#include "serving/proxy.h"

#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/logging.h"
#include "core/conformity.h"
#include "data/drift.h"
#include "ml/gbdt.h"
#include "serving/fault_model.h"
#include "serving/resilience.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

class ProxyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = std::make_unique<Dataset>(
        cce::testing::RandomContext(800, 5, 3, 99, /*noise=*/0.0));
    ml::Gbdt::Options options;
    options.num_trees = 30;
    auto model = ml::Gbdt::Train(*data_, options);
    CCE_CHECK_OK(model.status());
    model_ = std::move(model).value();
  }

  std::unique_ptr<Dataset> data_;
  std::unique_ptr<ml::Gbdt> model_;
};

TEST_F(ProxyTest, CreateValidatesArguments) {
  ExplainableProxy::Options options;
  EXPECT_FALSE(ExplainableProxy::Create(nullptr, model_.get(), options)
                   .ok());
  options.alpha = 0.0;
  EXPECT_FALSE(
      ExplainableProxy::Create(data_->schema_ptr(), model_.get(), options)
          .ok());
}

TEST_F(ProxyTest, PredictRecordsAndMatchesModel) {
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), model_.get(), {});
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < 50; ++row) {
    auto served = (*proxy)->Predict(data_->instance(row));
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(*served, model_->Predict(data_->instance(row)));
  }
  EXPECT_EQ((*proxy)->recorded(), 50u);
  Context snapshot = (*proxy)->ContextSnapshot();
  EXPECT_EQ(snapshot.size(), 50u);
  EXPECT_EQ(snapshot.instance(0), data_->instance(0));
}

TEST_F(ProxyTest, ModelFreeModeRecordsExternalPredictions) {
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, {});
  ASSERT_TRUE(proxy.ok());
  EXPECT_EQ((*proxy)->Predict(data_->instance(0)).status().code(),
            StatusCode::kFailedPrecondition);
  CCE_CHECK_OK((*proxy)->Record(data_->instance(0), 1));
  EXPECT_EQ((*proxy)->recorded(), 1u);
}

TEST_F(ProxyTest, ExplanationsAreConformantOverTheSnapshot) {
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), model_.get(), {});
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < 200; ++row) {
    ASSERT_TRUE((*proxy)->Predict(data_->instance(row)).ok());
  }
  const Instance& x0 = data_->instance(0);
  Label y0 = model_->Predict(x0);
  auto key = (*proxy)->Explain(x0, y0);
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(key->satisfied);
  Context snapshot = (*proxy)->ContextSnapshot();
  ConformityChecker checker(&snapshot);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, y0, key->key, 1.0));
}

TEST_F(ProxyTest, ExplainBeforeAnyTrafficFails) {
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), model_.get(), {});
  ASSERT_TRUE(proxy.ok());
  EXPECT_EQ((*proxy)->Explain(data_->instance(0), 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(
      (*proxy)->Counterfactuals(data_->instance(0), 0).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST_F(ProxyTest, RollingCapacityEvictsOldTraffic) {
  ExplainableProxy::Options options;
  options.context_capacity = 32;
  auto proxy = ExplainableProxy::Create(data_->schema_ptr(), model_.get(),
                                        options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < 100; ++row) {
    ASSERT_TRUE((*proxy)->Predict(data_->instance(row)).ok());
  }
  Context snapshot = (*proxy)->ContextSnapshot();
  EXPECT_EQ(snapshot.size(), 32u);
  // The snapshot holds the most recent traffic.
  EXPECT_EQ(snapshot.instance(31), data_->instance(99));
  EXPECT_EQ((*proxy)->recorded(), 100u);
}

TEST_F(ProxyTest, CounterfactualsComeFromRecordedTraffic) {
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), model_.get(), {});
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < 300; ++row) {
    ASSERT_TRUE((*proxy)->Predict(data_->instance(row)).ok());
  }
  const Instance& x0 = data_->instance(0);
  Label y0 = model_->Predict(x0);
  auto witnesses = (*proxy)->Counterfactuals(x0, y0);
  ASSERT_TRUE(witnesses.ok());
  ASSERT_FALSE(witnesses->empty());
  Context snapshot = (*proxy)->ContextSnapshot();
  for (const auto& w : *witnesses) {
    EXPECT_NE(snapshot.label(w.witness_row), y0);
  }
}

/// Options preset that never really sleeps: backoff delays are recorded
/// into `slept` instead, keeping the fault-tolerance tests fast and
/// deterministic.
ExplainableProxy::Options NoSleepOptions(
    std::vector<std::chrono::milliseconds>* slept) {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.sleep = [slept](std::chrono::milliseconds d) {
    if (slept != nullptr) slept->push_back(d);
  };
  return options;
}

TEST_F(ProxyTest, RetriesAbsorbTransientFaultsWithNoClientVisibleErrors) {
  FaultInjectingModel::Options fault_options;
  fault_options.failure_rate = 0.3;  // 30% transient failures
  fault_options.seed = 17;
  FaultInjectingModel flaky(model_.get(), fault_options);

  std::vector<std::chrono::milliseconds> slept;
  ExplainableProxy::Options options = NoSleepOptions(&slept);
  options.retry.max_attempts = 8;
  auto proxy = ExplainableProxy::CreateWithEndpoint(data_->schema_ptr(),
                                                    &flaky, options);
  ASSERT_TRUE(proxy.ok());

  for (size_t row = 0; row < 300; ++row) {
    auto served = (*proxy)->Predict(data_->instance(row));
    ASSERT_TRUE(served.ok()) << "row " << row << ": "
                             << served.status().ToString();
    EXPECT_EQ(*served, model_->Predict(data_->instance(row)));
  }

  HealthSnapshot health = (*proxy)->Health();
  EXPECT_EQ(health.predict_failures, 0u) << health.ToString();
  EXPECT_GT(health.retries, 0u) << "a 30% fault rate must cause retries";
  EXPECT_EQ(health.breaker_state, CircuitBreaker::State::kClosed);
  EXPECT_EQ(slept.size(), health.retries) << "every retry backs off";
  EXPECT_EQ((*proxy)->recorded(), 300u);
}

TEST_F(ProxyTest, PermanentOutageOpensBreakerAndExplainKeepsServing) {
  FaultInjectingModel::Options fault_options;
  fault_options.fail_forever = true;
  FaultInjectingModel dead(model_.get(), fault_options);

  ExplainableProxy::Options options = NoSleepOptions(nullptr);
  options.retry.max_attempts = 2;
  options.breaker.failure_threshold = 3;
  options.breaker.open_cooldown = std::chrono::hours(1);
  auto proxy = ExplainableProxy::CreateWithEndpoint(data_->schema_ptr(),
                                                    &dead, options);
  ASSERT_TRUE(proxy.ok());

  // Context recorded before the outage (e.g. from the healthy era or an
  // external feed).
  for (size_t row = 0; row < 200; ++row) {
    CCE_CHECK_OK((*proxy)->Record(data_->instance(row),
                                  model_->Predict(data_->instance(row))));
  }

  // Three operations fail (each after its retries) and trip the breaker.
  for (int i = 0; i < 3; ++i) {
    auto served = (*proxy)->Predict(data_->instance(0));
    ASSERT_FALSE(served.ok());
    EXPECT_EQ(served.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ((*proxy)->Health().breaker_state, CircuitBreaker::State::kOpen);

  // Open breaker: Predict fails fast without touching the endpoint.
  const uint64_t calls_before = dead.stats().calls;
  auto rejected = (*proxy)->Predict(data_->instance(1));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(dead.stats().calls, calls_before);

  // Record-only degradation: explanations still come from the context.
  const Instance& x0 = data_->instance(0);
  Label y0 = model_->Predict(x0);
  auto key = (*proxy)->Explain(x0, y0);
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(key->satisfied);
  EXPECT_FALSE(key->degraded);
  Context snapshot = (*proxy)->ContextSnapshot();
  ConformityChecker checker(&snapshot);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, y0, key->key, 1.0));

  HealthSnapshot health = (*proxy)->Health();
  EXPECT_GE(health.breaker_rejections, 1u);
  EXPECT_GE(health.fallback_serves, 1u);
  EXPECT_EQ(health.breaker_trips, 1u);
}

TEST_F(ProxyTest, BreakerHalfOpensAndRecoversWhenTheBackendHeals) {
  // A backend that is down, then heals: scripted through fail_forever
  // toggling is not possible on a const options struct, so use two layers —
  // the test flips `healthy`.
  class ScriptedEndpoint : public ModelEndpoint {
   public:
    explicit ScriptedEndpoint(const Model* model) : model_(model) {}
    Result<Label> Predict(const Instance& x) override {
      if (!healthy) return Status::Unavailable("scripted outage");
      return model_->Predict(x);
    }
    bool healthy = false;

   private:
    const Model* model_;
  };

  ScriptedEndpoint endpoint(model_.get());
  auto now = std::chrono::steady_clock::time_point{} + std::chrono::hours(1);

  ExplainableProxy::Options options = NoSleepOptions(nullptr);
  options.retry.max_attempts = 1;  // isolate the breaker from retries
  options.breaker.failure_threshold = 2;
  options.breaker.open_cooldown = std::chrono::milliseconds(50);
  options.breaker.successes_to_close = 2;
  options.clock = [&now] { return now; };
  auto proxy = ExplainableProxy::CreateWithEndpoint(data_->schema_ptr(),
                                                    &endpoint, options);
  ASSERT_TRUE(proxy.ok());

  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE((*proxy)->Predict(data_->instance(0)).ok());
  }
  ASSERT_EQ((*proxy)->Health().breaker_state, CircuitBreaker::State::kOpen);
  EXPECT_FALSE((*proxy)->Predict(data_->instance(0)).ok());

  endpoint.healthy = true;
  now += std::chrono::milliseconds(50);  // cooldown elapses -> half-open
  for (int i = 0; i < 2; ++i) {
    auto served = (*proxy)->Predict(data_->instance(0));
    ASSERT_TRUE(served.ok()) << "probe " << i << " must pass through";
  }
  EXPECT_EQ((*proxy)->Health().breaker_state,
            CircuitBreaker::State::kClosed);
}

TEST_F(ProxyTest, PredictDeadlineMissReportsDeadlineExceeded) {
  FaultInjectingModel::Options fault_options;
  fault_options.fail_forever = true;
  FaultInjectingModel dead(model_.get(), fault_options);

  ExplainableProxy::Options options = NoSleepOptions(nullptr);
  options.retry.max_attempts = 100;
  auto proxy = ExplainableProxy::CreateWithEndpoint(data_->schema_ptr(),
                                                    &dead, options);
  ASSERT_TRUE(proxy.ok());

  auto served = (*proxy)->Predict(data_->instance(0), Deadline::Expired());
  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kDeadlineExceeded);
  HealthSnapshot health = (*proxy)->Health();
  EXPECT_EQ(health.deadline_misses, 1u);
  // A client budget miss must not poison the breaker.
  EXPECT_EQ(health.breaker_state, CircuitBreaker::State::kClosed);
}

TEST_F(ProxyTest, ExpiredExplainDeadlineYieldsDegradedButConformantKey) {
  auto proxy = ExplainableProxy::Create(data_->schema_ptr(), model_.get(),
                                        NoSleepOptions(nullptr));
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < 400; ++row) {
    ASSERT_TRUE((*proxy)->Predict(data_->instance(row)).ok());
  }
  const Instance& x0 = data_->instance(0);
  Label y0 = model_->Predict(x0);

  auto key = (*proxy)->Explain(x0, y0, Deadline::Expired());
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(key->degraded);
  EXPECT_TRUE(key->satisfied);
  Context snapshot = (*proxy)->ContextSnapshot();
  ConformityChecker checker(&snapshot);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, y0, key->key, 1.0));

  auto unbounded = (*proxy)->Explain(x0, y0);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_FALSE(unbounded->degraded);
  EXPECT_LE(unbounded->succinctness(), key->succinctness())
      << "the degraded key is padded, never smaller than the greedy one";
  EXPECT_GE((*proxy)->Health().degraded_explains, 1u);
}

TEST(ProxyDeadlineTest, MillisecondExplainOverLargeContextDegradesNotBlocks) {
  // A context large enough that a single greedy SRK pass costs well over
  // 1ms: the deadline must cut the enumeration short, not block or error.
  Dataset data =
      cce::testing::RandomContext(300000, 24, 3, 1234, /*noise=*/0.0);
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  auto proxy = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < data.size(); ++row) {
    CCE_CHECK_OK((*proxy)->Record(data.instance(row), data.label(row)));
  }

  const Instance& x0 = data.instance(0);
  Label y0 = data.label(0);
  auto key = (*proxy)->Explain(
      x0, y0, Deadline::After(std::chrono::milliseconds(1)));
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(key->degraded);
  EXPECT_TRUE(key->satisfied) << "noise-free context: the padded key must "
                                 "be perfectly conformant";
  Context snapshot = (*proxy)->ContextSnapshot();
  ConformityChecker checker(&snapshot);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, y0, key->key, 1.0));
}

TEST_F(ProxyTest, DriftAlarmFiresOnScrambledTraffic) {
  ExplainableProxy::Options options;
  options.drift.probe_count = 4;
  options.drift.alarm_growth = 1.0;
  options.drift.alarm_window = 400;
  options.drift.warmup = 300;
  auto proxy = ExplainableProxy::Create(data_->schema_ptr(), model_.get(),
                                        options);
  ASSERT_TRUE(proxy.ok());
  Rng rng(5);
  Dataset noisy = data::InjectTailNoise(*data_, 0.5, 0.9, &rng);
  for (size_t row = 0; row < noisy.size(); ++row) {
    // Scrambled features with random labels simulate an upstream model
    // meltdown in the second half of the stream.
    Label y = row < noisy.size() / 2
                  ? model_->Predict(noisy.instance(row))
                  : static_cast<Label>(rng.Uniform(2));
    CCE_CHECK_OK((*proxy)->Record(noisy.instance(row), y));
  }
  EXPECT_TRUE((*proxy)->DriftAlarmed());
}

}  // namespace
}  // namespace cce::serving
