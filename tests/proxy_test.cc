#include "serving/proxy.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/conformity.h"
#include "data/drift.h"
#include "ml/gbdt.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

class ProxyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = std::make_unique<Dataset>(
        cce::testing::RandomContext(800, 5, 3, 99, /*noise=*/0.0));
    ml::Gbdt::Options options;
    options.num_trees = 30;
    auto model = ml::Gbdt::Train(*data_, options);
    CCE_CHECK_OK(model.status());
    model_ = std::move(model).value();
  }

  std::unique_ptr<Dataset> data_;
  std::unique_ptr<ml::Gbdt> model_;
};

TEST_F(ProxyTest, CreateValidatesArguments) {
  ExplainableProxy::Options options;
  EXPECT_FALSE(ExplainableProxy::Create(nullptr, model_.get(), options)
                   .ok());
  options.alpha = 0.0;
  EXPECT_FALSE(
      ExplainableProxy::Create(data_->schema_ptr(), model_.get(), options)
          .ok());
}

TEST_F(ProxyTest, PredictRecordsAndMatchesModel) {
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), model_.get(), {});
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < 50; ++row) {
    auto served = (*proxy)->Predict(data_->instance(row));
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(*served, model_->Predict(data_->instance(row)));
  }
  EXPECT_EQ((*proxy)->recorded(), 50u);
  Context snapshot = (*proxy)->ContextSnapshot();
  EXPECT_EQ(snapshot.size(), 50u);
  EXPECT_EQ(snapshot.instance(0), data_->instance(0));
}

TEST_F(ProxyTest, ModelFreeModeRecordsExternalPredictions) {
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), nullptr, {});
  ASSERT_TRUE(proxy.ok());
  EXPECT_EQ((*proxy)->Predict(data_->instance(0)).status().code(),
            StatusCode::kFailedPrecondition);
  CCE_CHECK_OK((*proxy)->Record(data_->instance(0), 1));
  EXPECT_EQ((*proxy)->recorded(), 1u);
}

TEST_F(ProxyTest, ExplanationsAreConformantOverTheSnapshot) {
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), model_.get(), {});
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < 200; ++row) {
    ASSERT_TRUE((*proxy)->Predict(data_->instance(row)).ok());
  }
  const Instance& x0 = data_->instance(0);
  Label y0 = model_->Predict(x0);
  auto key = (*proxy)->Explain(x0, y0);
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(key->satisfied);
  Context snapshot = (*proxy)->ContextSnapshot();
  ConformityChecker checker(&snapshot);
  EXPECT_TRUE(checker.IsAlphaConformant(x0, y0, key->key, 1.0));
}

TEST_F(ProxyTest, ExplainBeforeAnyTrafficFails) {
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), model_.get(), {});
  ASSERT_TRUE(proxy.ok());
  EXPECT_EQ((*proxy)->Explain(data_->instance(0), 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(
      (*proxy)->Counterfactuals(data_->instance(0), 0).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST_F(ProxyTest, RollingCapacityEvictsOldTraffic) {
  ExplainableProxy::Options options;
  options.context_capacity = 32;
  auto proxy = ExplainableProxy::Create(data_->schema_ptr(), model_.get(),
                                        options);
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < 100; ++row) {
    ASSERT_TRUE((*proxy)->Predict(data_->instance(row)).ok());
  }
  Context snapshot = (*proxy)->ContextSnapshot();
  EXPECT_EQ(snapshot.size(), 32u);
  // The snapshot holds the most recent traffic.
  EXPECT_EQ(snapshot.instance(31), data_->instance(99));
  EXPECT_EQ((*proxy)->recorded(), 100u);
}

TEST_F(ProxyTest, CounterfactualsComeFromRecordedTraffic) {
  auto proxy =
      ExplainableProxy::Create(data_->schema_ptr(), model_.get(), {});
  ASSERT_TRUE(proxy.ok());
  for (size_t row = 0; row < 300; ++row) {
    ASSERT_TRUE((*proxy)->Predict(data_->instance(row)).ok());
  }
  const Instance& x0 = data_->instance(0);
  Label y0 = model_->Predict(x0);
  auto witnesses = (*proxy)->Counterfactuals(x0, y0);
  ASSERT_TRUE(witnesses.ok());
  ASSERT_FALSE(witnesses->empty());
  Context snapshot = (*proxy)->ContextSnapshot();
  for (const auto& w : *witnesses) {
    EXPECT_NE(snapshot.label(w.witness_row), y0);
  }
}

TEST_F(ProxyTest, DriftAlarmFiresOnScrambledTraffic) {
  ExplainableProxy::Options options;
  options.drift.probe_count = 4;
  options.drift.alarm_growth = 1.0;
  options.drift.alarm_window = 400;
  options.drift.warmup = 300;
  auto proxy = ExplainableProxy::Create(data_->schema_ptr(), model_.get(),
                                        options);
  ASSERT_TRUE(proxy.ok());
  Rng rng(5);
  Dataset noisy = data::InjectTailNoise(*data_, 0.5, 0.9, &rng);
  for (size_t row = 0; row < noisy.size(); ++row) {
    // Scrambled features with random labels simulate an upstream model
    // meltdown in the second half of the stream.
    Label y = row < noisy.size() / 2
                  ? model_->Predict(noisy.instance(row))
                  : static_cast<Label>(rng.Uniform(2));
    CCE_CHECK_OK((*proxy)->Record(noisy.instance(row), y));
  }
  EXPECT_TRUE((*proxy)->DriftAlarmed());
}

}  // namespace
}  // namespace cce::serving
