#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace cce {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalHasZeroMeanUnitVariance) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.08);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.Categorical({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(RngTest, CategoricalZeroWeightNeverPicked) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(rng.Categorical({1.0, 0.0, 1.0}), 1u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(23);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(25);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(20, 10);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(27);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementZero) {
  Rng rng(29);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

}  // namespace
}  // namespace cce
