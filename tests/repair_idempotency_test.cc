#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "io/env.h"
#include "serving/context_shard.h"
#include "serving/proxy.h"
#include "serving/replica_proxy.h"
#include "serving/replication.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

/// The supervisor's repair actions must be safe to fire against a domain
/// that is not actually sick (probes race real state): RepairShard() on a
/// healthy shard is a kFailedPrecondition no-op and ForceResync() on an
/// in-sync replica atomically swaps in an identical view — in both cases
/// concurrent Explains keep succeeding with bit-identical keys. Runs in
/// the tier-2 SUITE=stress gate under ThreadSanitizer, so the
/// no-transient-empty-view property of the atomic-swap resync is raced
/// for real.

size_t StressScale() { return std::getenv("CCE_STRESS") != nullptr ? 4 : 1; }

void WipeDir(const std::string& dir) {
  std::vector<std::string> names;
  if (io::Env::Default()->ListDir(dir, &names).ok()) {
    for (const std::string& entry : names) {
      (void)io::Env::Default()->RemoveFile(dir + "/" + entry);
    }
  }
}

void ExpectSameKey(const KeyResult& actual, const KeyResult& expected,
                   const char* when) {
  EXPECT_EQ(actual.key, expected.key) << when;
  EXPECT_EQ(actual.pick_order, expected.pick_order) << when;
  EXPECT_EQ(actual.achieved_alpha, expected.achieved_alpha) << when;
  EXPECT_EQ(actual.satisfied, expected.satisfied) << when;
}

TEST(RepairIdempotencyTest, RepairShardOnHealthyShardIsANoOp) {
  const size_t kShards = 4;
  Dataset data = cce::testing::RandomContext(200, 4, 3, 23, /*noise=*/0.1);
  const std::string dir = ::testing::TempDir() + "/repair_idem_leader";
  WipeDir(dir);
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.shards = kShards;
  options.durability.dir = dir;
  options.durability.sync_every = 0;
  auto proxy_or = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
  CCE_CHECK_OK(proxy_or.status());
  ExplainableProxy& proxy = **proxy_or;
  for (size_t i = 0; i < 96; ++i) {
    CCE_CHECK_OK(proxy.Record(data.instance(i), data.label(i)));
  }

  auto before = proxy.Explain(data.instance(0), data.label(0));
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  const uint64_t recorded_before = proxy.recorded();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  const size_t kThreads = 2 * StressScale();
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&proxy, &data, &stop, t] {
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        auto key = proxy.Explain(data.instance(i % 96), data.label(i % 96));
        EXPECT_TRUE(key.ok()) << key.status().ToString();
        ++i;
      }
    });
  }
  for (size_t round = 0; round < 8 * StressScale(); ++round) {
    for (size_t shard = 0; shard < kShards; ++shard) {
      Status repaired = proxy.RepairShard(shard);
      EXPECT_EQ(repaired.code(), StatusCode::kFailedPrecondition)
          << "repairing a healthy shard must refuse, not rebuild: "
          << repaired.ToString();
    }
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(proxy.recorded(), recorded_before);
  HealthSnapshot health = proxy.Health();
  for (size_t shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(health.shards[shard].state, ContextShard::State::kActive);
  }
  auto after = proxy.Explain(data.instance(0), data.label(0));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectSameKey(*after, *before, "after benign RepairShard sweep");
}

TEST(RepairIdempotencyTest, ForceResyncOnInSyncReplicaIsInvisible) {
  const size_t kShards = 4;
  Dataset data = cce::testing::RandomContext(200, 4, 3, 29, /*noise=*/0.1);
  const std::string leader_dir = ::testing::TempDir() + "/resync_idem_leader";
  const std::string ship_dir = ::testing::TempDir() + "/resync_idem_ship";
  WipeDir(leader_dir);
  WipeDir(ship_dir);
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.shards = kShards;
  options.durability.dir = leader_dir;
  options.durability.sync_every = 0;
  auto leader_or = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
  CCE_CHECK_OK(leader_or.status());
  ExplainableProxy& leader = **leader_or;
  for (size_t i = 0; i < 96; ++i) {
    CCE_CHECK_OK(leader.Record(data.instance(i), data.label(i)));
  }
  ShardLogShipper::Options ship_options;
  ship_options.source_dir = leader_dir;
  ship_options.ship_dir = ship_dir;
  ship_options.shards = kShards;
  ShardLogShipper shipper(ship_options);
  CCE_CHECK_OK(shipper.Ship(leader.PublishedSequence()));
  ReplicaProxy::Options replica_options;
  replica_options.ship_dir = ship_dir;
  auto replica_or = ReplicaProxy::Create(data.schema_ptr(), replica_options);
  CCE_CHECK_OK(replica_or.status());
  ReplicaProxy& replica = **replica_or;
  ASSERT_EQ(replica.published_seq(), leader.PublishedSequence());

  auto before = replica.Explain(data.instance(0), data.label(0));
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_FALSE(before->degraded);

  // Readers must never observe a transient empty view (kFailedPrecondition)
  // while resyncs rebuild-and-swap underneath them.
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  const size_t kThreads = 2 * StressScale();
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&replica, &data, &stop, t] {
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        auto key = replica.Explain(data.instance(i % 96), data.label(i % 96));
        EXPECT_TRUE(key.ok())
            << "a resync of an in-sync replica leaked an inconsistent "
            << "view: " << key.status().ToString();
        if (key.ok()) EXPECT_FALSE(key->degraded);
        ++i;
      }
    });
  }
  const uint64_t view_before = replica.published_seq();
  for (size_t round = 0; round < 8 * StressScale(); ++round) {
    CCE_CHECK_OK(replica.ForceResync());
    EXPECT_EQ(replica.published_seq(), view_before)
        << "an in-sync resync must land on the same watermark";
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  ReplicaProxy::Health health = replica.GetHealth();
  EXPECT_FALSE(health.degraded);
  EXPECT_EQ(health.view_published, view_before);
  EXPECT_GE(health.resyncs, 8u);
  auto after = replica.Explain(data.instance(0), data.label(0));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectSameKey(*after, *before, "after in-sync ForceResync sweep");
}

}  // namespace
}  // namespace cce::serving
