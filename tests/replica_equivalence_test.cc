#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/osrk.h"
#include "core/ssrk.h"
#include "io/env.h"
#include "serving/proxy.h"
#include "serving/replica_proxy.h"
#include "serving/replication.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

/// The replication determinism contract: a ReplicaProxy caught up to the
/// leader's published sequence serves the *bit-identical* explanation
/// artefacts (SRK keys from Explain, OSRK/SSRK keys maintained over the
/// served context) at any shard count — including after leader
/// compactions, a follower restart, and a torn shipped segment healed by
/// quarantine -> resync -> re-converge.

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::vector<std::string> names;
  if (io::Env::Default()->ListDir(dir, &names).ok()) {
    for (const std::string& entry : names) {
      (void)io::Env::Default()->RemoveFile(dir + "/" + entry);
    }
  }
  return dir;
}

std::unique_ptr<ExplainableProxy> MakeLeader(const Dataset& data,
                                             size_t shards,
                                             const std::string& dir,
                                             size_t capacity = 0,
                                             uint64_t compact_bytes = 0) {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.shards = shards;
  options.context_capacity = capacity;
  options.durability.dir = dir;
  options.durability.sync_every = 1;
  options.durability.compact_threshold_bytes = compact_bytes;
  auto proxy = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
  CCE_CHECK_OK(proxy.status());
  return std::move(proxy).value();
}

std::unique_ptr<ReplicaProxy> MakeReplica(const Dataset& data,
                                          const std::string& ship_dir,
                                          size_t capacity = 0) {
  ReplicaProxy::Options options;
  options.ship_dir = ship_dir;
  options.context_capacity = capacity;
  auto replica = ReplicaProxy::Create(data.schema_ptr(), options);
  CCE_CHECK_OK(replica.status());
  return std::move(replica).value();
}

void ExpectSameContext(const Context& leader, const Context& replica,
                       const std::string& what) {
  ASSERT_EQ(leader.size(), replica.size()) << what;
  for (size_t row = 0; row < leader.size(); ++row) {
    ASSERT_EQ(leader.instance(row), replica.instance(row))
        << what << " row " << row;
    ASSERT_EQ(leader.label(row), replica.label(row))
        << what << " row " << row;
  }
}

void ExpectBitIdenticalKeys(ExplainableProxy& leader, ReplicaProxy& replica,
                            const Dataset& data, size_t probes,
                            const std::string& what) {
  for (size_t probe = 0; probe < probes; ++probe) {
    auto expected = leader.Explain(data.instance(probe), data.label(probe));
    auto actual = replica.Explain(data.instance(probe), data.label(probe));
    ASSERT_TRUE(expected.ok()) << what << ": " << expected.status().ToString();
    ASSERT_TRUE(actual.ok()) << what << ": " << actual.status().ToString();
    EXPECT_EQ(actual->key, expected->key) << what << " probe " << probe;
    EXPECT_EQ(actual->pick_order, expected->pick_order)
        << what << " probe " << probe;
    EXPECT_EQ(actual->achieved_alpha, expected->achieved_alpha)
        << what << " probe " << probe
        << " (bitwise double equality, not approximate)";
    EXPECT_EQ(actual->satisfied, expected->satisfied)
        << what << " probe " << probe;
  }
}

/// OSRK consumes randomness per arrival and SSRK accumulates floats in
/// arrival order: bit-identical keys require the replica to reproduce the
/// exact merged arrival order, not just the same row set.
void ExpectSameStreamingKeys(ExplainableProxy& leader, ReplicaProxy& replica,
                             const Dataset& data, const std::string& what) {
  const Instance& x0 = data.instance(0);
  const Label y0 = data.label(0);
  const Context contexts[2] = {leader.ContextSnapshot(),
                               replica.ContextSnapshot()};
  for (int alg = 0; alg < 2; ++alg) {
    FeatureSet keys[2];
    double alphas[2] = {0.0, 0.0};
    for (int p = 0; p < 2; ++p) {
      const Context& merged = contexts[p];
      if (alg == 0) {
        Osrk::Options options;
        options.seed = 7;
        auto osrk = Osrk::Create(data.schema_ptr(), x0, y0, options);
        CCE_CHECK_OK(osrk.status());
        for (size_t row = 0; row < merged.size(); ++row) {
          (*osrk)->Observe(merged.instance(row), merged.label(row));
        }
        keys[p] = (*osrk)->key();
        alphas[p] = (*osrk)->achieved_alpha();
      } else {
        auto ssrk = Ssrk::Create(data, x0, y0, {});
        CCE_CHECK_OK(ssrk.status());
        for (size_t row = 0; row < merged.size(); ++row) {
          (*ssrk)->Observe(merged.instance(row), merged.label(row));
        }
        keys[p] = (*ssrk)->key();
        alphas[p] = (*ssrk)->achieved_alpha();
      }
    }
    EXPECT_EQ(keys[0], keys[1])
        << what << " " << (alg == 0 ? "OSRK" : "SSRK");
    EXPECT_EQ(alphas[0], alphas[1])
        << what << " " << (alg == 0 ? "OSRK" : "SSRK");
  }
}

TEST(ReplicaEquivalenceTest, CaughtUpReplicaIsBitIdenticalAcrossShardCounts) {
  for (size_t shards : {size_t{1}, size_t{4}}) {
    const std::string tag = "repl_eq_" + std::to_string(shards);
    const std::string leader_dir = FreshDir(tag + "_leader");
    const std::string ship_dir = FreshDir(tag + "_ship");
    Dataset data = cce::testing::RandomContext(150, 5, 3, 11, /*noise=*/0.1);
    auto leader = MakeLeader(data, shards, leader_dir);
    for (size_t row = 0; row < data.size(); ++row) {
      CCE_CHECK_OK(leader->Record(data.instance(row), data.label(row)));
    }

    ShardLogShipper::Options ship_options;
    ship_options.source_dir = leader_dir;
    ship_options.ship_dir = ship_dir;
    ship_options.shards = leader->num_shards();
    ShardLogShipper shipper(ship_options);
    const uint64_t published = leader->PublishedSequence();
    EXPECT_EQ(published, data.size());
    CCE_CHECK_OK(shipper.Ship(published));

    auto replica = MakeReplica(data, ship_dir);
    EXPECT_EQ(replica->published_seq(), published);
    ReplicaProxy::Health health = replica->GetHealth();
    EXPECT_FALSE(health.degraded);
    EXPECT_EQ(health.lag_seq, 0u);

    const std::string what = "shards=" + std::to_string(shards);
    ExpectSameContext(leader->ContextSnapshot(), replica->ContextSnapshot(),
                      what);
    ExpectBitIdenticalKeys(*leader, *replica, data, 12, what);
    ExpectSameStreamingKeys(*leader, *replica, data, what);
  }
}

TEST(ReplicaEquivalenceTest, CompactionRestartAndIncrementalTailAgree) {
  for (size_t shards : {size_t{1}, size_t{4}}) {
    const std::string tag = "repl_compact_" + std::to_string(shards);
    const std::string leader_dir = FreshDir(tag + "_leader");
    const std::string ship_dir = FreshDir(tag + "_ship");
    Dataset data = cce::testing::RandomContext(220, 5, 3, 57, /*noise=*/0.1);
    // A tiny compaction threshold forces several generation changes while
    // recording; a capacity forces real eviction on both sides.
    auto leader = MakeLeader(data, shards, leader_dir, /*capacity=*/64,
                             /*compact_bytes=*/2 * 1024);

    ShardLogShipper::Options ship_options;
    ship_options.source_dir = leader_dir;
    ship_options.ship_dir = ship_dir;
    ship_options.shards = leader->num_shards();
    ShardLogShipper shipper(ship_options);

    // Interleave recording with ship cycles so the replica exercises the
    // incremental tail path (same generation, new frames) and the
    // re-bootstrap path (generation changed under compaction).
    auto replica = MakeReplica(data, ship_dir, /*capacity=*/64);
    for (size_t row = 0; row < data.size(); ++row) {
      CCE_CHECK_OK(leader->Record(data.instance(row), data.label(row)));
      if (row % 40 == 39) {
        CCE_CHECK_OK(shipper.Ship(leader->PublishedSequence()));
        CCE_CHECK_OK(replica->CatchUp());
      }
    }
    CCE_CHECK_OK(shipper.Ship(leader->PublishedSequence()));
    CCE_CHECK_OK(replica->CatchUp());
    CCE_CHECK_OK(replica->Scrub());

    const std::string what = "compaction shards=" + std::to_string(shards);
    EXPECT_EQ(replica->published_seq(), data.size()) << what;
    ExpectSameContext(leader->ContextSnapshot(), replica->ContextSnapshot(),
                      what);
    ExpectBitIdenticalKeys(*leader, *replica, data, 10, what);
    ExpectSameStreamingKeys(*leader, *replica, data, what);

    // Follower restart: a fresh replica on the same ship directory
    // bootstraps to the identical view.
    auto restarted = MakeReplica(data, ship_dir, /*capacity=*/64);
    EXPECT_EQ(restarted->published_seq(), replica->published_seq());
    ExpectSameContext(replica->ContextSnapshot(),
                      restarted->ContextSnapshot(), what + " restart");
    ExpectBitIdenticalKeys(*leader, *restarted, data, 6, what + " restart");
  }
}

TEST(ReplicaEquivalenceTest, TornShippedSegmentQuarantinesThenReconverges) {
  const size_t kShards = 4;
  const std::string leader_dir = FreshDir("repl_torn_leader");
  const std::string ship_dir = FreshDir("repl_torn_ship");
  Dataset data = cce::testing::RandomContext(160, 5, 3, 91, /*noise=*/0.1);
  auto leader = MakeLeader(data, kShards, leader_dir);

  ShardLogShipper::Options ship_options;
  ship_options.source_dir = leader_dir;
  ship_options.ship_dir = ship_dir;
  ship_options.shards = kShards;
  ShardLogShipper shipper(ship_options);

  // Phase 1: ship half the traffic and catch the replica up cleanly.
  for (size_t row = 0; row < 80; ++row) {
    CCE_CHECK_OK(leader->Record(data.instance(row), data.label(row)));
  }
  CCE_CHECK_OK(shipper.Ship(leader->PublishedSequence()));
  auto replica = MakeReplica(data, ship_dir);
  const uint64_t clean_view = replica->published_seq();
  EXPECT_EQ(clean_view, 80u);
  const Context clean_context = replica->ContextSnapshot();

  // Phase 2: more leader traffic, ship, then tear one shipped segment
  // behind the manifest's back (shorter than the bytes it promises).
  for (size_t row = 80; row < data.size(); ++row) {
    CCE_CHECK_OK(leader->Record(data.instance(row), data.label(row)));
  }
  CCE_CHECK_OK(shipper.Ship(leader->PublishedSequence()));
  {
    io::Env* env = io::Env::Default();
    const std::string victim = ship_dir + "/shard.2.wal";
    std::string content;
    CCE_CHECK_OK(env->ReadFileToString(victim, &content));
    ASSERT_GT(content.size(), 8u);
    content.resize(content.size() - 5);
    auto torn = env->NewTruncatedFile(victim);
    CCE_CHECK_OK(torn.status());
    CCE_CHECK_OK((*torn)->Append(content));
    CCE_CHECK_OK((*torn)->Close());
  }

  // The torn shard's tail quarantines; the other shards apply, but the
  // view holds at the old watermark — stale, consistent, degraded.
  CCE_CHECK_OK(replica->CatchUp());
  ReplicaProxy::Health health = replica->GetHealth();
  EXPECT_TRUE(health.degraded);
  ASSERT_EQ(health.tails.size(), kShards);
  EXPECT_TRUE(health.tails[2].quarantined);
  EXPECT_EQ(health.tails[2].cause, "wal");
  EXPECT_EQ(replica->published_seq(), clean_view)
      << "a quarantined tail must hold the view, not skew it";
  EXPECT_GT(health.lag_seq, 0u) << "staleness must be visible";
  ExpectSameContext(clean_context, replica->ContextSnapshot(),
                    "quarantined view");
  auto degraded_key =
      replica->Explain(data.instance(0), data.label(0));
  ASSERT_TRUE(degraded_key.ok());
  EXPECT_TRUE(degraded_key->degraded)
      << "serving from a quarantined replication path must say so";

  // Phase 3: the next ship cycle rewrites the shipped files; the replica
  // resyncs the torn shard and re-converges to the leader bit-for-bit.
  CCE_CHECK_OK(shipper.Ship(leader->PublishedSequence()));
  CCE_CHECK_OK(replica->CatchUp());
  health = replica->GetHealth();
  EXPECT_FALSE(health.degraded);
  EXPECT_EQ(health.lag_seq, 0u);
  EXPECT_EQ(replica->published_seq(), data.size());
  ExpectSameContext(leader->ContextSnapshot(), replica->ContextSnapshot(),
                    "re-converged");
  ExpectBitIdenticalKeys(*leader, *replica, data, 10, "re-converged");
  ExpectSameStreamingKeys(*leader, *replica, data, "re-converged");

  // ForceResync (the runbook's big hammer) lands in the same place.
  CCE_CHECK_OK(replica->ForceResync());
  EXPECT_EQ(replica->published_seq(), data.size());
  ExpectSameContext(leader->ContextSnapshot(), replica->ContextSnapshot(),
                    "forced resync");
}

}  // namespace
}  // namespace cce::serving
