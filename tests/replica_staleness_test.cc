#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "io/env.h"
#include "serving/proxy.h"
#include "serving/replica_proxy.h"
#include "serving/replication.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

/// The bounded-staleness contract, raced: while the leader absorbs write
/// bursts and a shipper publishes mid-burst cycles, every view the
/// follower serves is a *prefix window* of the leader's acknowledged
/// history — rows 0..P of the recorded stream for the view's published
/// sequence P, never a torn or interleaved mix. The follower may be
/// stale (P behind the leader), never inconsistent.
///
/// Runs with background tailing + scrubbing enabled so CatchUp, Scrub and
/// Explain race for real; `scripts/check.sh SUITE=stress` rebuilds this
/// under TSan with CCE_STRESS=1 for a larger burst.

bool StressMode() {
  const char* raw = std::getenv("CCE_STRESS");
  return raw != nullptr && raw[0] != '\0' && raw[0] != '0';
}

void WipeDir(const std::string& dir) {
  std::vector<std::string> names;
  if (io::Env::Default()->ListDir(dir, &names).ok()) {
    for (const std::string& entry : names) {
      (void)io::Env::Default()->RemoveFile(dir + "/" + entry);
    }
  }
}

TEST(ReplicaStalenessTest, FollowerViewsArePrefixWindowsDuringWriteBursts) {
  const size_t kShards = 4;
  const size_t kRows = StressMode() ? 600 : 200;
  const std::string leader_dir = ::testing::TempDir() + "/repl_stale_leader";
  const std::string ship_dir = ::testing::TempDir() + "/repl_stale_ship";
  WipeDir(leader_dir);
  WipeDir(ship_dir);

  Dataset data = cce::testing::RandomContext(kRows, 5, 3, 23, /*noise=*/0.1);

  ExplainableProxy::Options leader_options;
  leader_options.monitor_drift = false;
  leader_options.shards = kShards;
  leader_options.durability.dir = leader_dir;
  leader_options.durability.sync_every = 1;
  // Small threshold: compactions race the shipper's snapshot+wal reads,
  // exercising the generation fence mid-burst.
  leader_options.durability.compact_threshold_bytes = 8 * 1024;
  auto leader_or =
      ExplainableProxy::Create(data.schema_ptr(), nullptr, leader_options);
  CCE_CHECK_OK(leader_or.status());
  ExplainableProxy& leader = **leader_or;

  ReplicaProxy::Options replica_options;
  replica_options.ship_dir = ship_dir;
  replica_options.poll_interval = std::chrono::milliseconds(1);
  replica_options.scrub_every = 4;
  auto replica_or = ReplicaProxy::Create(data.schema_ptr(), replica_options);
  CCE_CHECK_OK(replica_or.status());
  ReplicaProxy& replica = **replica_or;
  replica.Start();

  std::atomic<bool> writer_done{false};

  // Writer: the burst. One thread, so the leader's global sequence order
  // is exactly the dataset order — the oracle for the prefix check.
  std::thread writer([&] {
    for (size_t row = 0; row < data.size(); ++row) {
      CCE_CHECK_OK(leader.Record(data.instance(row), data.label(row)));
      if (row % 16 == 15) std::this_thread::yield();
    }
    writer_done.store(true, std::memory_order_release);
  });

  // Shipper: publishes whatever watermark the leader exposes, mid-burst.
  std::thread shipper_thread([&] {
    ShardLogShipper::Options ship_options;
    ship_options.source_dir = leader_dir;
    ship_options.ship_dir = ship_dir;
    ship_options.shards = kShards;
    ShardLogShipper shipper(ship_options);
    while (!writer_done.load(std::memory_order_acquire)) {
      CCE_CHECK_OK(shipper.Ship(leader.PublishedSequence()));
      std::this_thread::yield();
    }
    CCE_CHECK_OK(shipper.Ship(leader.PublishedSequence()));
  });

  // Checker: every follower view observed mid-burst must be data[0..P).
  uint64_t last_view_size = 0;
  size_t probes_served = 0;
  while (!writer_done.load(std::memory_order_acquire)) {
    const Context view = replica.ContextSnapshot();
    ASSERT_LE(view.size(), data.size());
    ASSERT_GE(view.size(), last_view_size)
        << "the follower view went backwards mid-burst";
    last_view_size = view.size();
    for (size_t row = 0; row < view.size(); ++row) {
      ASSERT_EQ(view.instance(row), data.instance(row))
          << "view of size " << view.size() << " is not a prefix at row "
          << row;
      ASSERT_EQ(view.label(row), data.label(row))
          << "view of size " << view.size() << " is not a prefix at row "
          << row;
    }
    if (view.size() > 0) {
      auto key = replica.Explain(data.instance(0), data.label(0));
      // The view can only grow, so once non-empty Explain must serve.
      ASSERT_TRUE(key.ok()) << key.status().ToString();
      ++probes_served;
    }
    std::this_thread::yield();
  }
  writer.join();
  shipper_thread.join();

  // Drain: the final ship cycle carries the full burst; the background
  // tailer must converge to it.
  const uint64_t final_published = leader.PublishedSequence();
  EXPECT_EQ(final_published, data.size());
  for (int spin = 0; spin < 2000 && replica.published_seq() < final_published;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  replica.Stop();
  CCE_CHECK_OK(replica.CatchUp());
  CCE_CHECK_OK(replica.Scrub());

  ReplicaProxy::Health health = replica.GetHealth();
  EXPECT_EQ(health.view_published, final_published);
  EXPECT_EQ(health.lag_seq, 0u);
  EXPECT_FALSE(health.degraded);
  EXPECT_GT(probes_served, 0u) << "the checker never raced a live view";

  // Caught up, the follower is bit-identical to the leader.
  const Context leader_ctx = leader.ContextSnapshot();
  const Context replica_ctx = replica.ContextSnapshot();
  ASSERT_EQ(leader_ctx.size(), replica_ctx.size());
  for (size_t row = 0; row < leader_ctx.size(); ++row) {
    ASSERT_EQ(leader_ctx.instance(row), replica_ctx.instance(row));
    ASSERT_EQ(leader_ctx.label(row), replica_ctx.label(row));
  }
  for (size_t probe = 0; probe < 8; ++probe) {
    auto expected = leader.Explain(data.instance(probe), data.label(probe));
    auto actual = replica.Explain(data.instance(probe), data.label(probe));
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(actual->key, expected->key) << "probe " << probe;
    EXPECT_EQ(actual->pick_order, expected->pick_order) << "probe " << probe;
    EXPECT_EQ(actual->achieved_alpha, expected->achieved_alpha)
        << "probe " << probe;
    EXPECT_EQ(actual->satisfied, expected->satisfied) << "probe " << probe;
  }
}

}  // namespace
}  // namespace cce::serving
