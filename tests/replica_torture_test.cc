#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "serving/context_shard.h"
#include "serving/proxy.h"
#include "serving/replica_proxy.h"
#include "serving/replication.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

/// Dual kill-and-recover torture for the replication pipeline: every
/// iteration builds a fresh leader AND a fresh follower over the same
/// directories (neither gets a clean shutdown — the kill points), with
/// *separate* seeded fault injectors on the leader/shipper I/O path and
/// on the follower catch-up path. Invariants:
///
///   1. Neither Create() ever fails — damage quarantines (leader shards
///      or follower tails), it never kills a process.
///   2. The follower never serves a torn view: lag accounting stays
///      coherent and Explain either serves or reports an empty view.
///   3. A degraded replication path is visible (degraded flag + cause).
///   4. With faults switched off, one clean ship + catch-up re-converges
///      the follower to the leader bit-for-bit.
///
/// Iterations default to 25 (tier-1 budget); `scripts/check.sh
/// SUITE=replica` exports CCE_REPLICA_ITERS=200 for the full gate
/// (ASan-clean). Replay a CI failure with CCE_FAULT_SEED=<seed>.

size_t IterationBudget() {
  const char* raw = std::getenv("CCE_REPLICA_ITERS");
  if (raw == nullptr) return 25;
  const long parsed = std::strtol(raw, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : 25;
}

void WipeDir(const std::string& dir) {
  std::vector<std::string> names;
  if (io::Env::Default()->ListDir(dir, &names).ok()) {
    for (const std::string& entry : names) {
      (void)io::Env::Default()->RemoveFile(dir + "/" + entry);
    }
  }
}

TEST(ReplicaTortureTest, DualKillRecoverLoopStaysConsistent) {
  const size_t kShards = 4;
  const size_t kIterations = IterationBudget();
  const std::string leader_dir = ::testing::TempDir() + "/repl_torture_leader";
  const std::string ship_dir = ::testing::TempDir() + "/repl_torture_ship";
  WipeDir(leader_dir);
  WipeDir(ship_dir);

  Dataset data = cce::testing::RandomContext(300, 4, 2, 17, /*noise=*/0.1);
  Rng rng(20260808);
  const uint64_t base_seed = cce::testing::FaultScheduleSeed(5000);

  size_t leader_quarantines = 0;
  size_t tail_quarantines = 0;
  size_t manifest_failures = 0;
  size_t fence_or_skip_cycles = 0;
  size_t degraded_views = 0;

  for (size_t iter = 0; iter < kIterations; ++iter) {
    // Two independent fault schedules: the leader/shipper side and the
    // follower side fail on their own clocks, like separate machines.
    const uint64_t leader_seed = base_seed + 2 * iter;
    const uint64_t follower_seed = base_seed + 2 * iter + 1;
    io::FaultInjectingEnv::Options leader_faults;
    leader_faults.seed = leader_seed;
    io::FaultInjectingEnv::Options follower_faults;
    follower_faults.seed = follower_seed;
    if (iter % 4 != 3) {  // every 4th iteration runs fault-free
      leader_faults.write_error_probability = 0.02;
      leader_faults.torn_write_probability = 0.02;
      leader_faults.sync_error_probability = 0.01;
      leader_faults.read_error_probability = 0.01;
      follower_faults.read_error_probability = 0.03;
      follower_faults.short_read_probability = 0.02;
    }
    io::FaultInjectingEnv leader_env(io::Env::Default(), leader_faults);
    io::FaultInjectingEnv follower_env(io::Env::Default(), follower_faults);

    ExplainableProxy::Options leader_options;
    leader_options.monitor_drift = false;
    leader_options.shards = kShards;
    leader_options.durability.dir = leader_dir;
    leader_options.durability.sync_every = 1;
    leader_options.durability.compact_threshold_bytes = 8 * 1024;
    leader_options.durability.env = &leader_env;
    auto leader_or =
        ExplainableProxy::Create(data.schema_ptr(), nullptr, leader_options);
    ASSERT_TRUE(leader_or.ok())
        << "iteration " << iter << " (CCE_FAULT_SEED=" << leader_seed
        << "): " << leader_or.status().ToString();
    ExplainableProxy& leader = **leader_or;

    // Keep the leader making progress: repair about half the quarantined
    // shards so some iterations ship fresh generations from base 0.
    HealthSnapshot leader_health = leader.Health();
    for (size_t shard = 0; shard < kShards; ++shard) {
      if (leader_health.shards[shard].state ==
          ContextShard::State::kQuarantined) {
        ++leader_quarantines;
        if (rng.Bernoulli(0.5)) {
          // Repair itself runs through the faulty env, so it may fail
          // with a clean injected I/O error; anything else is a bug.
          Status repaired = leader.RepairShard(shard);
          EXPECT_TRUE(repaired.ok() ||
                      repaired.code() == StatusCode::kIoError)
              << repaired.ToString();
        }
      }
    }

    // A write burst through the faulty env; rejected writes are fine as
    // long as they speak the fault vocabulary.
    const size_t burst = 8 + rng.Uniform(24);
    for (size_t i = 0; i < burst; ++i) {
      const size_t row = rng.Uniform(data.size());
      Status recorded = leader.Record(data.instance(row), data.label(row));
      if (!recorded.ok()) {
        ASSERT_TRUE(recorded.code() == StatusCode::kUnavailable ||
                    recorded.code() == StatusCode::kIoError)
            << recorded.ToString();
      }
    }

    // Ship through the leader-side faults. Fail-soft contract: shard-level
    // damage skips shards (stale manifest entries), only a manifest write
    // failure surfaces — and even that must be a clean I/O error.
    ShardLogShipper::Options ship_options;
    ship_options.source_dir = leader_dir;
    ship_options.ship_dir = ship_dir;
    ship_options.shards = kShards;
    ship_options.env = &leader_env;
    ShardLogShipper shipper(ship_options);
    const size_t cycles = 1 + rng.Uniform(3);
    for (size_t c = 0; c < cycles; ++c) {
      Status shipped = shipper.Ship(leader.PublishedSequence());
      if (!shipped.ok()) {
        ASSERT_EQ(shipped.code(), StatusCode::kIoError)
            << "iteration " << iter << " (CCE_FAULT_SEED=" << leader_seed
            << "): " << shipped.ToString();
        ++fence_or_skip_cycles;
      }
    }

    // Invariant 1, follower half: Create bootstraps fail-soft through the
    // follower-side faults, whatever state the ship directory is in.
    ReplicaProxy::Options replica_options;
    replica_options.ship_dir = ship_dir;
    replica_options.env = &follower_env;
    auto replica_or =
        ReplicaProxy::Create(data.schema_ptr(), replica_options);
    ASSERT_TRUE(replica_or.ok())
        << "iteration " << iter << " (CCE_FAULT_SEED=" << follower_seed
        << "): " << replica_or.status().ToString();
    ReplicaProxy& replica = **replica_or;
    CCE_CHECK_OK(replica.CatchUp());
    if (rng.Bernoulli(0.5)) CCE_CHECK_OK(replica.Scrub());
    if (rng.Bernoulli(0.2)) CCE_CHECK_OK(replica.ForceResync());

    // Invariants 2 + 3: the view the follower serves is coherent.
    ReplicaProxy::Health health = replica.GetHealth();
    EXPECT_LE(health.view_published, health.latest_published)
        << "iteration " << iter;
    EXPECT_EQ(health.lag_seq,
              health.latest_published - health.view_published)
        << "iteration " << iter;
    tail_quarantines += static_cast<size_t>(
        std::count_if(health.tails.begin(), health.tails.end(),
                      [](const ReplicaProxy::Health::Tail& tail) {
                        return tail.quarantined;
                      }));
    manifest_failures += health.manifest_failures;
    if (health.degraded) ++degraded_views;
    for (const ReplicaProxy::Health::Tail& tail : health.tails) {
      if (tail.quarantined) {
        EXPECT_TRUE(health.degraded) << "iteration " << iter;
        EXPECT_FALSE(tail.cause.empty()) << "iteration " << iter;
      }
    }

    const Context view = replica.ContextSnapshot();
    EXPECT_EQ(view.size(), health.rows_in_view) << "iteration " << iter;
    auto key = replica.Explain(data.instance(0), data.label(0));
    if (view.size() == 0) {
      EXPECT_FALSE(key.ok()) << "an empty view must not explain";
    } else {
      ASSERT_TRUE(key.ok())
          << "iteration " << iter << " (CCE_FAULT_SEED=" << follower_seed
          << "): " << key.status().ToString();
      if (health.degraded) {
        EXPECT_TRUE(key->degraded)
            << "iteration " << iter
            << ": serving through a damaged replication path must say so";
      }
    }
    // Both sides are dropped here with no clean shutdown — the dual kill.
  }

  // Invariant 4: faults off, everything re-converges bit-for-bit.
  ExplainableProxy::Options leader_options;
  leader_options.monitor_drift = false;
  leader_options.shards = kShards;
  leader_options.durability.dir = leader_dir;
  leader_options.durability.sync_every = 1;
  auto leader_or =
      ExplainableProxy::Create(data.schema_ptr(), nullptr, leader_options);
  ASSERT_TRUE(leader_or.ok()) << leader_or.status().ToString();
  ExplainableProxy& leader = **leader_or;
  HealthSnapshot leader_health = leader.Health();
  for (size_t shard = 0; shard < kShards; ++shard) {
    if (leader_health.shards[shard].state ==
        ContextShard::State::kQuarantined) {
      CCE_CHECK_OK(leader.RepairShard(shard));
    }
  }
  for (size_t row = 0; row < 32; ++row) {
    CCE_CHECK_OK(leader.Record(data.instance(row), data.label(row)));
  }

  ShardLogShipper::Options ship_options;
  ship_options.source_dir = leader_dir;
  ship_options.ship_dir = ship_dir;
  ship_options.shards = kShards;
  ShardLogShipper clean_shipper(ship_options);
  const uint64_t published = leader.PublishedSequence();
  CCE_CHECK_OK(clean_shipper.Ship(published));

  ReplicaProxy::Options replica_options;
  replica_options.ship_dir = ship_dir;
  auto replica_or = ReplicaProxy::Create(data.schema_ptr(), replica_options);
  ASSERT_TRUE(replica_or.ok()) << replica_or.status().ToString();
  ReplicaProxy& replica = **replica_or;
  CCE_CHECK_OK(replica.Scrub());

  EXPECT_EQ(replica.published_seq(), published);
  ReplicaProxy::Health health = replica.GetHealth();
  EXPECT_FALSE(health.degraded)
      << "a clean ship cycle must clear every quarantine";
  const Context leader_ctx = leader.ContextSnapshot();
  const Context replica_ctx = replica.ContextSnapshot();
  ASSERT_EQ(leader_ctx.size(), replica_ctx.size());
  for (size_t row = 0; row < leader_ctx.size(); ++row) {
    ASSERT_EQ(leader_ctx.instance(row), replica_ctx.instance(row)) << row;
    ASSERT_EQ(leader_ctx.label(row), replica_ctx.label(row)) << row;
  }
  for (size_t probe = 0; probe < 6; ++probe) {
    auto expected = leader.Explain(data.instance(probe), data.label(probe));
    auto actual = replica.Explain(data.instance(probe), data.label(probe));
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(actual->key, expected->key) << "probe " << probe;
    EXPECT_EQ(actual->pick_order, expected->pick_order) << "probe " << probe;
    EXPECT_EQ(actual->achieved_alpha, expected->achieved_alpha)
        << "probe " << probe;
    EXPECT_EQ(actual->satisfied, expected->satisfied) << "probe " << probe;
  }

  // Over a full torture budget the schedules must have actually hurt:
  // soft-expect the failure machinery fired (not asserted for small
  // tier-1 budgets).
  if (kIterations >= 200) {
    EXPECT_GT(leader_quarantines + tail_quarantines + manifest_failures +
                  fence_or_skip_cycles,
              0u)
        << "200 faulty iterations never exercised a failure path";
    EXPECT_GT(degraded_views, 0u);
  }
}

}  // namespace
}  // namespace cce::serving
