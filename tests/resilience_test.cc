#include "serving/resilience.h"

#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace cce::serving {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::vector<int64_t> BackoffSchedule(const RetryPolicy::Options& options,
                                     uint64_t seed, int steps) {
  RetryPolicy policy(options);
  Rng rng(seed);
  std::vector<int64_t> delays;
  for (int i = 0; i < steps; ++i) {
    delays.push_back(policy.NextBackoff(&rng).count());
  }
  return delays;
}

TEST(RetryPolicyTest, PureExponentialWithoutJitter) {
  RetryPolicy::Options options;
  options.initial_backoff = milliseconds(2);
  options.max_backoff = milliseconds(40);
  options.multiplier = 2.0;
  options.jitter = false;
  RetryPolicy policy(options);
  EXPECT_EQ(policy.NextBackoff(nullptr).count(), 2);
  EXPECT_EQ(policy.NextBackoff(nullptr).count(), 4);
  EXPECT_EQ(policy.NextBackoff(nullptr).count(), 8);
  EXPECT_EQ(policy.NextBackoff(nullptr).count(), 16);
  EXPECT_EQ(policy.NextBackoff(nullptr).count(), 32);
  EXPECT_EQ(policy.NextBackoff(nullptr).count(), 40) << "capped";
  EXPECT_EQ(policy.NextBackoff(nullptr).count(), 40);
  policy.Reset();
  EXPECT_EQ(policy.NextBackoff(nullptr).count(), 2)
      << "Reset must restart the schedule";
}

TEST(RetryPolicyTest, DecorrelatedJitterStaysInWindowAndUnderCap) {
  RetryPolicy::Options options;
  options.initial_backoff = milliseconds(1);
  options.max_backoff = milliseconds(50);
  RetryPolicy policy(options);
  Rng rng(99);
  int64_t previous = options.initial_backoff.count();
  for (int i = 0; i < 200; ++i) {
    int64_t delay = policy.NextBackoff(&rng).count();
    EXPECT_GE(delay, options.initial_backoff.count());
    EXPECT_LE(delay, std::min<int64_t>(options.max_backoff.count(),
                                       std::max<int64_t>(previous * 3, 1)));
    previous = delay;
  }
}

TEST(RetryPolicyTest, JitterIsDeterministicInTheSeed) {
  RetryPolicy::Options options;
  EXPECT_EQ(BackoffSchedule(options, 5, 50), BackoffSchedule(options, 5, 50));
  EXPECT_NE(BackoffSchedule(options, 5, 50), BackoffSchedule(options, 6, 50));
}

TEST(RetryPolicyTest, ShouldRetryHonoursTheAttemptBudget) {
  RetryPolicy::Options options;
  options.max_attempts = 3;
  RetryPolicy policy(options);
  EXPECT_TRUE(policy.ShouldRetry(1));
  EXPECT_TRUE(policy.ShouldRetry(2));
  EXPECT_FALSE(policy.ShouldRetry(3));

  options.max_attempts = 1;
  RetryPolicy no_retries(options);
  EXPECT_FALSE(no_retries.ShouldRetry(1)) << "max_attempts=1 disables retry";
}

/// Fixture owning a manually advanced clock, so breaker cooldowns are
/// exercised without real waiting.
class CircuitBreakerTest : public ::testing::Test {
 protected:
  CircuitBreaker Make(const CircuitBreaker::Options& options) {
    return CircuitBreaker(options, [this] { return now_; });
  }

  void Advance(milliseconds d) { now_ += d; }

  steady_clock::time_point now_ = steady_clock::time_point{} +
                                  std::chrono::hours(1);
};

TEST_F(CircuitBreakerTest, TripsOpenAfterConsecutiveFailures) {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  CircuitBreaker breaker = Make(options);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.AllowRequest());
    breaker.RecordFailure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  }
  // A success resets the consecutive count.
  breaker.RecordSuccess();
  for (int i = 0; i < 2; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trip_count(), 1u);
}

TEST_F(CircuitBreakerTest, OpenRejectsUntilCooldownThenHalfOpens) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.open_cooldown = milliseconds(100);
  CircuitBreaker breaker = Make(options);
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  EXPECT_FALSE(breaker.AllowRequest());
  Advance(milliseconds(99));
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.rejected_count(), 2u);

  Advance(milliseconds(1));
  EXPECT_TRUE(breaker.AllowRequest()) << "cooldown elapsed: half-open probe";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST_F(CircuitBreakerTest, HalfOpenAdmitsOnlyTheProbeBudget) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.open_cooldown = milliseconds(10);
  options.probe_budget = 2;
  CircuitBreaker breaker = Make(options);
  breaker.RecordFailure();
  Advance(milliseconds(10));

  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest()) << "probe budget exhausted";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST_F(CircuitBreakerTest, ProbeSuccessesCloseTheBreaker) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.open_cooldown = milliseconds(10);
  options.probe_budget = 3;
  options.successes_to_close = 2;
  CircuitBreaker breaker = Make(options);
  breaker.RecordFailure();
  Advance(milliseconds(10));

  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST_F(CircuitBreakerTest, AProbeFailureReopensAndRestartsTheCooldown) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.open_cooldown = milliseconds(10);
  CircuitBreaker breaker = Make(options);
  breaker.RecordFailure();
  Advance(milliseconds(10));
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trip_count(), 2u);
  EXPECT_FALSE(breaker.AllowRequest()) << "cooldown restarted";
  Advance(milliseconds(10));
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(HealthSnapshotTest, RendersEveryCounter) {
  HealthSnapshot snapshot;
  snapshot.breaker_state = CircuitBreaker::State::kHalfOpen;
  snapshot.predicts = 7;
  snapshot.retries = 3;
  std::string rendered = snapshot.ToString();
  EXPECT_NE(rendered.find("breaker=half-open"), std::string::npos);
  EXPECT_NE(rendered.find("predicts=7"), std::string::npos);
  EXPECT_NE(rendered.find("retries=3"), std::string::npos);
}

}  // namespace
}  // namespace cce::serving
