#include "sat/solver.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace cce::sat {
namespace {

TEST(CnfTest, ExactlyOneEncodesBothDirections) {
  CnfFormula f;
  Var a = f.NewVar();
  Var b = f.NewVar();
  Var c = f.NewVar();
  f.AddExactlyOne({Pos(a), Pos(b), Pos(c)});
  // at-least-one + 3 pairwise at-most-one clauses.
  EXPECT_EQ(f.clauses().size(), 4u);
}

TEST(SolverTest, EmptyFormulaIsSat) {
  CnfFormula f;
  Solver solver(f);
  EXPECT_EQ(solver.Solve(), Solver::Outcome::kSat);
}

TEST(SolverTest, SingleUnitClause) {
  CnfFormula f;
  Var a = f.NewVar();
  f.AddUnit(Pos(a));
  Solver solver(f);
  ASSERT_EQ(solver.Solve(), Solver::Outcome::kSat);
  EXPECT_TRUE(solver.ModelValue(a));
}

TEST(SolverTest, ContradictoryUnitsAreUnsat) {
  CnfFormula f;
  Var a = f.NewVar();
  f.AddUnit(Pos(a));
  f.AddUnit(Neg(a));
  Solver solver(f);
  EXPECT_EQ(solver.Solve(), Solver::Outcome::kUnsat);
}

TEST(SolverTest, EmptyClauseIsUnsat) {
  CnfFormula f;
  f.AddClause({});
  Solver solver(f);
  EXPECT_EQ(solver.Solve(), Solver::Outcome::kUnsat);
}

TEST(SolverTest, SimpleImplicationChain) {
  CnfFormula f;
  Var a = f.NewVar();
  Var b = f.NewVar();
  Var c = f.NewVar();
  f.AddUnit(Pos(a));
  f.AddBinary(Neg(a), Pos(b));  // a -> b
  f.AddBinary(Neg(b), Pos(c));  // b -> c
  Solver solver(f);
  ASSERT_EQ(solver.Solve(), Solver::Outcome::kSat);
  EXPECT_TRUE(solver.ModelValue(a));
  EXPECT_TRUE(solver.ModelValue(b));
  EXPECT_TRUE(solver.ModelValue(c));
}

TEST(SolverTest, RequiresConflictAnalysis) {
  // (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ c) ∧ (¬a ∨ ¬c) is UNSAT.
  CnfFormula f;
  Var a = f.NewVar();
  Var b = f.NewVar();
  Var c = f.NewVar();
  f.AddBinary(Pos(a), Pos(b));
  f.AddBinary(Pos(a), Neg(b));
  f.AddBinary(Neg(a), Pos(c));
  f.AddBinary(Neg(a), Neg(c));
  Solver solver(f);
  EXPECT_EQ(solver.Solve(), Solver::Outcome::kUnsat);
}

TEST(SolverTest, TautologousClausesIgnored) {
  CnfFormula f;
  Var a = f.NewVar();
  Var b = f.NewVar();
  f.AddClause({Pos(a), Neg(a)});
  f.AddUnit(Pos(b));
  Solver solver(f);
  EXPECT_EQ(solver.Solve(), Solver::Outcome::kSat);
}

TEST(SolverTest, ModelSatisfiesAllClauses) {
  // Random satisfiable instance: a solution is planted.
  Rng rng(5);
  const int num_vars = 30;
  std::vector<bool> planted(num_vars);
  for (auto&& bit : planted) bit = rng.Bernoulli(0.5);
  CnfFormula f;
  for (int v = 0; v < num_vars; ++v) f.NewVar();
  for (int c = 0; c < 120; ++c) {
    Clause clause;
    bool satisfied = false;
    for (int k = 0; k < 3; ++k) {
      Var v = static_cast<Var>(rng.Uniform(num_vars));
      bool negate = rng.Bernoulli(0.5);
      clause.push_back(negate ? Neg(v) : Pos(v));
      satisfied |= (planted[v] != negate);
    }
    if (!satisfied) {
      // Flip one literal to agree with the planted assignment.
      Var v = clause[0].var();
      clause[0] = planted[v] ? Pos(v) : Neg(v);
    }
    f.AddClause(clause);
  }
  Solver solver(f);
  ASSERT_EQ(solver.Solve(), Solver::Outcome::kSat);
  for (const Clause& clause : f.clauses()) {
    bool sat = false;
    for (Lit lit : clause) {
      sat |= (solver.ModelValue(lit.var()) != lit.negated());
    }
    EXPECT_TRUE(sat);
  }
}

TEST(SolverTest, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic UNSAT needing real search.
  const int pigeons = 4;
  const int holes = 3;
  CnfFormula f;
  std::vector<std::vector<Var>> var(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) var[p][h] = f.NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Pos(var[p][h]));
    f.AddClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.AddBinary(Neg(var[p1][h]), Neg(var[p2][h]));
      }
    }
  }
  Solver solver(f);
  EXPECT_EQ(solver.Solve(), Solver::Outcome::kUnsat);
  EXPECT_GT(solver.stats().conflicts, 0);
}

TEST(SolverTest, AssumptionsRestrictModels) {
  CnfFormula f;
  Var a = f.NewVar();
  Var b = f.NewVar();
  f.AddBinary(Pos(a), Pos(b));
  Solver solver(f);
  ASSERT_EQ(solver.Solve({Neg(a)}), Solver::Outcome::kSat);
  EXPECT_FALSE(solver.ModelValue(a));
  EXPECT_TRUE(solver.ModelValue(b));
}

TEST(SolverTest, ConflictingAssumptionsUnsat) {
  CnfFormula f;
  Var a = f.NewVar();
  Var b = f.NewVar();
  f.AddBinary(Neg(a), Pos(b));  // a -> b
  Solver solver(f);
  EXPECT_EQ(solver.Solve({Pos(a), Neg(b)}), Solver::Outcome::kUnsat);
}

TEST(SolverTest, ReentrantSolveWithDifferentAssumptions) {
  CnfFormula f;
  Var a = f.NewVar();
  Var b = f.NewVar();
  f.AddBinary(Pos(a), Pos(b));
  Solver solver(f);
  EXPECT_EQ(solver.Solve({Neg(a)}), Solver::Outcome::kSat);
  EXPECT_EQ(solver.Solve({Neg(b)}), Solver::Outcome::kSat);
  EXPECT_EQ(solver.Solve({Neg(a), Neg(b)}), Solver::Outcome::kUnsat);
  EXPECT_EQ(solver.Solve(), Solver::Outcome::kSat);
}

TEST(SolverTest, ConflictBudgetReturnsUnknown) {
  // A hard pigeonhole instance with a 1-conflict budget must give up.
  const int pigeons = 7;
  const int holes = 6;
  CnfFormula f;
  std::vector<std::vector<Var>> var(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) var[p][h] = f.NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    Clause clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Pos(var[p][h]));
    f.AddClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        f.AddBinary(Neg(var[p1][h]), Neg(var[p2][h]));
      }
    }
  }
  Solver::Options options;
  options.max_conflicts = 1;
  Solver solver(f, options);
  EXPECT_EQ(solver.Solve(), Solver::Outcome::kUnknown);
}

// Brute-force cross-check on random small formulas.
class SolverRandomTest : public ::testing::TestWithParam<uint64_t> {};

bool BruteForceSat(const CnfFormula& f) {
  const int n = f.num_vars();
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool all = true;
    for (const Clause& clause : f.clauses()) {
      bool sat = false;
      for (Lit lit : clause) {
        bool value = (mask >> lit.var()) & 1u;
        sat |= (value != lit.negated());
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST_P(SolverRandomTest, AgreesWithBruteForce) {
  Rng rng(GetParam());
  const int num_vars = 8;
  const int num_clauses = 34;  // near the 3-SAT phase transition
  CnfFormula f;
  for (int v = 0; v < num_vars; ++v) f.NewVar();
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause;
    for (int k = 0; k < 3; ++k) {
      Var v = static_cast<Var>(rng.Uniform(num_vars));
      clause.push_back(rng.Bernoulli(0.5) ? Neg(v) : Pos(v));
    }
    f.AddClause(clause);
  }
  Solver solver(f);
  Solver::Outcome outcome = solver.Solve();
  bool expected = BruteForceSat(f);
  EXPECT_EQ(outcome, expected ? Solver::Outcome::kSat
                              : Solver::Outcome::kUnsat);
  if (outcome == Solver::Outcome::kSat) {
    for (const Clause& clause : f.clauses()) {
      bool sat = false;
      for (Lit lit : clause) {
        sat |= (solver.ModelValue(lit.var()) != lit.negated());
      }
      EXPECT_TRUE(sat);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, SolverRandomTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace cce::sat
