#include "core/schema.h"

#include <gtest/gtest.h>

namespace cce {
namespace {

TEST(SchemaTest, AddFeatureAssignsSequentialIds) {
  Schema s;
  EXPECT_EQ(s.AddFeature("a"), 0u);
  EXPECT_EQ(s.AddFeature("b"), 1u);
  EXPECT_EQ(s.num_features(), 2u);
  EXPECT_EQ(s.FeatureName(1), "b");
}

TEST(SchemaTest, InternValueIsIdempotent) {
  Schema s;
  FeatureId f = s.AddFeature("color");
  ValueId red = s.InternValue(f, "red");
  ValueId blue = s.InternValue(f, "blue");
  EXPECT_NE(red, blue);
  EXPECT_EQ(s.InternValue(f, "red"), red);
  EXPECT_EQ(s.DomainSize(f), 2u);
  EXPECT_EQ(s.ValueName(f, blue), "blue");
}

TEST(SchemaTest, ValuesAreScopedPerFeature) {
  Schema s;
  FeatureId f0 = s.AddFeature("a");
  FeatureId f1 = s.AddFeature("b");
  EXPECT_EQ(s.InternValue(f0, "x"), s.InternValue(f1, "x"));
  EXPECT_EQ(s.DomainSize(f0), 1u);
  EXPECT_EQ(s.DomainSize(f1), 1u);
}

TEST(SchemaTest, LookupValueNotFound) {
  Schema s;
  FeatureId f = s.AddFeature("a");
  s.InternValue(f, "x");
  EXPECT_TRUE(s.LookupValue(f, "x").ok());
  EXPECT_EQ(s.LookupValue(f, "y").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, LookupValueOutOfRangeFeature) {
  Schema s;
  EXPECT_EQ(s.LookupValue(3, "x").status().code(), StatusCode::kOutOfRange);
}

TEST(SchemaTest, LabelsInternAndLookup) {
  Schema s;
  Label a = s.InternLabel("Denied");
  Label b = s.InternLabel("Approved");
  EXPECT_NE(a, b);
  EXPECT_EQ(s.InternLabel("Denied"), a);
  EXPECT_EQ(s.num_labels(), 2u);
  EXPECT_EQ(s.LabelName(b), "Approved");
  EXPECT_FALSE(s.LookupLabel("Unknown").ok());
  EXPECT_EQ(*s.LookupLabel("Approved"), b);
}

TEST(SchemaTest, FeatureIndexByName) {
  Schema s;
  s.AddFeature("Income");
  s.AddFeature("Credit");
  EXPECT_EQ(*s.FeatureIndex("Credit"), 1u);
  EXPECT_FALSE(s.FeatureIndex("Area").ok());
}

TEST(SchemaTest, FeatureNamesInOrder) {
  Schema s;
  s.AddFeature("x");
  s.AddFeature("y");
  EXPECT_EQ(s.FeatureNames(), (std::vector<std::string>{"x", "y"}));
}

}  // namespace
}  // namespace cce
