// Fuzz-style robustness for the LoadDataset/LoadGbdt parsers (the same
// spirit as csv_fuzz_test): every truncation prefix of a valid file and a
// barrage of random byte mutations must come back as a clean Status —
// never a crash, hang or sanitizer report. Runs under ASan/UBSan via
// scripts/check.sh.

#include "io/serialize.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "tests/test_util.h"

namespace cce::io {
namespace {

std::string ValidDatasetBytes() {
  cce::testing::Fig2Context fig2;
  std::stringstream buffer;
  CCE_CHECK_OK(SaveDataset(fig2.context, &buffer));
  return buffer.str();
}

std::string ValidGbdtBytes() {
  Dataset data = cce::testing::RandomContext(120, 4, 3, 31, /*noise=*/0.0);
  ml::Gbdt::Options options;
  options.num_trees = 8;
  auto model = ml::Gbdt::Train(data, options);
  CCE_CHECK_OK(model.status());
  std::stringstream buffer;
  CCE_CHECK_OK(SaveGbdt(**model, &buffer));
  return buffer.str();
}

/// A successfully parsed dataset must be internally consistent no matter
/// what bytes produced it: every value inside its feature's domain, every
/// label inside the dictionary.
void CheckDatasetInvariants(const Dataset& dataset) {
  const Schema& schema = dataset.schema();
  for (size_t row = 0; row < dataset.size(); ++row) {
    ASSERT_EQ(dataset.instance(row).size(), schema.num_features());
    for (FeatureId f = 0; f < schema.num_features(); ++f) {
      ASSERT_LT(dataset.value(row, f), schema.DomainSize(f));
    }
    ASSERT_LT(dataset.label(row), schema.num_labels());
  }
}

TEST(SerializeFuzzTest, EveryDatasetPrefixFailsCleanly) {
  const std::string bytes = ValidDatasetBytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto loaded = LoadDataset(&truncated);
    if (loaded.ok()) CheckDatasetInvariants(*loaded);
  }
  std::stringstream whole(bytes);
  EXPECT_TRUE(LoadDataset(&whole).ok());
}

TEST(SerializeFuzzTest, EveryGbdtPrefixFailsCleanly) {
  const std::string bytes = ValidGbdtBytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto loaded = LoadGbdt(&truncated);
    // Any prefix the parser accepts must at least be a usable model.
    if (loaded.ok()) ASSERT_NE(loaded->get(), nullptr);
  }
  std::stringstream whole(bytes);
  EXPECT_TRUE(LoadGbdt(&whole).ok());
}

TEST(SerializeFuzzTest, RandomDatasetByteMutationsNeverCrash) {
  const std::string bytes = ValidDatasetBytes();
  Rng rng(1234);
  for (int trial = 0; trial < 4000; ++trial) {
    std::string mutated = bytes;
    // 1-3 byte substitutions anywhere in the file.
    const int edits = 1 + static_cast<int>(rng.Uniform(3));
    for (int e = 0; e < edits; ++e) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    std::stringstream in(mutated);
    auto loaded = LoadDataset(&in);
    if (loaded.ok()) CheckDatasetInvariants(*loaded);
  }
}

TEST(SerializeFuzzTest, RandomGbdtByteMutationsNeverCrash) {
  const std::string bytes = ValidGbdtBytes();
  Rng rng(4321);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = bytes;
    const int edits = 1 + static_cast<int>(rng.Uniform(3));
    for (int e = 0; e < edits; ++e) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    std::stringstream in(mutated);
    auto loaded = LoadGbdt(&in);
    (void)loaded;
  }
}

TEST(SerializeFuzzTest, RandomGarbageIsRejected) {
  Rng rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage(rng.Uniform(512), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.Uniform(256));
    std::stringstream dataset_in(garbage);
    EXPECT_FALSE(LoadDataset(&dataset_in).ok());
    std::stringstream gbdt_in(garbage);
    EXPECT_FALSE(LoadGbdt(&gbdt_in).ok());
  }
}

TEST(SerializeFuzzTest, HostileCountLinesFailWithoutHugeAllocations) {
  // A corrupted count must parse into an error, not an allocation storm.
  std::stringstream huge_trees("CCEGBDT v1\nbase_score 0\ntrees 99999999\n");
  EXPECT_FALSE(LoadGbdt(&huge_trees).ok());
  std::stringstream huge_nodes(
      "CCEGBDT v1\nbase_score 0\ntrees 1\ntree 987654321\n");
  EXPECT_FALSE(LoadGbdt(&huge_nodes).ok());
  std::stringstream huge_rows(
      "CCEDATASET v1\nfeatures 1\nfeature 1 a\nv\nlabels 1\nl\n"
      "rows 123456789\n");
  EXPECT_FALSE(LoadDataset(&huge_rows).ok());
}

}  // namespace
}  // namespace cce::io
