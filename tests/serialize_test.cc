#include "io/serialize.h"

#include "data/loader.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "tests/test_util.h"

namespace cce::io {
namespace {

TEST(EscapeTest, RoundTripsSpecialCharacters) {
  const std::string original = "a\\b\nc\rd\te plain";
  auto back = UnescapeLine(EscapeLine(original));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, original);
  EXPECT_EQ(EscapeLine(original).find('\n'), std::string::npos);
}

TEST(EscapeTest, RejectsMalformedEscapes) {
  EXPECT_FALSE(UnescapeLine("dangling\\").ok());
  EXPECT_FALSE(UnescapeLine("bad\\x").ok());
}

TEST(DatasetIoTest, RoundTripsFig2) {
  cce::testing::Fig2Context fig2;
  std::stringstream buffer;
  CCE_CHECK_OK(SaveDataset(fig2.context, &buffer));
  auto loaded = LoadDataset(&buffer);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), fig2.context.size());
  ASSERT_EQ(loaded->num_features(), fig2.context.num_features());
  for (size_t row = 0; row < loaded->size(); ++row) {
    EXPECT_EQ(loaded->instance(row), fig2.context.instance(row));
    EXPECT_EQ(loaded->label(row), fig2.context.label(row));
  }
  // Dictionaries survive: names resolve identically.
  EXPECT_EQ(loaded->schema().FeatureName(fig2.credit), "Credit");
  EXPECT_EQ(loaded->schema().LabelName(fig2.denied), "Denied");
  EXPECT_EQ(*loaded->schema().LookupValue(fig2.income, "3-4K"),
            *fig2.schema->LookupValue(fig2.income, "3-4K"));
}

TEST(DatasetIoTest, RoundTripsSpecialCharactersInNames) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("weird\tname");
  schema->InternValue(f, "line\nbreak");
  schema->InternValue(f, "back\\slash");
  schema->InternLabel("ok");
  Dataset dataset(schema);
  dataset.Add({0}, 0);
  dataset.Add({1}, 0);
  std::stringstream buffer;
  CCE_CHECK_OK(SaveDataset(dataset, &buffer));
  auto loaded = LoadDataset(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->schema().FeatureName(0), "weird\tname");
  EXPECT_EQ(loaded->schema().ValueName(0, 0), "line\nbreak");
  EXPECT_EQ(loaded->schema().ValueName(0, 1), "back\\slash");
}

TEST(DatasetIoTest, RejectsCorruptedInput) {
  std::stringstream bad_magic("NOTADATASET\n");
  EXPECT_FALSE(LoadDataset(&bad_magic).ok());
  std::stringstream truncated("CCEDATASET v1\nfeatures 2\n");
  EXPECT_FALSE(LoadDataset(&truncated).ok());
  std::stringstream bad_value(
      "CCEDATASET v1\nfeatures 1\nfeature 1 a\nv\nlabels 1\nl\nrows 1\n"
      "7 0\n");
  EXPECT_FALSE(LoadDataset(&bad_value).ok());
  std::stringstream bad_label(
      "CCEDATASET v1\nfeatures 1\nfeature 1 a\nv\nlabels 1\nl\nrows 1\n"
      "0 9\n");
  EXPECT_FALSE(LoadDataset(&bad_label).ok());
}

TEST(DatasetIoTest, FileRoundTrip) {
  cce::testing::Fig2Context fig2;
  const std::string path = ::testing::TempDir() + "/cce_dataset_test.txt";
  CCE_CHECK_OK(SaveDatasetToFile(fig2.context, path));
  auto loaded = LoadDatasetFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), fig2.context.size());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileFails) {
  EXPECT_EQ(LoadDatasetFromFile("/no/such/dataset.txt").status().code(),
            StatusCode::kIoError);
}

TEST(CsvExportTest, RoundTripsThroughTheLoader) {
  cce::testing::Fig2Context fig2;
  auto table = DatasetToCsv(fig2.context, "prediction");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->header.size(), 5u);
  EXPECT_EQ(table->header.back(), "prediction");
  EXPECT_EQ(table->rows[0][1], "3-4K");  // Income of x0, human-readable

  data::LoadOptions load_options;
  load_options.label_column = "prediction";
  auto reloaded = data::LoadCsvDataset(*table, load_options);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), fig2.context.size());
  // Values survive by NAME (ids may be re-interned in a different order):
  // check a couple of cells and every label.
  for (size_t row = 0; row < reloaded->size(); ++row) {
    const Schema& in = *fig2.schema;
    const Schema& out = reloaded->schema();
    EXPECT_EQ(out.LabelName(reloaded->label(row)),
              in.LabelName(fig2.context.label(row)));
    EXPECT_EQ(out.ValueName(fig2.credit, reloaded->value(row, fig2.credit)),
              in.ValueName(fig2.credit,
                           fig2.context.value(row, fig2.credit)));
  }
}

TEST(CsvExportTest, RejectsCollidingLabelColumn) {
  cce::testing::Fig2Context fig2;
  EXPECT_FALSE(DatasetToCsv(fig2.context, "Credit").ok());
  EXPECT_FALSE(DatasetToCsv(fig2.context, "").ok());
}

TEST(GbdtIoTest, RoundTripPreservesPredictions) {
  Dataset data = cce::testing::RandomContext(500, 5, 3, 91, /*noise=*/0.0);
  ml::Gbdt::Options options;
  options.num_trees = 30;
  auto model = ml::Gbdt::Train(data, options);
  ASSERT_TRUE(model.ok());
  std::stringstream buffer;
  CCE_CHECK_OK(SaveGbdt(**model, &buffer));
  auto loaded = LoadGbdt(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->trees().size(), (*model)->trees().size());
  for (size_t row = 0; row < data.size(); ++row) {
    EXPECT_DOUBLE_EQ((*loaded)->Margin(data.instance(row)),
                     (*model)->Margin(data.instance(row)));
  }
}

TEST(GbdtIoTest, RejectsCorruptedModels) {
  std::stringstream bad_magic("NOTAMODEL\n");
  EXPECT_FALSE(LoadGbdt(&bad_magic).ok());
  std::stringstream bad_children(
      "CCEGBDT v1\nbase_score 0\ntrees 1\ntree 1\n0 0 0 5 6 0.0\n");
  EXPECT_FALSE(LoadGbdt(&bad_children).ok());
  std::stringstream truncated("CCEGBDT v1\nbase_score 0\ntrees 2\n");
  EXPECT_FALSE(LoadGbdt(&truncated).ok());
}

TEST(GbdtIoTest, FileRoundTrip) {
  Dataset data = cce::testing::RandomContext(200, 4, 3, 92);
  auto model = ml::Gbdt::Train(data, {});
  ASSERT_TRUE(model.ok());
  const std::string path = ::testing::TempDir() + "/cce_model_test.txt";
  CCE_CHECK_OK(SaveGbdtToFile(**model, path));
  auto loaded = LoadGbdtFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ((*loaded)->Margin(data.instance(0)),
                   (*model)->Margin(data.instance(0)));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cce::io
