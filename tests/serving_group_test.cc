#include "serving/serving_group.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "io/env.h"
#include "serving/proxy.h"
#include "serving/replica_proxy.h"
#include "serving/replication.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

void WipeDir(const std::string& dir) {
  std::vector<std::string> names;
  if (io::Env::Default()->ListDir(dir, &names).ok()) {
    for (const std::string& entry : names) {
      (void)io::Env::Default()->RemoveFile(dir + "/" + entry);
    }
  }
}

/// A durable leader with `rows` recorded, one clean ship cycle, and one
/// caught-up replica — the minimal two-backend group substrate.
struct GroupStack {
  Dataset data;
  std::string leader_dir;
  std::string ship_dir;
  std::unique_ptr<ExplainableProxy> leader;
  std::unique_ptr<ShardLogShipper> shipper;
  std::unique_ptr<ReplicaProxy> replica;

  explicit GroupStack(const std::string& name, size_t rows = 64)
      : data(cce::testing::RandomContext(200, 4, 3, 11, /*noise=*/0.1)),
        leader_dir(::testing::TempDir() + "/" + name + "_leader"),
        ship_dir(::testing::TempDir() + "/" + name + "_ship") {
    WipeDir(leader_dir);
    WipeDir(ship_dir);
    ExplainableProxy::Options options;
    options.monitor_drift = false;
    options.shards = 4;
    options.durability.dir = leader_dir;
    options.durability.sync_every = 0;
    auto leader_or =
        ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
    CCE_CHECK_OK(leader_or.status());
    leader = std::move(leader_or).value();
    for (size_t i = 0; i < rows; ++i) {
      CCE_CHECK_OK(leader->Record(data.instance(i), data.label(i)));
    }
    Ship();
    ReplicaProxy::Options replica_options;
    replica_options.ship_dir = ship_dir;
    auto replica_or = ReplicaProxy::Create(data.schema_ptr(), replica_options);
    CCE_CHECK_OK(replica_or.status());
    replica = std::move(replica_or).value();
  }

  void Ship() {
    if (shipper == nullptr) {
      ShardLogShipper::Options ship;
      ship.source_dir = leader_dir;
      ship.ship_dir = ship_dir;
      ship.shards = 4;
      shipper = std::make_unique<ShardLogShipper>(ship);
    }
    CCE_CHECK_OK(shipper->Ship(leader->PublishedSequence()));
  }

  std::unique_ptr<ServingGroup> MakeGroup(ServingGroup::Options options) {
    auto group_or =
        ServingGroup::Create(leader.get(), {replica.get()}, options);
    CCE_CHECK_OK(group_or.status());
    return std::move(group_or).value();
  }
};

void ExpectSameKey(const KeyResult& actual, const KeyResult& expected) {
  EXPECT_EQ(actual.key, expected.key);
  EXPECT_EQ(actual.pick_order, expected.pick_order);
  EXPECT_EQ(actual.achieved_alpha, expected.achieved_alpha);
  EXPECT_EQ(actual.satisfied, expected.satisfied);
}

TEST(ServingGroupTest, RoutePolicyNames) {
  EXPECT_STREQ(RoutePolicyName(RoutePolicy::kLeaderOnly), "leader-only");
  EXPECT_STREQ(RoutePolicyName(RoutePolicy::kPreferFresh), "prefer-fresh");
  EXPECT_STREQ(RoutePolicyName(RoutePolicy::kPreferAvailable),
               "prefer-available");
}

TEST(ServingGroupTest, CreateValidatesArguments) {
  GroupStack stack("group_create");
  ServingGroup::Options options;
  EXPECT_FALSE(ServingGroup::Create(nullptr, {}, options).ok());
  EXPECT_FALSE(
      ServingGroup::Create(stack.leader.get(), {nullptr}, options).ok());
  options.hedge_deadline_fraction = 0.0;
  EXPECT_FALSE(
      ServingGroup::Create(stack.leader.get(), {}, options).ok());
}

TEST(ServingGroupTest, LeaderOnlyNeverConsultsReplica) {
  GroupStack stack("group_leader_only");
  ServingGroup::Options options;
  options.policy = RoutePolicy::kLeaderOnly;
  auto group = stack.MakeGroup(options);

  auto result = group->Explain(stack.data.instance(0), stack.data.label(0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->backend, 0u);
  EXPECT_FALSE(result->hedged);
  EXPECT_EQ(result->view_seq, stack.leader->PublishedSequence());

  // Under leader-only an evicted leader means no routable backend at all:
  // the replica is never a fallback.
  group->EvictBackend(0);
  auto unroutable =
      group->Explain(stack.data.instance(0), stack.data.label(0));
  EXPECT_EQ(unroutable.status().code(), StatusCode::kUnavailable);
  ServingGroup::GroupHealth health = group->Health();
  EXPECT_EQ(health.hedges, 0u);
  EXPECT_GE(health.errors, 1u);
}

TEST(ServingGroupTest, PreferFreshFailsOverToReplicaWhenLeaderEvicted) {
  GroupStack stack("group_failover");
  ServingGroup::Options options;
  options.hedge = false;
  auto group = stack.MakeGroup(options);
  group->EvictBackend(0);
  group->RefreshProbes();

  auto expected =
      stack.leader->Explain(stack.data.instance(3), stack.data.label(3));
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto result = group->Explain(stack.data.instance(3), stack.data.label(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->backend, 1u);
  EXPECT_FALSE(result->key.degraded);
  EXPECT_EQ(result->view_seq, stack.leader->PublishedSequence());
  ExpectSameKey(result->key, *expected);

  group->ReadmitBackend(0);
  group->RefreshProbes();
  auto back = group->Explain(stack.data.instance(3), stack.data.label(3));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->backend, 0u);
}

TEST(ServingGroupTest, HedgesToReplicaWhenLeaderIsSlow) {
  GroupStack stack("group_hedge");
  ServingGroup::Options options;
  options.hedge_min_delay = std::chrono::milliseconds(1);
  options.hedge_max_delay = std::chrono::milliseconds(2);
  options.explain_interceptor = [](size_t backend) {
    if (backend == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
  };
  auto group = stack.MakeGroup(options);
  group->RefreshProbes();

  auto expected =
      stack.leader->Explain(stack.data.instance(5), stack.data.label(5));
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto result = group->Explain(stack.data.instance(5), stack.data.label(5));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->backend, 1u);
  EXPECT_TRUE(result->hedged);
  EXPECT_FALSE(result->key.degraded);
  ExpectSameKey(result->key, *expected);

  ServingGroup::GroupHealth health = group->Health();
  EXPECT_GE(health.hedges, 1u);
  EXPECT_GE(health.hedge_wins, 1u);
  EXPECT_EQ(health.stale_hedge_rejects, 0u);
}

TEST(ServingGroupTest, StaleHedgeIsFencedOut) {
  GroupStack stack("group_fence");
  // Advance the leader past the shipped state so the replica's view is
  // strictly behind the fence.
  for (size_t i = 64; i < 96; ++i) {
    CCE_CHECK_OK(stack.leader->Record(stack.data.instance(i),
                                      stack.data.label(i)));
  }
  ServingGroup::Options options;
  options.hedge_min_delay = std::chrono::milliseconds(1);
  options.hedge_max_delay = std::chrono::milliseconds(2);
  options.explain_interceptor = [](size_t backend) {
    if (backend == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  };
  auto group = stack.MakeGroup(options);
  group->RefreshProbes();

  auto result = group->Explain(stack.data.instance(2), stack.data.label(2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The hedge fired (the leader was slow) but its answer came from a view
  // behind the fence, so the slow-but-fresh primary was served instead.
  EXPECT_EQ(result->backend, 0u);
  EXPECT_FALSE(result->hedged);
  EXPECT_FALSE(result->key.degraded);
  EXPECT_EQ(result->view_seq, stack.leader->PublishedSequence());

  ServingGroup::GroupHealth health = group->Health();
  EXPECT_GE(health.hedges, 1u);
  EXPECT_GE(health.stale_hedge_rejects, 1u);
  EXPECT_EQ(health.hedge_wins, 0u);
}

TEST(ServingGroupTest, ServedFloorKeepsNonDegradedViewsMonotonic) {
  GroupStack stack("group_floor");
  ServingGroup::Options options;
  options.hedge = false;
  auto group = stack.MakeGroup(options);
  uint64_t last_seq = 0;
  for (size_t round = 0; round < 4; ++round) {
    auto result =
        group->Explain(stack.data.instance(round), stack.data.label(round));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (!result->key.degraded) {
      EXPECT_GE(result->view_seq, last_seq);
      last_seq = result->view_seq;
    }
    CCE_CHECK_OK(stack.leader->Record(stack.data.instance(100 + round),
                                      stack.data.label(100 + round)));
    stack.Ship();
    CCE_CHECK_OK(stack.replica->CatchUp());
    group->RefreshProbes();
  }
  EXPECT_GT(last_seq, 0u);
}

TEST(ServingGroupTest, RecordGoesToLeaderAndCounterfactualsRoute) {
  GroupStack stack("group_writes");
  ServingGroup::Options options;
  options.hedge = false;
  auto group = stack.MakeGroup(options);
  const uint64_t before = stack.leader->PublishedSequence();
  CCE_CHECK_OK(group->Record(stack.data.instance(99), stack.data.label(99)));
  EXPECT_GT(stack.leader->PublishedSequence(), before);

  auto witnesses =
      group->Counterfactuals(stack.data.instance(0), stack.data.label(0));
  EXPECT_TRUE(witnesses.ok()) << witnesses.status().ToString();
}

TEST(ServingGroupTest, InvalidArgumentDoesNotTripTheBreaker) {
  GroupStack stack("group_invalid");
  ServingGroup::Options options;
  options.hedge = false;
  options.breaker.failure_threshold = 2;
  auto group = stack.MakeGroup(options);
  Instance wrong_arity(2);
  for (int i = 0; i < 6; ++i) {
    auto result = group->Explain(wrong_arity, stack.data.label(0));
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  ServingGroup::GroupHealth health = group->Health();
  EXPECT_EQ(health.backends[0].breaker, CircuitBreaker::State::kClosed);
  auto good = group->Explain(stack.data.instance(0), stack.data.label(0));
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST(ServingGroupTest, BreakerOpensOnPersistentBackendFailure) {
  // An empty replica (nothing ever shipped) fails every Explain with
  // kFailedPrecondition; with the leader evicted the group has only that
  // broken backend, so its breaker must open and fail fast.
  Dataset data = cce::testing::RandomContext(64, 4, 3, 12, /*noise=*/0.1);
  const std::string empty_ship =
      ::testing::TempDir() + "/group_breaker_empty_ship";
  WipeDir(empty_ship);
  ExplainableProxy::Options leader_options;
  leader_options.monitor_drift = false;
  auto leader_or =
      ExplainableProxy::Create(data.schema_ptr(), nullptr, leader_options);
  CCE_CHECK_OK(leader_or.status());
  ReplicaProxy::Options replica_options;
  replica_options.ship_dir = empty_ship;
  auto replica_or = ReplicaProxy::Create(data.schema_ptr(), replica_options);
  CCE_CHECK_OK(replica_or.status());

  ServingGroup::Options options;
  options.hedge = false;
  options.breaker.failure_threshold = 3;
  auto group_or = ServingGroup::Create(
      (*leader_or).get(), {(*replica_or).get()}, options);
  CCE_CHECK_OK(group_or.status());
  ServingGroup& group = **group_or;
  group.EvictBackend(0);

  for (int i = 0; i < 3; ++i) {
    auto result = group.Explain(data.instance(0), data.label(0));
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition) << i;
  }
  ServingGroup::GroupHealth health = group.Health();
  EXPECT_EQ(health.backends[1].breaker, CircuitBreaker::State::kOpen);
  auto shed = group.Explain(data.instance(0), data.label(0));
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
}

TEST(ServingGroupTest, HealthReflectsEvictionAndFreshness) {
  GroupStack stack("group_health");
  ServingGroup::Options options;
  options.hedge = false;
  auto group = stack.MakeGroup(options);

  ServingGroup::GroupHealth health = group->Health();
  ASSERT_EQ(health.backends.size(), 2u);
  EXPECT_TRUE(health.fully_healthy);
  EXPECT_TRUE(health.backends[0].is_leader);
  EXPECT_EQ(health.backends[1].lag_seq, 0u);

  group->EvictBackend(1);
  health = group->Health();
  EXPECT_TRUE(health.backends[1].evicted);
  EXPECT_FALSE(health.fully_healthy);
  group->ReadmitBackend(1);

  // A replica left behind the leader drops out of fully_healthy too.
  CCE_CHECK_OK(stack.leader->Record(stack.data.instance(120),
                                    stack.data.label(120)));
  health = group->Health();
  EXPECT_FALSE(health.backends[1].healthy);
  EXPECT_GT(health.backends[1].lag_seq, 0u);
  EXPECT_FALSE(health.fully_healthy);
}

}  // namespace
}  // namespace cce::serving
