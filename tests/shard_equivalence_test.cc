#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/osrk.h"
#include "core/ssrk.h"
#include "serving/proxy.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

/// The sharding determinism contract: because every row carries a global
/// sequence number and Explain merges shard windows by it, every
/// explanation artefact — SRK keys from the proxy, OSRK/SSRK keys
/// maintained over the merged context — must be bit-identical between a
/// 1-shard proxy and any N-shard proxy fed the same traffic.

std::unique_ptr<ExplainableProxy> MakeProxy(const Dataset& data,
                                            size_t shards,
                                            size_t capacity = 0) {
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.shards = shards;
  options.context_capacity = capacity;
  auto proxy = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
  CCE_CHECK_OK(proxy.status());
  return std::move(proxy).value();
}

void ExpectSameContext(const Context& base, const Context& sharded,
                       size_t shards) {
  ASSERT_EQ(base.size(), sharded.size()) << "shards=" << shards;
  for (size_t row = 0; row < base.size(); ++row) {
    ASSERT_EQ(base.instance(row), sharded.instance(row))
        << "row " << row << " shards=" << shards;
    ASSERT_EQ(base.label(row), sharded.label(row))
        << "row " << row << " shards=" << shards;
  }
}

TEST(ShardEquivalenceTest, ExplainKeysAreBitIdenticalAcrossShardCounts) {
  for (uint64_t seed : {11u, 57u, 91u}) {
    Dataset data = cce::testing::RandomContext(160, 5, 3, seed,
                                               /*noise=*/0.1);
    auto baseline = MakeProxy(data, 1);
    for (size_t row = 0; row < data.size(); ++row) {
      CCE_CHECK_OK(baseline->Record(data.instance(row), data.label(row)));
    }
    for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
      auto proxy = MakeProxy(data, shards);
      for (size_t row = 0; row < data.size(); ++row) {
        CCE_CHECK_OK(proxy->Record(data.instance(row), data.label(row)));
      }
      ExpectSameContext(baseline->ContextSnapshot(),
                        proxy->ContextSnapshot(), shards);
      for (size_t probe = 0; probe < 12; ++probe) {
        auto expected = baseline->Explain(data.instance(probe),
                                          data.label(probe));
        auto actual = proxy->Explain(data.instance(probe),
                                     data.label(probe));
        ASSERT_TRUE(expected.ok());
        ASSERT_TRUE(actual.ok());
        EXPECT_EQ(actual->key, expected->key)
            << "seed " << seed << " shards " << shards << " probe "
            << probe;
        EXPECT_EQ(actual->pick_order, expected->pick_order);
        EXPECT_EQ(actual->achieved_alpha, expected->achieved_alpha)
            << "bitwise double equality, not approximate";
        EXPECT_EQ(actual->satisfied, expected->satisfied);
      }
    }
  }
}

TEST(ShardEquivalenceTest, GlobalEvictionMatchesSingleWindowFifo) {
  Dataset data = cce::testing::RandomContext(200, 4, 2, 77, /*noise=*/0.0);
  const size_t kCapacity = 48;
  auto baseline = MakeProxy(data, 1, kCapacity);
  auto sharded = MakeProxy(data, 4, kCapacity);
  for (size_t row = 0; row < data.size(); ++row) {
    CCE_CHECK_OK(baseline->Record(data.instance(row), data.label(row)));
    CCE_CHECK_OK(sharded->Record(data.instance(row), data.label(row)));
  }
  Context base = baseline->ContextSnapshot();
  ASSERT_EQ(base.size(), kCapacity);
  ExpectSameContext(base, sharded->ContextSnapshot(), 4);
}

TEST(ShardEquivalenceTest, OsrkAndSsrkOverMergedContextsAgree) {
  Dataset data = cce::testing::RandomContext(120, 5, 3, 33, /*noise=*/0.1);
  auto baseline = MakeProxy(data, 1);
  auto sharded = MakeProxy(data, 4);
  for (size_t row = 0; row < data.size(); ++row) {
    CCE_CHECK_OK(baseline->Record(data.instance(row), data.label(row)));
    CCE_CHECK_OK(sharded->Record(data.instance(row), data.label(row)));
  }
  const Instance& x0 = data.instance(0);
  const Label y0 = data.label(0);

  // OSRK consumes randomness per arrival, so any reordering of the merged
  // context would change the maintained key; SSRK's potential accumulates
  // floats in arrival order. Feed each the merged context of each proxy.
  for (int alg = 0; alg < 2; ++alg) {
    FeatureSet keys[2];
    double alphas[2] = {0.0, 0.0};
    ExplainableProxy* proxies[2] = {baseline.get(), sharded.get()};
    for (int p = 0; p < 2; ++p) {
      Context merged = proxies[p]->ContextSnapshot();
      if (alg == 0) {
        Osrk::Options options;
        options.seed = 7;
        auto osrk = Osrk::Create(data.schema_ptr(), x0, y0, options);
        CCE_CHECK_OK(osrk.status());
        for (size_t row = 0; row < merged.size(); ++row) {
          (*osrk)->Observe(merged.instance(row), merged.label(row));
        }
        keys[p] = (*osrk)->key();
        alphas[p] = (*osrk)->achieved_alpha();
      } else {
        auto ssrk = Ssrk::Create(data, x0, y0, {});
        CCE_CHECK_OK(ssrk.status());
        for (size_t row = 0; row < merged.size(); ++row) {
          (*ssrk)->Observe(merged.instance(row), merged.label(row));
        }
        keys[p] = (*ssrk)->key();
        alphas[p] = (*ssrk)->achieved_alpha();
      }
    }
    EXPECT_EQ(keys[0], keys[1]) << (alg == 0 ? "OSRK" : "SSRK");
    EXPECT_EQ(alphas[0], alphas[1]) << (alg == 0 ? "OSRK" : "SSRK");
  }
}

/// TSan target (SUITE=stress): concurrent Records on different shards race
/// only on the atomics designed for it, and Explain's merged snapshot is
/// always a consistent sequence-ordered view.
TEST(ShardEquivalenceStressTest, ConcurrentShardedRecordAndExplainAreClean) {
  const bool stress = std::getenv("CCE_STRESS") != nullptr;
  const size_t kWriters = 4;
  const size_t kRowsPerWriter = stress ? 400 : 80;
  Dataset data = cce::testing::RandomContext(
      kWriters * kRowsPerWriter, 4, 2, 13, /*noise=*/0.1);
  auto proxy = MakeProxy(data, 4, /*capacity=*/256);

  std::atomic<size_t> recorded{0};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (size_t i = 0; i < kRowsPerWriter; ++i) {
        const size_t row = w * kRowsPerWriter + i;
        if (proxy->Record(data.instance(row), data.label(row)).ok()) {
          recorded.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Context snapshot = proxy->ContextSnapshot();
      if (snapshot.size() > 0) {
        auto key = proxy->Explain(snapshot.instance(0), snapshot.label(0));
        ASSERT_TRUE(key.ok() ||
                    key.status().code() == StatusCode::kFailedPrecondition);
      }
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(recorded.load(), kWriters * kRowsPerWriter);
  EXPECT_EQ(proxy->recorded(), kWriters * kRowsPerWriter);
  Context final_snapshot = proxy->ContextSnapshot();
  EXPECT_EQ(final_snapshot.size(), 256u);
  HealthSnapshot health = proxy->Health();
  EXPECT_EQ(health.shards_quarantined, 0u);
  EXPECT_FALSE(health.degraded_context);
}

}  // namespace
}  // namespace cce::serving
