#include "core/srk.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/conformity.h"
#include "core/optimal.h"
#include "tests/test_util.h"

namespace cce {
namespace {

TEST(SrkTest, PaperExample6KeyForX0) {
  testing::Fig2Context fig2;
  Srk::Options options;
  auto result = Srk::Explain(fig2.context, 0, options);
  ASSERT_TRUE(result.ok());
  FeatureSet expected = {fig2.income, fig2.credit};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result->key, expected);
  EXPECT_TRUE(result->satisfied);
  EXPECT_DOUBLE_EQ(result->achieved_alpha, 1.0);
  // Example 6: Credit is picked first, then Income.
  ASSERT_EQ(result->pick_order.size(), 2u);
  EXPECT_EQ(result->pick_order[0], fig2.credit);
  EXPECT_EQ(result->pick_order[1], fig2.income);
}

TEST(SrkTest, PaperExample6AlphaSixSevenths) {
  testing::Fig2Context fig2;
  Srk::Options options;
  options.alpha = 6.0 / 7.0;
  auto result = Srk::Explain(fig2.context, 0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->key, FeatureSet{fig2.credit});
  EXPECT_TRUE(result->satisfied);
  EXPECT_NEAR(result->achieved_alpha, 6.0 / 7.0, 1e-12);
}

TEST(SrkTest, InvalidAlphaRejected) {
  testing::Fig2Context fig2;
  Srk::Options options;
  options.alpha = 0.0;
  EXPECT_FALSE(Srk::Explain(fig2.context, 0, options).ok());
  options.alpha = 1.5;
  EXPECT_FALSE(Srk::Explain(fig2.context, 0, options).ok());
  options.alpha = -0.2;
  EXPECT_FALSE(Srk::Explain(fig2.context, 0, options).ok());
}

TEST(SrkTest, RowOutOfRangeRejected) {
  testing::Fig2Context fig2;
  EXPECT_EQ(Srk::Explain(fig2.context, 99, {}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SrkTest, WrongArityRejected) {
  testing::Fig2Context fig2;
  Instance bad = {0, 1};
  EXPECT_FALSE(
      Srk::ExplainInstance(fig2.context, bad, fig2.denied, {}).ok());
}

TEST(SrkTest, SingleClassContextYieldsEmptyKey) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "u");
  schema->InternValue(f, "v");
  schema->InternLabel("only");
  Dataset context(schema);
  context.Add({0}, 0);
  context.Add({1}, 0);
  auto result = Srk::Explain(context, 0, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->key.empty());
  EXPECT_TRUE(result->satisfied);
}

TEST(SrkTest, ConflictingDuplicateReportsUnsatisfied) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  Dataset context(schema);
  context.Add({0}, 0);
  context.Add({0}, 1);
  auto result = Srk::Explain(context, 0, {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  EXPECT_NEAR(result->achieved_alpha, 0.5, 1e-12);
}

TEST(SrkTest, ConflictingDuplicateToleratedByLowAlpha) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternValue(f, "w");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  Dataset context(schema);
  context.Add({0}, 0);
  context.Add({0}, 1);
  context.Add({1}, 1);
  context.Add({1}, 1);
  Srk::Options options;
  options.alpha = 0.75;  // one violator tolerated out of 4
  auto result = Srk::Explain(context, 0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
  // Feature a removes the two {1} rows; the duplicate is tolerated.
  EXPECT_EQ(result->key, FeatureSet{f});
}

TEST(SrkTest, ExplainInstanceNotInContext) {
  testing::Fig2Context fig2;
  // An ad-hoc instance (Female, 5-6K, good, 0) predicted Approved.
  Instance x(4);
  x[fig2.gender] = *fig2.schema->LookupValue(fig2.gender, "Female");
  x[fig2.income] = *fig2.schema->LookupValue(fig2.income, "5-6K");
  x[fig2.credit] = *fig2.schema->LookupValue(fig2.credit, "good");
  x[fig2.dependent] = *fig2.schema->LookupValue(fig2.dependent, "0");
  auto result = Srk::ExplainInstance(fig2.context, x, fig2.approved, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
  ConformityChecker checker(&fig2.context);
  EXPECT_TRUE(checker.IsAlphaConformant(x, fig2.approved, result->key, 1.0));
}

TEST(SrkTest, KeyShrinksOrStaysWithSmallerAlpha) {
  Dataset context = testing::RandomContext(300, 6, 4, 77);
  for (double alpha : {1.0, 0.98, 0.95, 0.9}) {
    Srk::Options strict;
    strict.alpha = alpha;
    Srk::Options loose;
    loose.alpha = alpha - 0.05;
    auto strict_key = Srk::Explain(context, 0, strict);
    auto loose_key = Srk::Explain(context, 0, loose);
    ASSERT_TRUE(strict_key.ok());
    ASSERT_TRUE(loose_key.ok());
    EXPECT_LE(loose_key->key.size(), strict_key->key.size());
  }
}

// ------------------------- property sweep: alpha-conformance + ln bound --

struct SrkPropertyParam {
  uint64_t seed;
  size_t rows;
  size_t features;
  size_t domain;
  double alpha;
};

class SrkPropertyTest : public ::testing::TestWithParam<SrkPropertyParam> {};

TEST_P(SrkPropertyTest, KeyIsAlphaConformant) {
  const auto& p = GetParam();
  Dataset context = testing::RandomContext(p.rows, p.features, p.domain,
                                           p.seed);
  ConformityChecker checker(&context);
  Srk::Options options;
  options.alpha = p.alpha;
  for (size_t row = 0; row < std::min<size_t>(10, context.size()); ++row) {
    auto result = Srk::Explain(context, row, options);
    ASSERT_TRUE(result.ok());
    if (result->satisfied) {
      EXPECT_TRUE(checker.IsAlphaConformant(context.instance(row),
                                            context.label(row), result->key,
                                            p.alpha))
          << "row " << row;
    }
    EXPECT_NEAR(result->achieved_alpha,
                checker.Precision(context.instance(row), context.label(row),
                                  result->key),
                1e-9);
  }
}

TEST_P(SrkPropertyTest, WithinLogBoundOfOptimal) {
  const auto& p = GetParam();
  if (p.features > 10) GTEST_SKIP() << "optimal search too large";
  Dataset context = testing::RandomContext(p.rows, p.features, p.domain,
                                           p.seed);
  Srk::Options options;
  options.alpha = p.alpha;
  OptimalKeyFinder::Options opt_options;
  opt_options.alpha = p.alpha;
  for (size_t row = 0; row < std::min<size_t>(5, context.size()); ++row) {
    auto greedy = Srk::Explain(context, row, options);
    auto optimal = OptimalKeyFinder::FindForRow(context, row, opt_options);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(optimal.ok());
    if (!optimal->satisfied) continue;
    EXPECT_GE(greedy->key.size(), optimal->key.size());
    // Lemma 3: succinct(SRK) <= ln(alpha |I|) * succinct(OPT) (+1 for the
    // ceiling slack on tiny optima).
    double bound = std::log(p.alpha * static_cast<double>(context.size()));
    double limit =
        std::max(1.0, bound) * static_cast<double>(optimal->key.size()) +
        1.0;
    EXPECT_LE(static_cast<double>(greedy->key.size()), limit)
        << "row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SrkPropertyTest,
    ::testing::Values(
        SrkPropertyParam{1, 50, 4, 3, 1.0},
        SrkPropertyParam{2, 50, 4, 3, 0.9},
        SrkPropertyParam{3, 120, 6, 2, 1.0},
        SrkPropertyParam{4, 120, 6, 2, 0.95},
        SrkPropertyParam{5, 200, 8, 4, 1.0},
        SrkPropertyParam{6, 200, 8, 4, 0.92},
        SrkPropertyParam{7, 400, 10, 3, 1.0},
        SrkPropertyParam{8, 400, 10, 3, 0.9},
        SrkPropertyParam{9, 800, 12, 5, 1.0},
        SrkPropertyParam{10, 800, 12, 5, 0.97}));

}  // namespace
}  // namespace cce
