#include "core/ssrk.h"

#include <gtest/gtest.h>

#include "core/conformity.h"
#include "core/osrk.h"
#include "tests/test_util.h"

namespace cce {
namespace {

TEST(SsrkTest, CreateValidatesArguments) {
  testing::Fig2Context fig2;
  Ssrk::Options bad_alpha;
  bad_alpha.alpha = 2.0;
  EXPECT_FALSE(Ssrk::Create(fig2.context, fig2.context.instance(0),
                            fig2.denied, bad_alpha)
                   .ok());
  EXPECT_FALSE(
      Ssrk::Create(fig2.context, Instance{0}, fig2.denied, {}).ok());
  Dataset empty(fig2.schema);
  EXPECT_FALSE(
      Ssrk::Create(empty, fig2.context.instance(0), fig2.denied, {}).ok());
}

TEST(SsrkTest, SamePredictionNeverChangesKey) {
  testing::Fig2Context fig2;
  auto ssrk = Ssrk::Create(fig2.context, fig2.context.instance(0),
                           fig2.denied, {});
  ASSERT_TRUE(ssrk.ok());
  for (size_t row : {2u, 3u, 4u}) {
    (*ssrk)->Observe(fig2.context.instance(row), fig2.denied);
  }
  EXPECT_TRUE((*ssrk)->key().empty());
  EXPECT_DOUBLE_EQ((*ssrk)->achieved_alpha(), 1.0);
}

TEST(SsrkTest, CoherentAndConformantOnFig2) {
  testing::Fig2Context fig2;
  auto ssrk = Ssrk::Create(fig2.context, fig2.context.instance(0),
                           fig2.denied, {});
  ASSERT_TRUE(ssrk.ok());
  FeatureSet previous;
  for (size_t row = 1; row < fig2.context.size(); ++row) {
    const FeatureSet& key = (*ssrk)->Observe(fig2.context.instance(row),
                                             fig2.context.label(row));
    EXPECT_TRUE(FeatureSetIsSubset(previous, key));
    previous = key;
  }
  ConformityChecker checker(&fig2.context);
  // The arrived stream is rows 1..6; conformity over it plus x0 itself.
  EXPECT_TRUE((*ssrk)->satisfied());
  EXPECT_TRUE(checker.IsAlphaConformant(fig2.context.instance(0),
                                        fig2.denied, (*ssrk)->key(), 1.0));
}

TEST(SsrkTest, StreamOverRandomUniverseIsConformant) {
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    Dataset universe =
        testing::RandomContext(250, 6, 3, 3000 + seed, /*noise=*/0.0);
    auto ssrk = Ssrk::Create(universe, universe.instance(0),
                             universe.label(0), {});
    ASSERT_TRUE(ssrk.ok());
    FeatureSet previous;
    for (size_t row = 1; row < universe.size(); ++row) {
      const FeatureSet& key =
          (*ssrk)->Observe(universe.instance(row), universe.label(row));
      EXPECT_TRUE(FeatureSetIsSubset(previous, key));
      previous = key;
    }
    std::vector<size_t> arrived_rows;
    for (size_t r = 1; r < universe.size(); ++r) arrived_rows.push_back(r);
    Dataset arrived = universe.Subset(arrived_rows);
    ConformityChecker checker(&arrived);
    EXPECT_TRUE(checker.IsAlphaConformant(universe.instance(0),
                                          universe.label(0), (*ssrk)->key(),
                                          1.0))
        << "seed " << seed;
    EXPECT_TRUE((*ssrk)->satisfied());
  }
}

TEST(SsrkTest, AchievedAlphaMatchesOfflineRecount) {
  for (double alpha : {1.0, 0.9}) {
    Dataset universe = testing::RandomContext(200, 5, 3, 404);
    Ssrk::Options options;
    options.alpha = alpha;
    auto ssrk = Ssrk::Create(universe, universe.instance(0),
                             universe.label(0), options);
    ASSERT_TRUE(ssrk.ok());
    for (size_t row = 1; row < universe.size(); ++row) {
      (*ssrk)->Observe(universe.instance(row), universe.label(row));
    }
    std::vector<size_t> arrived_rows;
    for (size_t r = 1; r < universe.size(); ++r) arrived_rows.push_back(r);
    Dataset arrived = universe.Subset(arrived_rows);
    ConformityChecker checker(&arrived);
    EXPECT_NEAR((*ssrk)->achieved_alpha(),
                checker.Precision(universe.instance(0), universe.label(0),
                                  (*ssrk)->key()),
                1e-9);
  }
}

TEST(SsrkTest, DeterministicAcrossRuns) {
  Dataset universe = testing::RandomContext(150, 5, 3, 777, /*noise=*/0.0);
  FeatureSet first_run;
  for (int run = 0; run < 2; ++run) {
    auto ssrk = Ssrk::Create(universe, universe.instance(0),
                             universe.label(0), {});
    ASSERT_TRUE(ssrk.ok());
    for (size_t row = 1; row < universe.size(); ++row) {
      (*ssrk)->Observe(universe.instance(row), universe.label(row));
    }
    if (run == 0) {
      first_run = (*ssrk)->key();
    } else {
      EXPECT_EQ((*ssrk)->key(), first_run);
    }
  }
}

TEST(SsrkTest, TendsToBeMoreSuccinctThanOsrkOnAverage) {
  // Section 7.4: SSRK produces more succinct keys than OSRK on average.
  // Averaged over several streams to keep the comparison stable.
  double ssrk_total = 0.0;
  double osrk_total = 0.0;
  int streams = 0;
  for (uint64_t seed : {41u, 42u, 43u, 44u, 45u, 46u}) {
    Dataset universe =
        testing::RandomContext(300, 8, 3, 5000 + seed, /*noise=*/0.0);
    auto ssrk = Ssrk::Create(universe, universe.instance(0),
                             universe.label(0), {});
    ASSERT_TRUE(ssrk.ok());
    Osrk::Options osrk_options;
    osrk_options.seed = seed;
    auto osrk = Osrk::Create(universe.schema_ptr(), universe.instance(0),
                             universe.label(0), osrk_options);
    ASSERT_TRUE(osrk.ok());
    for (size_t row = 1; row < universe.size(); ++row) {
      (*ssrk)->Observe(universe.instance(row), universe.label(row));
      (*osrk)->Observe(universe.instance(row), universe.label(row));
    }
    ssrk_total += static_cast<double>((*ssrk)->key().size());
    osrk_total += static_cast<double>((*osrk)->key().size());
    ++streams;
  }
  EXPECT_LE(ssrk_total / streams, osrk_total / streams + 0.5)
      << "SSRK should not be materially less succinct than OSRK";
}

TEST(SsrkTest, ConflictingDuplicateHandledGracefully) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  Dataset universe(schema);
  universe.Add({0}, 0);
  universe.Add({0}, 1);
  auto ssrk = Ssrk::Create(universe, universe.instance(0), 0, {});
  ASSERT_TRUE(ssrk.ok());
  (*ssrk)->Observe(universe.instance(1), 1);
  EXPECT_FALSE((*ssrk)->satisfied());
}

}  // namespace
}  // namespace cce
