#include "common/status.h"

#include <gtest/gtest.h>

namespace cce {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::InvalidArgument("bad alpha").message(), "bad alpha");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad alpha").ToString(),
            "InvalidArgument: bad alpha");
  EXPECT_EQ(Status::NotFound("").ToString(), "NotFound");
}

TEST(StatusTest, NonOkIsNotOk) {
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r->push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(StatusTest, ServingCodesRoundTripThroughToString) {
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::Unavailable("down").ToString(), "Unavailable: down");
  EXPECT_EQ(Status::ResourceExhausted("full").ToString(),
            "ResourceExhausted: full");
}

TEST(StatusTest, IsRetryableClassifiesTransientCodesOnly) {
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_FALSE(Status::Ok().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
  EXPECT_FALSE(Status::IoError("x").IsRetryable());
}

Status FailingHelper() { return Status::Internal("inner"); }

Status PropagationSite() {
  CCE_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = PropagationSite();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "inner");
}

Status SucceedingSite() {
  CCE_RETURN_IF_ERROR(Status::Ok());
  return Status::InvalidArgument("reached end");
}

TEST(StatusTest, ReturnIfErrorPassesThroughOnOk) {
  EXPECT_EQ(SucceedingSite().code(), StatusCode::kInvalidArgument);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<std::string> DescribeQuarter(int v) {
  CCE_ASSIGN_OR_RETURN(int half, HalveEven(v));
  CCE_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return std::to_string(quarter);
}

TEST(ResultTest, AssignOrReturnUnwrapsValues) {
  auto r = DescribeQuarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "2");
}

TEST(ResultTest, AssignOrReturnPropagatesErrorsFromAnyStep) {
  EXPECT_EQ(DescribeQuarter(7).status().code(),
            StatusCode::kInvalidArgument);  // first step fails
  EXPECT_EQ(DescribeQuarter(6).status().code(),
            StatusCode::kInvalidArgument);  // second step fails
}

TEST(ResultTest, AssignOrReturnIntoExistingLvalue) {
  auto f = []() -> Result<int> {
    int total = 0;
    CCE_ASSIGN_OR_RETURN(total, HalveEven(4));
    return total + 1;
  };
  auto r = f();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 3);
}

TEST(ResultDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH(Result<int> r(Status::Ok()),
               "Result<T> constructed from an OK Status");
}

}  // namespace
}  // namespace cce
