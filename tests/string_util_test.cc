#include "common/string_util.h"

#include <gtest/gtest.h>

namespace cce {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoSeparator) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ToLowerTest, LowersAscii) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(TokenizeTest, SplitsOnNonAlnumAndLowercases) {
  EXPECT_EQ(Tokenize("Adobe Photoshop CS-2!"),
            (std::vector<std::string>{"adobe", "photoshop", "cs", "2"}));
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("--- !!").empty());
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
}

TEST(EditSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  double sim = EditSimilarity("kitten", "sitting");
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 1.0);
}

TEST(TokenJaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a b c", "a b c"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b c d", "a b"), 0.5);
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 1.0);
}

TEST(TokenJaccardTest, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(TokenJaccard("Adobe Photoshop", "adobe PHOTOSHOP"), 1.0);
}

TEST(TokenContainmentTest, SmallerInLarger) {
  EXPECT_DOUBLE_EQ(TokenContainment("a b", "a b c d"), 1.0);
  EXPECT_DOUBLE_EQ(TokenContainment("a x", "a b c d"), 0.5);
  EXPECT_DOUBLE_EQ(TokenContainment("", "a"), 0.0);
  EXPECT_DOUBLE_EQ(TokenContainment("", ""), 1.0);
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace cce
