#include "serving/supervisor.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "io/env.h"
#include "serving/proxy.h"
#include "serving/replica_proxy.h"
#include "serving/replication.h"
#include "serving/serving_group.h"
#include "serving/shard_layout.h"
#include "tests/test_util.h"

namespace cce::serving {
namespace {

void WipeDir(const std::string& dir) {
  std::vector<std::string> names;
  if (io::Env::Default()->ListDir(dir, &names).ok()) {
    for (const std::string& entry : names) {
      (void)io::Env::Default()->RemoveFile(dir + "/" + entry);
    }
  }
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Supervisor options tuned for deterministic single-tick tests: act on
/// the first confirmed observation, no jittered waiting between attempts,
/// no action rate limit.
Supervisor::Options FastSupervisor() {
  Supervisor::Options options;
  options.observe_threshold = 1;
  options.repair_backoff.initial_backoff = std::chrono::milliseconds(0);
  options.repair_backoff.max_backoff = std::chrono::milliseconds(0);
  options.action_rate.refill_per_sec = 0.0;  // unlimited
  return options;
}

uint64_t SupervisorCounter(ServingGroup& group, const char* name) {
  return group.registry().GetCounter(name, "")->Value();
}

/// A durable leader + clean shipped replica, with helpers to corrupt the
/// replication path.
struct SupervisedStack {
  Dataset data;
  std::string leader_dir;
  std::string ship_dir;
  std::unique_ptr<ExplainableProxy> leader;
  std::unique_ptr<ShardLogShipper> shipper;
  std::unique_ptr<ReplicaProxy> replica;
  std::unique_ptr<ServingGroup> group;

  explicit SupervisedStack(const std::string& name)
      : data(cce::testing::RandomContext(200, 4, 3, 13, /*noise=*/0.1)),
        leader_dir(::testing::TempDir() + "/" + name + "_leader"),
        ship_dir(::testing::TempDir() + "/" + name + "_ship") {
    WipeDir(leader_dir);
    WipeDir(ship_dir);
    ExplainableProxy::Options options;
    options.monitor_drift = false;
    options.shards = 4;
    options.durability.dir = leader_dir;
    options.durability.sync_every = 0;
    auto leader_or =
        ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
    CCE_CHECK_OK(leader_or.status());
    leader = std::move(leader_or).value();
    for (size_t i = 0; i < 64; ++i) {
      CCE_CHECK_OK(leader->Record(data.instance(i), data.label(i)));
    }
    Ship();
    ReplicaProxy::Options replica_options;
    replica_options.ship_dir = ship_dir;
    auto replica_or = ReplicaProxy::Create(data.schema_ptr(), replica_options);
    CCE_CHECK_OK(replica_or.status());
    replica = std::move(replica_or).value();
    ServingGroup::Options group_options;
    group_options.hedge = false;
    auto group_or =
        ServingGroup::Create(leader.get(), {replica.get()}, group_options);
    CCE_CHECK_OK(group_or.status());
    group = std::move(group_or).value();
  }

  void Ship() {
    if (shipper == nullptr) {
      ShardLogShipper::Options ship;
      ship.source_dir = leader_dir;
      ship.ship_dir = ship_dir;
      ship.shards = 4;
      shipper = std::make_unique<ShardLogShipper>(ship);
    }
    CCE_CHECK_OK(shipper->Ship(leader->PublishedSequence()));
  }

  /// Scribbles over every shipped WAL so each catch-up / resync
  /// quarantines every tail until the next clean Ship().
  void CorruptShippedWals() {
    for (size_t shard = 0; shard < 4; ++shard) {
      WriteFileBytes(ship_dir + "/" + ShippedShardFileName(shard, "wal"),
                     "this is not a wal segment");
    }
  }
};

Supervisor::Level DomainLevel(Supervisor& supervisor,
                              const std::string& name) {
  for (const Supervisor::DomainStatus& domain : supervisor.Domains()) {
    if (domain.name == name) return domain.level;
  }
  ADD_FAILURE() << "no such domain: " << name;
  return Supervisor::Level::kHealthy;
}

TEST(SupervisorTest, LevelNames) {
  EXPECT_STREQ(Supervisor::LevelName(Supervisor::Level::kHealthy), "healthy");
  EXPECT_STREQ(Supervisor::LevelName(Supervisor::Level::kObserving),
               "observing");
  EXPECT_STREQ(Supervisor::LevelName(Supervisor::Level::kRepairing),
               "repairing");
  EXPECT_STREQ(Supervisor::LevelName(Supervisor::Level::kEvicted), "evicted");
  EXPECT_STREQ(Supervisor::LevelName(Supervisor::Level::kParked), "parked");
}

TEST(SupervisorTest, RepairsQuarantinedLeaderShardWithoutManualCalls) {
  Dataset data = cce::testing::RandomContext(120, 4, 3, 7, /*noise=*/0.1);
  const std::string dir = ::testing::TempDir() + "/supervisor_repair_leader";
  WipeDir(dir);
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.shards = 4;
  options.durability.dir = dir;
  options.durability.sync_every = 0;
  {
    auto first = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
    CCE_CHECK_OK(first.status());
    for (size_t i = 0; i < 48; ++i) {
      CCE_CHECK_OK((*first)->Record(data.instance(i), data.label(i)));
    }
    // Killed here without a clean shutdown.
  }
  WriteFileBytes(dir + "/context.1.snapshot", "CCESNAP 1\ncovers zaphod\n");
  auto leader_or = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
  CCE_CHECK_OK(leader_or.status());
  ExplainableProxy& leader = **leader_or;
  ASSERT_EQ(leader.Health().shards[1].state,
            ContextShard::State::kQuarantined);

  ServingGroup::Options group_options;
  group_options.hedge = false;
  auto group_or = ServingGroup::Create(&leader, {}, group_options);
  CCE_CHECK_OK(group_or.status());
  ServingGroup& group = **group_or;
  Supervisor supervisor(&group, FastSupervisor());

  bool healed = false;
  for (int tick = 0; tick < 8 && !healed; ++tick) {
    supervisor.TickOnce();
    healed = leader.Health().shards[1].state == ContextShard::State::kActive;
  }
  EXPECT_TRUE(healed) << "supervisor never repaired the quarantined shard";
  supervisor.TickOnce();  // the healthy probe resets the domain
  EXPECT_EQ(DomainLevel(supervisor, "leader_shard_1"),
            Supervisor::Level::kHealthy);
  EXPECT_GE(SupervisorCounter(group, "cce_supervisor_repair_shards_total"),
            1u);
  EXPECT_TRUE(group.Health().fully_healthy);
}

TEST(SupervisorTest, WalksTheFullLadderOnAnUnhealableReplica) {
  SupervisedStack stack("supervisor_ladder");
  stack.CorruptShippedWals();
  CCE_CHECK_OK(stack.replica->CatchUp());
  ASSERT_TRUE(stack.replica->GetHealth().degraded);

  Supervisor::Options options = FastSupervisor();
  options.repair_attempts = 2;
  options.park_ticks = 2;
  Supervisor supervisor(stack.group.get(), options);

  // While the ship directory stays corrupt the ladder must escalate:
  // observe -> repair (2 failed resyncs) -> evict -> 2 more failed
  // resyncs -> park.
  bool evicted = false;
  bool parked = false;
  for (int tick = 0; tick < 12 && !parked; ++tick) {
    supervisor.TickOnce();
    const Supervisor::Level level = DomainLevel(supervisor, "replica_0");
    evicted = evicted || level == Supervisor::Level::kEvicted;
    parked = level == Supervisor::Level::kParked;
  }
  EXPECT_TRUE(evicted);
  EXPECT_TRUE(parked);
  EXPECT_TRUE(stack.group->Health().backends[1].evicted);
  EXPECT_GE(SupervisorCounter(*stack.group,
                              "cce_supervisor_force_resyncs_total"),
            3u);
  EXPECT_GE(SupervisorCounter(*stack.group, "cce_supervisor_evictions_total"),
            1u);
  EXPECT_GE(SupervisorCounter(*stack.group, "cce_supervisor_give_ups_total"),
            1u);

  // Fix the underlying fault; the parked domain must un-park, resync and
  // be readmitted with zero manual repair calls.
  stack.Ship();
  bool healthy = false;
  for (int tick = 0; tick < 12 && !healthy; ++tick) {
    supervisor.TickOnce();
    healthy = stack.group->Health().fully_healthy;
  }
  EXPECT_TRUE(healthy) << "group never converged after the fault cleared";
  EXPECT_FALSE(stack.group->Health().backends[1].evicted);
  EXPECT_EQ(DomainLevel(supervisor, "replica_0"),
            Supervisor::Level::kHealthy);
  EXPECT_GE(SupervisorCounter(*stack.group,
                              "cce_supervisor_readmissions_total"),
            1u);
}

TEST(SupervisorTest, TokenBucketLimitsActionsAcrossDomains) {
  Dataset data = cce::testing::RandomContext(120, 4, 3, 9, /*noise=*/0.1);
  const std::string dir = ::testing::TempDir() + "/supervisor_bucket";
  WipeDir(dir);
  ExplainableProxy::Options options;
  options.monitor_drift = false;
  options.shards = 4;
  options.durability.dir = dir;
  options.durability.sync_every = 0;
  {
    auto first = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
    CCE_CHECK_OK(first.status());
    for (size_t i = 0; i < 48; ++i) {
      CCE_CHECK_OK((*first)->Record(data.instance(i), data.label(i)));
    }
  }
  WriteFileBytes(dir + "/context.1.snapshot", "CCESNAP 1\ncovers zaphod\n");
  WriteFileBytes(dir + "/context.2.snapshot", "CCESNAP 1\ncovers zaphod\n");
  auto leader_or = ExplainableProxy::Create(data.schema_ptr(), nullptr, options);
  CCE_CHECK_OK(leader_or.status());

  ServingGroup::Options group_options;
  group_options.hedge = false;
  auto group_or = ServingGroup::Create((*leader_or).get(), {}, group_options);
  CCE_CHECK_OK(group_or.status());
  ServingGroup& group = **group_or;

  // A frozen clock: the bucket starts with one token and never refills,
  // so of the two quarantined shards wanting repair in the same cycle
  // exactly one acts and the other is rate-limited.
  std::chrono::steady_clock::time_point frozen{};
  Supervisor::Options sup = FastSupervisor();
  sup.action_rate.refill_per_sec = 0.001;
  sup.action_rate.burst = 1.0;
  sup.clock = [&frozen] { return frozen; };
  Supervisor supervisor(&group, sup);

  supervisor.TickOnce();  // both domains: healthy -> observing
  supervisor.TickOnce();  // both domains: observing -> repairing
  supervisor.TickOnce();  // one repair fires, the other hits the bucket
  EXPECT_EQ(SupervisorCounter(group, "cce_supervisor_repair_shards_total"),
            1u);
  EXPECT_GE(SupervisorCounter(group, "cce_supervisor_rate_limited_total"),
            1u);
}

TEST(SupervisorTest, JitteredBackoffGatesRepeatedRepairs) {
  SupervisedStack stack("supervisor_backoff");
  stack.CorruptShippedWals();
  CCE_CHECK_OK(stack.replica->CatchUp());

  std::chrono::steady_clock::time_point frozen{};
  Supervisor::Options options = FastSupervisor();
  options.repair_attempts = 10;
  options.repair_backoff.initial_backoff = std::chrono::seconds(60);
  options.repair_backoff.max_backoff = std::chrono::seconds(120);
  options.clock = [&frozen] { return frozen; };
  Supervisor supervisor(stack.group.get(), options);

  supervisor.TickOnce();  // observing
  supervisor.TickOnce();  // repairing
  supervisor.TickOnce();  // first resync fires, arms a >= 60s backoff
  supervisor.TickOnce();  // frozen clock: the gate must hold the action
  supervisor.TickOnce();
  EXPECT_EQ(SupervisorCounter(*stack.group,
                              "cce_supervisor_force_resyncs_total"),
            1u);
  EXPECT_GE(SupervisorCounter(*stack.group,
                              "cce_supervisor_backoff_holds_total"),
            2u);
}

TEST(SupervisorTest, StartStopIsIdempotentAndTicksInBackground) {
  SupervisedStack stack("supervisor_startstop");
  Supervisor::Options options = FastSupervisor();
  options.poll_interval = std::chrono::milliseconds(5);
  Supervisor supervisor(stack.group.get(), options);
  supervisor.Start();
  supervisor.Start();  // idempotent
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  supervisor.Stop();
  supervisor.Stop();  // idempotent
  EXPECT_GE(SupervisorCounter(*stack.group, "cce_supervisor_cycles_total"),
            1u);
  supervisor.Start();  // restartable; the destructor stops it
}

}  // namespace
}  // namespace cce::serving
