#include <cmath>

#include <gtest/gtest.h>

#include "core/conformity.h"
#include "core/srk.h"
#include "tests/test_util.h"

namespace cce {
namespace {

TEST(SweepTest, RowOutOfRangeRejected) {
  testing::Fig2Context fig2;
  EXPECT_EQ(Srk::SweepTradeoff(fig2.context, 99).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SweepTest, Fig2CurveMatchesTheWorkedExample) {
  testing::Fig2Context fig2;
  auto curve = Srk::SweepTradeoff(fig2.context, 0);
  ASSERT_TRUE(curve.ok());
  // Empty key: 3 of 7 instances violate -> alpha 4/7; Credit removes two
  // violators -> 6/7; Income removes the last -> 1.
  ASSERT_EQ(curve->size(), 3u);
  EXPECT_EQ((*curve)[0].succinctness, 0u);
  EXPECT_NEAR((*curve)[0].achieved_alpha, 4.0 / 7.0, 1e-12);
  EXPECT_EQ((*curve)[1].picked, fig2.credit);
  EXPECT_NEAR((*curve)[1].achieved_alpha, 6.0 / 7.0, 1e-12);
  EXPECT_EQ((*curve)[2].picked, fig2.income);
  EXPECT_NEAR((*curve)[2].achieved_alpha, 1.0, 1e-12);
}

TEST(SweepTest, CurveIsMonotoneAndConsistentWithChecker) {
  Dataset context = testing::RandomContext(300, 6, 3, 909);
  ConformityChecker checker(&context);
  auto curve = Srk::SweepTradeoff(context, 0);
  ASSERT_TRUE(curve.ok());
  FeatureSet prefix;
  double previous_alpha = -1.0;
  for (const auto& point : *curve) {
    if (point.succinctness > 0) FeatureSetInsert(&prefix, point.picked);
    EXPECT_EQ(prefix.size(), point.succinctness);
    EXPECT_GE(point.achieved_alpha, previous_alpha);
    previous_alpha = point.achieved_alpha;
    EXPECT_NEAR(point.achieved_alpha,
                checker.Precision(context.instance(0), context.label(0),
                                  prefix),
                1e-12);
  }
}

TEST(SweepTest, CurvePredictsExplainForEveryAlpha) {
  // The sweep must agree with per-alpha SRK runs: the first curve point
  // meeting the bound has the same size as the key SRK returns (the
  // greedy pick sequence is deterministic and alpha only moves the stop).
  Dataset context = testing::RandomContext(250, 5, 3, 808, /*noise=*/0.0);
  auto curve = Srk::SweepTradeoff(context, 3);
  ASSERT_TRUE(curve.ok());
  for (double alpha : {1.0, 0.98, 0.95, 0.9, 0.8}) {
    Srk::Options options;
    options.alpha = alpha;
    auto key = Srk::Explain(context, 3, options);
    ASSERT_TRUE(key.ok());
    size_t budget = static_cast<size_t>(
        std::floor((1.0 - alpha) * context.size() + 1e-9));
    double needed = 1.0 - static_cast<double>(budget) /
                              static_cast<double>(context.size());
    size_t predicted = curve->back().succinctness;
    for (const auto& point : *curve) {
      if (point.achieved_alpha >= needed - 1e-12) {
        predicted = point.succinctness;
        break;
      }
    }
    EXPECT_EQ(key->key.size(), predicted) << "alpha " << alpha;
  }
}

TEST(SweepTest, SingleClassContextIsASinglePoint) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternLabel("only");
  Dataset context(schema);
  context.Add({0}, 0);
  auto curve = Srk::SweepTradeoff(context, 0);
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 1u);
  EXPECT_DOUBLE_EQ((*curve)[0].achieved_alpha, 1.0);
}

TEST(SweepTest, ConflictingDuplicateCurveStopsEarly) {
  auto schema = std::make_shared<Schema>();
  FeatureId f = schema->AddFeature("a");
  schema->InternValue(f, "v");
  schema->InternLabel("l0");
  schema->InternLabel("l1");
  Dataset context(schema);
  context.Add({0}, 0);
  context.Add({0}, 1);
  auto curve = Srk::SweepTradeoff(context, 0);
  ASSERT_TRUE(curve.ok());
  // No feature separates the duplicate: the curve is just the empty key.
  ASSERT_EQ(curve->size(), 1u);
  EXPECT_NEAR((*curve)[0].achieved_alpha, 0.5, 1e-12);
}

}  // namespace
}  // namespace cce
