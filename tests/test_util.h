#ifndef CCE_TESTS_TEST_UTIL_H_
#define CCE_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/dataset.h"
#include "core/schema.h"

namespace cce::testing {

/// Base seed for every FaultInjectingEnv schedule in the fault-injection
/// suites. Defaults to `fallback`; the CCE_FAULT_SEED environment
/// variable overrides it, so a torture-test failure seen in CI can be
/// replayed locally with the exact same fault schedule
/// (CCE_FAULT_SEED=<seed> ctest -R ...). Tests add their iteration index
/// on top and print the effective seed in failure messages.
inline uint64_t FaultScheduleSeed(uint64_t fallback) {
  const char* raw = std::getenv("CCE_FAULT_SEED");
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<uint64_t>(parsed);
}

/// The example context of the paper's Figure 2 (features Gender, Income,
/// Credit, Dependent; 7 loan instances x0..x6). The relative key for x0 is
/// {Income, Credit}; the 6/7-conformant key is {Credit}.
struct Fig2Context {
  std::shared_ptr<Schema> schema;
  Dataset context;
  FeatureId gender, income, credit, dependent;
  Label denied, approved;

  Fig2Context() : context(nullptr) {
    schema = std::make_shared<Schema>();
    gender = schema->AddFeature("Gender");
    income = schema->AddFeature("Income");
    credit = schema->AddFeature("Credit");
    dependent = schema->AddFeature("Dependent");
    denied = schema->InternLabel("Denied");
    approved = schema->InternLabel("Approved");
    context = Dataset(schema);
    Add("Male", "3-4K", "poor", "1", denied);      // x0
    Add("Male", "5-6K", "poor", "1", approved);    // x1
    Add("Female", "3-4K", "poor", "2", denied);    // x2
    Add("Male", "3-4K", "poor", "1", denied);      // x3
    Add("Male", "1-2K", "poor", "1", denied);      // x4
    Add("Male", "3-4K", "good", "0", approved);    // x5
    Add("Male", "3-4K", "good", "1", approved);    // x6
  }

  void Add(const std::string& g, const std::string& i, const std::string& c,
           const std::string& d, Label label) {
    Instance x(4);
    x[gender] = schema->InternValue(gender, g);
    x[income] = schema->InternValue(income, i);
    x[credit] = schema->InternValue(credit, c);
    x[dependent] = schema->InternValue(dependent, d);
    context.Add(std::move(x), label);
  }
};

/// A random context over `n` features with the given per-feature domain
/// size and binary labels — the workhorse of the property tests. `noise` is
/// the label-flip rate; 0 makes labels a pure function of the features, so
/// no conflicting duplicates can arise.
inline Dataset RandomContext(size_t rows, size_t n, size_t domain,
                             uint64_t seed, double noise = 0.15) {
  auto schema = std::make_shared<Schema>();
  for (size_t f = 0; f < n; ++f) {
    FeatureId id = schema->AddFeature("A" + std::to_string(f));
    for (size_t v = 0; v < domain; ++v) {
      schema->InternValue(id, "v" + std::to_string(v));
    }
  }
  schema->InternLabel("neg");
  schema->InternLabel("pos");
  Dataset dataset(schema);
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    Instance x(n);
    for (size_t f = 0; f < n; ++f) {
      x[f] = static_cast<ValueId>(rng.Uniform(domain));
    }
    // Label correlated with the first two features plus noise, so keys are
    // usually small but not trivial.
    bool positive = (x[0] % 2 == 0) == (n < 2 || x[1] % 2 == 0);
    if (noise > 0.0 && rng.Bernoulli(noise)) positive = !positive;
    dataset.Add(std::move(x), positive ? 1u : 0u);
  }
  return dataset;
}

}  // namespace cce::testing

#endif  // CCE_TESTS_TEST_UTIL_H_
