// Executable checks of the paper's theory results:
//  - Theorem 1: the MSC -> MRKP reduction (minimum set cover size equals
//    minimum relative key size on the constructed context).
//  - Theorem 4: the adversarial stream that forces any deterministic
//    coherent online algorithm to n features while OPT stays at 1.
//  - Theorem 5 (spirit): OSRK's randomisation escapes the deterministic
//    lower bound on the same adversarial stream.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "core/optimal.h"
#include "core/osrk.h"
#include "core/srk.h"

namespace cce {
namespace {

// ---------------------------------------------------------- Theorem 1

struct MscInstance {
  size_t num_elements;
  std::vector<std::vector<size_t>> sets;  // each set lists element ids
};

// Exhaustive minimum set cover.
size_t BruteForceMinCover(const MscInstance& msc) {
  const size_t n = msc.sets.size();
  size_t best = n + 1;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<bool> covered(msc.num_elements, false);
    size_t size = 0;
    for (size_t j = 0; j < n; ++j) {
      if (!(mask & (1u << j))) continue;
      ++size;
      for (size_t e : msc.sets[j]) covered[e] = true;
    }
    if (size >= best) continue;
    bool all = true;
    for (bool c : covered) all &= c;
    if (all) best = size;
  }
  return best;
}

// The reduction of Theorem 1 / Theorem 2(1): one feature per set, one
// instance per element (plus x0); x_i differs from x0 on feature j iff
// element i belongs to set j; all labels distinct.
struct ReducedContext {
  std::shared_ptr<Schema> schema;
  Dataset context;
  ReducedContext() : context(nullptr) {}
};

ReducedContext ReduceMscToMrkp(const MscInstance& msc) {
  ReducedContext out;
  out.schema = std::make_shared<Schema>();
  const size_t n = msc.sets.size();
  for (size_t j = 0; j < n; ++j) {
    FeatureId f = out.schema->AddFeature("S" + std::to_string(j));
    out.schema->InternValue(f, "agree");  // value 0 = x0's value
    for (size_t i = 0; i < msc.num_elements; ++i) {
      out.schema->InternValue(f, "e" + std::to_string(i));
    }
  }
  for (size_t i = 0; i <= msc.num_elements; ++i) {
    out.schema->InternLabel("label" + std::to_string(i));
  }
  out.context = Dataset(out.schema);
  // x0 = all "agree", label 0.
  out.context.Add(Instance(n, 0), 0);
  for (size_t i = 0; i < msc.num_elements; ++i) {
    Instance x(n, 0);
    for (size_t j = 0; j < n; ++j) {
      bool member = std::find(msc.sets[j].begin(), msc.sets[j].end(), i) !=
                    msc.sets[j].end();
      if (member) x[j] = static_cast<ValueId>(i + 1);  // differs from x0
    }
    out.context.Add(std::move(x), static_cast<Label>(i + 1));
  }
  return out;
}

MscInstance RandomCoveredMsc(size_t elements, size_t sets, Rng* rng) {
  MscInstance msc;
  msc.num_elements = elements;
  msc.sets.resize(sets);
  for (size_t e = 0; e < elements; ++e) {
    // Every element joins at least one set so a cover exists.
    msc.sets[rng->Uniform(sets)].push_back(e);
    for (size_t j = 0; j < sets; ++j) {
      if (rng->Bernoulli(0.3)) msc.sets[j].push_back(e);
    }
  }
  for (auto& set : msc.sets) {
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
  }
  return msc;
}

class ReductionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionTest, MinCoverEqualsMinKey) {
  Rng rng(GetParam());
  MscInstance msc = RandomCoveredMsc(2 + rng.Uniform(6), 2 + rng.Uniform(5),
                                     &rng);
  ReducedContext reduced = ReduceMscToMrkp(msc);
  size_t cover = BruteForceMinCover(msc);
  auto key = OptimalKeyFinder::FindForRow(reduced.context, 0, {});
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(key->satisfied);
  EXPECT_EQ(key->key.size(), cover) << "reduction mismatch";
  // And SRK (the greedy set-cover algorithm in disguise) returns a valid
  // key at least that large.
  auto greedy = Srk::Explain(reduced.context, 0, {});
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(greedy->satisfied);
  EXPECT_GE(greedy->key.size(), cover);
}

INSTANTIATE_TEST_SUITE_P(RandomMsc, ReductionTest,
                         ::testing::Range<uint64_t>(0, 20));

// ---------------------------------------------------------- Theorem 4

// A deterministic coherent online algorithm: covers each violating arrival
// by adding the lowest-indexed differing feature (the natural strawman the
// adversary defeats).
class DeterministicOnline {
 public:
  explicit DeterministicOnline(Instance x0) : x0_(std::move(x0)) {}

  const FeatureSet& Observe(const Instance& x) {
    bool agrees_on_key = true;
    for (FeatureId f : key_) {
      if (x[f] != x0_[f]) {
        agrees_on_key = false;
        break;
      }
    }
    if (!agrees_on_key) return key_;
    for (FeatureId f = 0; f < x0_.size(); ++f) {
      if (x[f] != x0_[f]) {
        FeatureSetInsert(&key_, f);
        return key_;
      }
    }
    return key_;
  }

  const FeatureSet& key() const { return key_; }

 private:
  Instance x0_;
  FeatureSet key_;
};

struct AdversarialStream {
  std::shared_ptr<Schema> schema;
  Instance x0;
  std::vector<Instance> arrivals;  // all predicted differently from x0
};

// Builds the Theorem 4 adversary against DeterministicOnline: each arrival
// agrees with x0 exactly on the algorithm's current key and differs
// everywhere else.
AdversarialStream BuildAdversary(size_t n) {
  AdversarialStream out;
  out.schema = std::make_shared<Schema>();
  for (size_t f = 0; f < n; ++f) {
    FeatureId id = out.schema->AddFeature("A" + std::to_string(f));
    out.schema->InternValue(id, "x0");
    for (size_t t = 0; t < n; ++t) {
      out.schema->InternValue(id, "t" + std::to_string(t));
    }
  }
  out.schema->InternLabel("target");
  out.schema->InternLabel("other");
  out.x0 = Instance(n, 0);
  DeterministicOnline victim(out.x0);
  for (size_t t = 0; t < n; ++t) {
    Instance x(n, 0);
    const FeatureSet& key = victim.key();
    for (FeatureId f = 0; f < n; ++f) {
      if (!FeatureSetContains(key, f)) {
        x[f] = static_cast<ValueId>(t + 1);
      }
    }
    victim.Observe(x);
    out.arrivals.push_back(std::move(x));
  }
  return out;
}

TEST(Theorem4Test, AdversaryForcesLinearKeyOnDeterministicAlgorithm) {
  const size_t n = 10;
  AdversarialStream stream = BuildAdversary(n);
  DeterministicOnline victim(stream.x0);
  for (const Instance& x : stream.arrivals) victim.Observe(x);
  EXPECT_EQ(victim.key().size(), n);

  // The offline optimum for the full stream is a single feature: the
  // adversary's later arrivals differ from x0 on every feature outside the
  // growing key, so the last feature separates every arrival.
  Dataset context(stream.schema);
  context.Add(stream.x0, 0);
  for (const Instance& x : stream.arrivals) context.Add(x, 1);
  auto optimal = OptimalKeyFinder::FindForRow(context, 0, {});
  ASSERT_TRUE(optimal.ok());
  EXPECT_EQ(optimal->key.size(), 1u);
}

TEST(Theorem4Test, RandomizedOsrkEscapesTheAdversary) {
  // The same (oblivious) adversarial stream does not force OSRK to n
  // features on average — randomisation defeats the deterministic lower
  // bound (Theorem 5). We require a strictly sub-linear average key.
  const size_t n = 10;
  AdversarialStream stream = BuildAdversary(n);
  double total = 0.0;
  const int seeds = 12;
  for (int seed = 0; seed < seeds; ++seed) {
    Osrk::Options options;
    options.seed = static_cast<uint64_t>(seed);
    auto osrk = Osrk::Create(stream.schema, stream.x0, 0, options);
    ASSERT_TRUE(osrk.ok());
    for (const Instance& x : stream.arrivals) (*osrk)->Observe(x, 1);
    EXPECT_TRUE((*osrk)->satisfied());
    total += static_cast<double>((*osrk)->key().size());
  }
  EXPECT_LT(total / seeds, static_cast<double>(n) - 1.0);
}

}  // namespace
}  // namespace cce
