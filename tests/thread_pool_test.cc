#include "common/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "core/cce.h"
#include "tests/test_util.h"

namespace cce {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotentAndReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Wait();  // nothing submitted yet
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ExplainManyTest, MatchesSequentialExplain) {
  Dataset context = testing::RandomContext(400, 6, 3, 515);
  CceBatch cce(context, 1.0);
  std::vector<size_t> rows;
  for (size_t r = 0; r < 60; ++r) rows.push_back(r);
  std::vector<Result<KeyResult>> parallel = cce.ExplainMany(rows, 4);
  ASSERT_EQ(parallel.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    auto sequential = cce.Explain(rows[i]);
    ASSERT_TRUE(sequential.ok());
    ASSERT_TRUE(parallel[i].ok()) << "row " << rows[i];
    EXPECT_EQ(parallel[i]->key, sequential->key) << "row " << rows[i];
    EXPECT_DOUBLE_EQ(parallel[i]->achieved_alpha,
                     sequential->achieved_alpha);
  }
}

TEST(ExplainManyTest, BadRowsYieldPerEntryErrors) {
  Dataset context = testing::RandomContext(20, 3, 2, 616);
  CceBatch cce(context, 1.0);
  std::vector<Result<KeyResult>> results =
      cce.ExplainMany({0, 999, 1}, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(results[2].ok());
}

}  // namespace
}  // namespace cce
