#include "common/thread_pool.h"

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cce.h"
#include "tests/test_util.h"

namespace cce {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotentAndReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Wait();  // nothing submitted yet
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksWorkAcrossTasks) {
  ThreadPool pool(4);
  // Chunking target is ~4 tasks per worker: 1000 indices through 4 workers
  // must arrive as a handful of contiguous ranges, not 1000 tasks — and
  // still cover every index exactly once.
  std::vector<std::atomic<int>> hits(1000);
  std::atomic<int> invocations{0};
  pool.ParallelFor(1000, [&](size_t i) {
    hits[i].fetch_add(1);
    invocations.fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(invocations.load(), 1000);
}

TEST(ThreadPoolTest, ParallelForHugeCountWithBoundedQueueCompletes) {
  // Pre-chunking this deadlocked: 100k Submits through a capacity-8 queue
  // from the submitting thread while workers drain. Chunked, the task count
  // stays under the bound by construction.
  ThreadPool pool(2, /*queue_capacity=*/8);
  std::atomic<size_t> counter{0};
  pool.ParallelFor(100000, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100000u);
}

TEST(ThreadPoolTest, ParallelForZeroCountIsANoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "no index to visit"; });
}

TEST(ThreadPoolTest, ParallelForFewerIndicesThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, TrySubmitIsUnboundedByDefault) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(pool.TrySubmit([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, TrySubmitRejectsWhenTheQueueIsFull) {
  ThreadPool pool(1, /*queue_capacity=*/2);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<int> ran{0};

  // Park the single worker so queued tasks pile up behind it.
  pool.Submit([released, &ran] {
    released.wait();
    ran.fetch_add(1);
  });
  // Give the worker a moment to dequeue the blocker, then fill the queue.
  while (pool.queued() > 0) std::this_thread::yield();
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  // Queue now holds 2 tasks = capacity: backpressure kicks in.
  EXPECT_FALSE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(pool.queued(), 2u);

  release.set_value();
  pool.Wait();
  EXPECT_EQ(ran.load(), 3);
  // Space is available again once the queue drained.
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  pool.Wait();
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolTest, BoundedSubmitBlocksInsteadOfGrowing) {
  ThreadPool pool(2, /*queue_capacity=*/4);
  std::atomic<int> counter{0};
  // 200 tasks through a capacity-4 queue: Submit applies backpressure but
  // every task still runs exactly once.
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
    EXPECT_LE(pool.queued(), 4u);
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolDeathTest, ReentrantSubmitIsAProgrammerError) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.Submit([&pool] { pool.Submit([] {}); });
        pool.Wait();
      },
      "reentrant");
}

TEST(ExplainManyTest, MatchesSequentialExplain) {
  Dataset context = testing::RandomContext(400, 6, 3, 515);
  CceBatch cce(context, 1.0);
  std::vector<size_t> rows;
  for (size_t r = 0; r < 60; ++r) rows.push_back(r);
  std::vector<Result<KeyResult>> parallel = cce.ExplainMany(rows, 4);
  ASSERT_EQ(parallel.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    auto sequential = cce.Explain(rows[i]);
    ASSERT_TRUE(sequential.ok());
    ASSERT_TRUE(parallel[i].ok()) << "row " << rows[i];
    EXPECT_EQ(parallel[i]->key, sequential->key) << "row " << rows[i];
    EXPECT_DOUBLE_EQ(parallel[i]->achieved_alpha,
                     sequential->achieved_alpha);
  }
}

TEST(ExplainManyTest, BadRowsYieldPerEntryErrors) {
  Dataset context = testing::RandomContext(20, 3, 2, 616);
  CceBatch cce(context, 1.0);
  std::vector<Result<KeyResult>> results =
      cce.ExplainMany({0, 999, 1}, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(results[2].ok());
}

}  // namespace
}  // namespace cce
