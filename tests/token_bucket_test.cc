// TokenBucket: refill math, burst budgets, retry-after hints — all on a
// manual clock so every schedule is exact.

#include "common/token_bucket.h"

#include <chrono>

#include <gtest/gtest.h>

namespace cce {
namespace {

using std::chrono::milliseconds;

class ManualClock {
 public:
  TokenBucket::ClockFn fn() {
    return [this] { return now_; };
  }
  void Advance(milliseconds delta) { now_ += delta; }

 private:
  TokenBucket::Clock::time_point now_{};
};

TEST(TokenBucketTest, StartsFullAndServesTheBurst) {
  ManualClock clock;
  TokenBucket::Options options;
  options.refill_per_sec = 10.0;
  options.burst = 3.0;
  TokenBucket bucket(options, clock.fn());
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire()) << "burst budget spent";
}

TEST(TokenBucketTest, RefillsAtTheConfiguredRate) {
  ManualClock clock;
  TokenBucket::Options options;
  options.refill_per_sec = 10.0;  // one token per 100ms
  options.burst = 1.0;
  TokenBucket bucket(options, clock.fn());
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
  clock.Advance(milliseconds(50));
  EXPECT_FALSE(bucket.TryAcquire()) << "half a token is not a token";
  clock.Advance(milliseconds(50));
  EXPECT_TRUE(bucket.TryAcquire());
}

TEST(TokenBucketTest, RefillNeverExceedsBurst) {
  ManualClock clock;
  TokenBucket::Options options;
  options.refill_per_sec = 100.0;
  options.burst = 2.0;
  TokenBucket bucket(options, clock.fn());
  clock.Advance(milliseconds(10000));
  EXPECT_DOUBLE_EQ(bucket.available(), 2.0);
}

TEST(TokenBucketTest, RetryAfterPredictsAvailability) {
  ManualClock clock;
  TokenBucket::Options options;
  options.refill_per_sec = 10.0;
  options.burst = 1.0;
  TokenBucket bucket(options, clock.fn());
  EXPECT_EQ(bucket.RetryAfter().count(), 0);
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_EQ(bucket.RetryAfter().count(), 100);
  clock.Advance(milliseconds(40));
  EXPECT_EQ(bucket.RetryAfter().count(), 60);
  clock.Advance(bucket.RetryAfter());
  EXPECT_TRUE(bucket.TryAcquire())
      << "waiting exactly RetryAfter() must be enough";
}

TEST(TokenBucketTest, ZeroRateMeansUnlimited) {
  ManualClock clock;
  TokenBucket bucket(TokenBucket::Options{}, clock.fn());
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bucket.TryAcquire());
  }
  EXPECT_EQ(bucket.RetryAfter().count(), 0);
}

TEST(TokenBucketTest, BurstClampedToAtLeastOneToken) {
  ManualClock clock;
  TokenBucket::Options options;
  options.refill_per_sec = 10.0;
  options.burst = 0.0;  // misconfigured: would never admit anything
  TokenBucket bucket(options, clock.fn());
  EXPECT_TRUE(bucket.TryAcquire());
}

TEST(TokenBucketTest, MultiTokenAcquire) {
  ManualClock clock;
  TokenBucket::Options options;
  options.refill_per_sec = 10.0;
  options.burst = 5.0;
  TokenBucket bucket(options, clock.fn());
  EXPECT_TRUE(bucket.TryAcquire(5.0));
  EXPECT_FALSE(bucket.TryAcquire(1.0));
  EXPECT_EQ(bucket.RetryAfter(2.0).count(), 200);
}

}  // namespace
}  // namespace cce
