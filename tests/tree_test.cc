#include "ml/tree.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cce::ml {
namespace {

// Builds a dataset and the squared-loss gradients for regression-style
// fitting: grad = prediction - target with prediction 0, hess = 1.
struct FitProblem {
  Dataset data;
  std::vector<double> gradients;
  std::vector<double> hessians;
  std::vector<size_t> rows;

  explicit FitProblem(Dataset d) : data(std::move(d)) {
    gradients.resize(data.size());
    hessians.assign(data.size(), 1.0);
    rows.resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) rows[i] = i;
  }

  void TargetFromLabel() {
    for (size_t i = 0; i < data.size(); ++i) {
      gradients[i] = -static_cast<double>(data.label(i));  // 0 - target
    }
  }
};

TEST(TreeTest, FitsConstantOnPureLeaf) {
  FitProblem p(cce::testing::RandomContext(50, 3, 2, 1, /*noise=*/0.0));
  for (size_t i = 0; i < p.data.size(); ++i) p.gradients[i] = -1.0;
  RegressionTree tree;
  RegressionTree::Options options;
  options.max_depth = 0;  // force a single leaf
  tree.Fit(p.data, p.gradients, p.hessians, p.rows, options);
  ASSERT_EQ(tree.nodes().size(), 1u);
  EXPECT_TRUE(tree.nodes()[0].is_leaf);
  // Leaf weight -G/(H+lambda) = 50/(50+1).
  EXPECT_NEAR(tree.Predict(p.data.instance(0)), 50.0 / 51.0, 1e-9);
}

TEST(TreeTest, LearnsSingleFeatureSplit) {
  // Target depends only on feature 0 being even.
  FitProblem p(cce::testing::RandomContext(300, 4, 4, 2, /*noise=*/0.0));
  for (size_t i = 0; i < p.data.size(); ++i) {
    double target = (p.data.value(i, 0) <= 1) ? 1.0 : 0.0;
    p.gradients[i] = -target;
  }
  RegressionTree tree;
  RegressionTree::Options options;
  options.max_depth = 2;
  tree.Fit(p.data, p.gradients, p.hessians, p.rows, options);
  // Predictions must separate the two groups.
  double low = 0.0;
  double high = 0.0;
  int low_n = 0;
  int high_n = 0;
  for (size_t i = 0; i < p.data.size(); ++i) {
    if (p.data.value(i, 0) <= 1) {
      high += tree.Predict(p.data.instance(i));
      ++high_n;
    } else {
      low += tree.Predict(p.data.instance(i));
      ++low_n;
    }
  }
  ASSERT_GT(low_n, 0);
  ASSERT_GT(high_n, 0);
  EXPECT_GT(high / high_n, 0.8);
  EXPECT_LT(low / low_n, 0.2);
}

TEST(TreeTest, EmptyRowsYieldZeroLeaf) {
  FitProblem p(cce::testing::RandomContext(10, 2, 2, 3));
  RegressionTree tree;
  tree.Fit(p.data, p.gradients, p.hessians, {}, {});
  EXPECT_TRUE(tree.nodes()[0].is_leaf);
  EXPECT_DOUBLE_EQ(tree.Predict(p.data.instance(0)), 0.0);
}

TEST(TreeTest, ReachableRangeBracketsAllPredictions) {
  FitProblem p(cce::testing::RandomContext(200, 4, 3, 4));
  p.TargetFromLabel();
  RegressionTree tree;
  RegressionTree::Options options;
  options.max_depth = 4;
  tree.Fit(p.data, p.gradients, p.hessians, p.rows, options);
  std::vector<int64_t> free(4, -1);
  auto [lo, hi] = tree.ReachableRange(free);
  for (size_t i = 0; i < p.data.size(); ++i) {
    double pred = tree.Predict(p.data.instance(i));
    EXPECT_GE(pred, lo - 1e-12);
    EXPECT_LE(pred, hi + 1e-12);
  }
}

TEST(TreeTest, ReachableRangeCollapsesWhenAllFixed) {
  FitProblem p(cce::testing::RandomContext(200, 4, 3, 5));
  p.TargetFromLabel();
  RegressionTree tree;
  RegressionTree::Options options;
  options.max_depth = 4;
  tree.Fit(p.data, p.gradients, p.hessians, p.rows, options);
  const Instance& x = p.data.instance(7);
  std::vector<int64_t> fixed(x.begin(), x.end());
  auto [lo, hi] = tree.ReachableRange(fixed);
  EXPECT_DOUBLE_EQ(lo, hi);
  EXPECT_DOUBLE_EQ(lo, tree.Predict(x));
}

TEST(TreeTest, PartialFixNarrowsRange) {
  FitProblem p(cce::testing::RandomContext(300, 4, 3, 6));
  p.TargetFromLabel();
  RegressionTree tree;
  RegressionTree::Options options;
  options.max_depth = 4;
  tree.Fit(p.data, p.gradients, p.hessians, p.rows, options);
  std::vector<int64_t> free(4, -1);
  auto [free_lo, free_hi] = tree.ReachableRange(free);
  std::vector<int64_t> partial = free;
  partial[0] = static_cast<int64_t>(p.data.value(0, 0));
  auto [part_lo, part_hi] = tree.ReachableRange(partial);
  EXPECT_GE(part_lo, free_lo - 1e-12);
  EXPECT_LE(part_hi, free_hi + 1e-12);
}

TEST(TreeTest, ScaleLeavesScalesPredictions) {
  FitProblem p(cce::testing::RandomContext(100, 3, 3, 7));
  p.TargetFromLabel();
  RegressionTree tree;
  tree.Fit(p.data, p.gradients, p.hessians, p.rows, {});
  double before = tree.Predict(p.data.instance(0));
  tree.ScaleLeaves(0.5);
  EXPECT_NEAR(tree.Predict(p.data.instance(0)), 0.5 * before, 1e-12);
}

TEST(TreeTest, UsedFeaturesSortedUnique) {
  FitProblem p(cce::testing::RandomContext(300, 5, 3, 8));
  p.TargetFromLabel();
  RegressionTree tree;
  RegressionTree::Options options;
  options.max_depth = 5;
  tree.Fit(p.data, p.gradients, p.hessians, p.rows, options);
  std::vector<FeatureId> used = tree.UsedFeatures();
  EXPECT_TRUE(std::is_sorted(used.begin(), used.end()));
  EXPECT_EQ(std::adjacent_find(used.begin(), used.end()), used.end());
  for (FeatureId f : used) EXPECT_LT(f, 5u);
}

TEST(TreeTest, MinChildWeightPreventsTinySplits) {
  FitProblem p(cce::testing::RandomContext(20, 3, 2, 9));
  p.TargetFromLabel();
  RegressionTree tree;
  RegressionTree::Options options;
  options.min_child_weight = 100.0;  // larger than any child can reach
  tree.Fit(p.data, p.gradients, p.hessians, p.rows, options);
  EXPECT_TRUE(tree.nodes()[0].is_leaf);
}

}  // namespace
}  // namespace cce::ml
