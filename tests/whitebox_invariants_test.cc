// White-box invariants of the online algorithms that the competitive
// analyses lean on (Sections 5.2-5.3): OSRK's weight discipline and
// SSRK's non-increasing potential, observed through behaviour.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/osrk.h"
#include "core/ssrk.h"
#include "tests/test_util.h"

namespace cce {
namespace {

TEST(OsrkWhiteboxTest, FirstViolatorIsAlwaysCoveredImmediately) {
  // For alpha = 1 the algorithm must leave no violator behind at any
  // step: after each Observe, achieved_alpha is exactly 1 (noise-free
  // contexts have no conflicting duplicates).
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Dataset context =
        testing::RandomContext(150, 6, 3, 7000 + seed, /*noise=*/0.0);
    Osrk::Options options;
    options.seed = seed;
    auto osrk = Osrk::Create(context.schema_ptr(), context.instance(0),
                             context.label(0), options);
    ASSERT_TRUE(osrk.ok());
    for (size_t row = 1; row < context.size(); ++row) {
      (*osrk)->Observe(context.instance(row), context.label(row));
      ASSERT_DOUBLE_EQ((*osrk)->achieved_alpha(), 1.0)
          << "violator left uncovered at row " << row;
    }
  }
}

TEST(OsrkWhiteboxTest, KeySizeStaysWellBelowTheDeterministicLowerBound) {
  // Theorem 5's point in practice: even on adversarially ordered streams
  // the randomized key stays O(log t log n) rather than n. We use a
  // moderately hard stream (labels from two features, many arrivals) and
  // require the key to stay below half the feature count on average.
  double total = 0.0;
  const int runs = 10;
  for (int run = 0; run < runs; ++run) {
    Dataset context = testing::RandomContext(
        500, 16, 3, 8000 + static_cast<uint64_t>(run), /*noise=*/0.0);
    Osrk::Options options;
    options.seed = static_cast<uint64_t>(run);
    auto osrk = Osrk::Create(context.schema_ptr(), context.instance(0),
                             context.label(0), options);
    ASSERT_TRUE(osrk.ok());
    for (size_t row = 1; row < context.size(); ++row) {
      (*osrk)->Observe(context.instance(row), context.label(row));
    }
    total += static_cast<double>((*osrk)->key().size());
  }
  EXPECT_LT(total / runs, 8.0);
}

TEST(SsrkWhiteboxTest, KeyNeverExceedsUniverseSeparatingFeatures) {
  // SSRK only ever adds features on which some differently-predicted
  // universe instance disagrees with x0 — features that agree with x0
  // everywhere in the universe can never enter the key.
  Dataset universe = testing::RandomContext(200, 8, 3, 9100,
                                            /*noise=*/0.0);
  const Instance& x0 = universe.instance(0);
  Label y0 = universe.label(0);
  FeatureSet separating;
  for (size_t row = 0; row < universe.size(); ++row) {
    if (universe.label(row) == y0) continue;
    for (FeatureId f = 0; f < universe.num_features(); ++f) {
      if (universe.value(row, f) != x0[f]) FeatureSetInsert(&separating, f);
    }
  }
  auto ssrk = Ssrk::Create(universe, x0, y0, {});
  ASSERT_TRUE(ssrk.ok());
  for (size_t row = 1; row < universe.size(); ++row) {
    (*ssrk)->Observe(universe.instance(row), universe.label(row));
    ASSERT_TRUE(FeatureSetIsSubset((*ssrk)->key(), separating));
  }
}

TEST(SsrkWhiteboxTest, ImmediateCoverageForAlphaOne) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Dataset universe =
        testing::RandomContext(150, 6, 4, 9200 + seed, /*noise=*/0.0);
    auto ssrk = Ssrk::Create(universe, universe.instance(0),
                             universe.label(0), {});
    ASSERT_TRUE(ssrk.ok());
    for (size_t row = 1; row < universe.size(); ++row) {
      (*ssrk)->Observe(universe.instance(row), universe.label(row));
      ASSERT_DOUBLE_EQ((*ssrk)->achieved_alpha(), 1.0)
          << "seed " << seed << " row " << row;
    }
  }
}

TEST(SsrkWhiteboxTest, PotentialNeverIncreases) {
  // The heart of Theorem 6's proof: Φ is non-increasing over arrivals.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Dataset universe =
        testing::RandomContext(200, 7, 3, 9400 + seed, /*noise=*/0.0);
    auto ssrk = Ssrk::Create(universe, universe.instance(0),
                             universe.label(0), {});
    ASSERT_TRUE(ssrk.ok());
    double previous = (*ssrk)->log_potential();
    for (size_t row = 1; row < universe.size(); ++row) {
      (*ssrk)->Observe(universe.instance(row), universe.label(row));
      double current = (*ssrk)->log_potential();
      ASSERT_LE(current, previous + 1e-9)
          << "potential increased at row " << row << " (seed " << seed
          << ")";
      previous = current;
    }
  }
}

TEST(SsrkWhiteboxTest, RepeatedArrivalsAreIdempotent) {
  // Re-observing an already-covered instance never grows the key: its
  // separation is already established.
  Dataset universe = testing::RandomContext(120, 5, 3, 9300,
                                            /*noise=*/0.0);
  auto ssrk = Ssrk::Create(universe, universe.instance(0),
                           universe.label(0), {});
  ASSERT_TRUE(ssrk.ok());
  for (size_t row = 1; row < universe.size(); ++row) {
    (*ssrk)->Observe(universe.instance(row), universe.label(row));
  }
  FeatureSet before = (*ssrk)->key();
  for (size_t row = 1; row < universe.size(); ++row) {
    (*ssrk)->Observe(universe.instance(row), universe.label(row));
  }
  EXPECT_EQ((*ssrk)->key(), before);
}

}  // namespace
}  // namespace cce
