#include "explain/xreason.h"

#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "common/logging.h"

#include "explain/tree_cnf.h"
#include "ml/gbdt.h"
#include "sat/solver.h"
#include "tests/test_util.h"

namespace cce::explain {
namespace {

// Enumerates the entire (small) feature space to decide entailment
// exhaustively — ground truth for the oracle.
bool BruteForceEntails(const ml::Gbdt& model, const Schema& schema,
                       const Instance& x, const FeatureSet& e) {
  Label y0 = model.Predict(x);
  Instance probe(schema.num_features());
  std::function<bool(FeatureId)> recurse = [&](FeatureId f) -> bool {
    if (f == schema.num_features()) return model.Predict(probe) == y0;
    if (FeatureSetContains(e, f)) {
      probe[f] = x[f];
      return recurse(f + 1);
    }
    for (ValueId v = 0; v < schema.DomainSize(f); ++v) {
      probe[f] = v;
      if (!recurse(f + 1)) return false;
    }
    return true;
  };
  return recurse(0);
}

class XreasonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = std::make_unique<Dataset>(
        cce::testing::RandomContext(600, 4, 3, 17, /*noise=*/0.0));
    ml::Gbdt::Options options;
    options.num_trees = 12;
    options.max_depth = 3;
    auto model = ml::Gbdt::Train(*data_, options);
    CCE_CHECK_OK(model.status());
    model_ = std::move(model).value();
  }

  std::unique_ptr<Dataset> data_;
  std::unique_ptr<ml::Gbdt> model_;
};

TEST_F(XreasonTest, OracleMatchesBruteForce) {
  Xreason xreason(model_.get(), data_->schema_ptr(), {});
  // Check every subset of features on a handful of instances (4 features
  // -> 16 subsets).
  for (size_t row = 0; row < 5; ++row) {
    const Instance& x = data_->instance(row);
    for (uint32_t mask = 0; mask < 16; ++mask) {
      FeatureSet e;
      for (FeatureId f = 0; f < 4; ++f) {
        if (mask & (1u << f)) e.push_back(f);
      }
      EXPECT_EQ(xreason.Entails(x, e),
                BruteForceEntails(*model_, data_->schema(), x, e))
          << "row " << row << " mask " << mask;
    }
  }
}

TEST_F(XreasonTest, FullFeatureSetAlwaysEntails) {
  Xreason xreason(model_.get(), data_->schema_ptr(), {});
  FeatureSet all = {0, 1, 2, 3};
  for (size_t row = 0; row < 10; ++row) {
    EXPECT_TRUE(xreason.Entails(data_->instance(row), all));
  }
}

TEST_F(XreasonTest, ExplanationIsFormal) {
  Xreason xreason(model_.get(), data_->schema_ptr(), {});
  for (size_t row = 0; row < 10; ++row) {
    const Instance& x = data_->instance(row);
    auto explanation = xreason.ExplainFeatures(x, 0);
    ASSERT_TRUE(explanation.ok());
    EXPECT_TRUE(BruteForceEntails(*model_, data_->schema(), x,
                                  *explanation))
        << "row " << row;
  }
}

TEST_F(XreasonTest, ExplanationIsSubsetMinimal) {
  Xreason xreason(model_.get(), data_->schema_ptr(), {});
  for (size_t row = 0; row < 6; ++row) {
    const Instance& x = data_->instance(row);
    auto explanation = xreason.ExplainFeatures(x, 0);
    ASSERT_TRUE(explanation.ok());
    for (FeatureId drop : *explanation) {
      FeatureSet smaller;
      for (FeatureId f : *explanation) {
        if (f != drop) smaller.push_back(f);
      }
      EXPECT_FALSE(xreason.Entails(x, smaller))
          << "feature " << drop << " is removable at row " << row;
    }
  }
}

TEST_F(XreasonTest, WrongArityRejected) {
  Xreason xreason(model_.get(), data_->schema_ptr(), {});
  EXPECT_FALSE(xreason.ExplainFeatures(Instance{0}, 0).ok());
}

TEST_F(XreasonTest, SatEncoderAgreesWithOracleOnSingleTree) {
  // Train a single-tree model so the CNF path applies.
  ml::Gbdt::Options options;
  options.num_trees = 1;
  options.max_depth = 4;
  options.learning_rate = 1.0;
  auto single = ml::Gbdt::Train(*data_, options);
  ASSERT_TRUE(single.ok());
  Xreason xreason(single->get(), data_->schema_ptr(), {});
  const ml::RegressionTree& tree = (*single)->trees()[0];
  for (size_t row = 0; row < 4; ++row) {
    const Instance& x = data_->instance(row);
    Label y0 = (*single)->Predict(x);
    TreeCnfEncoder encoder(tree, data_->schema(), (*single)->base_score(),
                           y0);
    for (uint32_t mask = 0; mask < 16; ++mask) {
      FeatureSet e;
      for (FeatureId f = 0; f < 4; ++f) {
        if (mask & (1u << f)) e.push_back(f);
      }
      sat::Solver solver(encoder.formula());
      sat::Solver::Outcome outcome =
          solver.Solve(encoder.Assumptions(x, e));
      bool entails_by_sat = (outcome == sat::Solver::Outcome::kUnsat);
      EXPECT_EQ(entails_by_sat, xreason.Entails(x, e))
          << "row " << row << " mask " << mask;
    }
  }
}

TEST_F(XreasonTest, QuickXplainAgreesWithDeletionOnFormality) {
  Xreason::Options qx_options;
  qx_options.minimization = Xreason::Minimization::kQuickXplain;
  Xreason quickxplain(model_.get(), data_->schema_ptr(), qx_options);
  Xreason deletion(model_.get(), data_->schema_ptr(), {});
  for (size_t row = 0; row < 8; ++row) {
    const Instance& x = data_->instance(row);
    auto qx = quickxplain.ExplainFeatures(x, 0);
    ASSERT_TRUE(qx.ok());
    // Both strategies must return formal, subset-minimal explanations
    // (the explanations themselves may differ).
    EXPECT_TRUE(BruteForceEntails(*model_, data_->schema(), x, *qx));
    for (FeatureId drop : *qx) {
      FeatureSet smaller;
      for (FeatureId f : *qx) {
        if (f != drop) smaller.push_back(f);
      }
      EXPECT_FALSE(quickxplain.Entails(x, smaller));
    }
    auto del = deletion.ExplainFeatures(x, 0);
    ASSERT_TRUE(del.ok());
    EXPECT_TRUE(BruteForceEntails(*model_, data_->schema(), x, *del));
  }
}

TEST_F(XreasonTest, OracleCallCounterAdvances) {
  Xreason xreason(model_.get(), data_->schema_ptr(), {});
  EXPECT_EQ(xreason.oracle_calls(), 0u);
  ASSERT_TRUE(xreason.ExplainFeatures(data_->instance(0), 0).ok());
  EXPECT_GT(xreason.oracle_calls(), 0u);
  xreason.ResetOracleCalls();
  EXPECT_EQ(xreason.oracle_calls(), 0u);
}

TEST_F(XreasonTest, NodeBudgetAbortsConservatively) {
  Xreason::Options options;
  options.max_nodes = 1;  // force an abort on any nontrivial query
  Xreason xreason(model_.get(), data_->schema_ptr(), options);
  const Instance& x = data_->instance(0);
  // With an exhausted budget the oracle reports "may flip": explanations
  // keep all used features (sound, maximal).
  auto explanation = xreason.ExplainFeatures(x, 0);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(*explanation, model_->UsedFeatures());
}

}  // namespace
}  // namespace cce::explain
